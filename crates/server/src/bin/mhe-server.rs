//! The sweep-daemon executable; see the crate docs for flags.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match mhe_server::parse_args(&args) {
        Ok(Some(cfg)) => cfg,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mhe-server: {msg}");
            return ExitCode::from(mhe_server::EXIT_BAD_CONFIG);
        }
    };
    match mhe_server::run(&cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, msg)) => {
            eprintln!("mhe-server: {msg}");
            ExitCode::from(code)
        }
    }
}
