//! `mhe-server` — the sweep daemon as a crate.
//!
//! Everything interesting lives in [`mhe_spacewalk::service`]; this crate
//! is the deployment wrapper: flag parsing, port-file publication, and
//! the process lifecycle (bind → announce → serve → drain on SIGTERM).
//! Keeping it a thin shell means the daemon *cannot* diverge from
//! in-process evaluation — both are the same [`EvalService`] code.
//!
//! ```console
//! $ mhe-server [--addr HOST:PORT] [--port-file PATH]
//!              [--inflight N] [--queue N]
//!              [--session-ttl SECS] [--max-sessions N] [--db DIR]
//!              [--auth-token TOKEN] [--obs|--obs-json]
//! ```
//!
//! `--addr` defaults to `127.0.0.1:0` (loopback, ephemeral port);
//! `--port-file PATH` writes the actually-bound address to `PATH` once
//! listening, which is how scripts and tests rendezvous with an
//! ephemeral-port daemon. `--inflight`/`--queue` override the
//! `MHE_SERVER_INFLIGHT`/`MHE_SERVER_QUEUE` admission knobs;
//! `--session-ttl`/`--max-sessions` override `MHE_SESSION_TTL`/
//! `MHE_MAX_SESSIONS` and bound the daemon's warm-session memory;
//! `--db DIR` persists evicted scope caches so warm state survives
//! restarts; `--auth-token` (or `MHE_AUTH_TOKEN`) requires every client
//! to answer a challenge before its first request (bad or missing
//! tokens exit with code 6).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use mhe_spacewalk::{EvalService, Server, ServiceConfig, ServiceLimits};
use std::sync::Arc;
use std::time::Duration;

pub use mhe_core::{
    EXIT_BAD_CONFIG, EXIT_CANCELLED, EXIT_SERVER_UNAVAILABLE, EXIT_UNAUTHORIZED,
    EXIT_WORKER_FAILURE,
};

/// The daemon's usage line.
pub const USAGE: &str = "usage: mhe-server [--addr HOST:PORT] [--port-file PATH] \
     [--inflight N] [--queue N] [--session-ttl SECS] [--max-sessions N] \
     [--db DIR] [--auth-token TOKEN] [--obs|--obs-json]";

/// Parsed daemon configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonConfig {
    /// Address to bind (default `127.0.0.1:0`).
    pub addr: String,
    /// Where to publish the actually-bound address, if anywhere.
    pub port_file: Option<String>,
    /// Admission limits (flags override the environment knobs).
    pub limits: ServiceLimits,
    /// Idle-session TTL override (`None` defers to `MHE_SESSION_TTL`).
    pub session_ttl: Option<Duration>,
    /// Warm-session cap override (`None` defers to `MHE_MAX_SESSIONS`).
    pub max_sessions: Option<usize>,
    /// Persistence directory for evicted scope caches.
    pub db: Option<String>,
    /// Shared-token override (`None` defers to `MHE_AUTH_TOKEN`).
    pub auth_token: Option<String>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            port_file: None,
            limits: ServiceLimits::default(),
            session_ttl: None,
            max_sessions: None,
            db: None,
            auth_token: None,
        }
    }
}

/// Parses daemon flags. `--help` yields `Ok(None)` after printing usage.
///
/// # Errors
///
/// A one-line diagnostic for unknown flags, missing values, or
/// unparseable numbers (exit with [`EXIT_BAD_CONFIG`]).
pub fn parse_args(args: &[String]) -> Result<Option<DaemonConfig>, String> {
    let mut cfg = DaemonConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                cfg.addr = args.get(i).cloned().ok_or("--addr needs HOST:PORT")?;
            }
            "--port-file" => {
                i += 1;
                cfg.port_file = Some(args.get(i).cloned().ok_or("--port-file needs a path")?);
            }
            "--inflight" => {
                i += 1;
                let v = args.get(i).ok_or("--inflight needs a count")?;
                cfg.limits.max_inflight = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--inflight {v:?}: need a positive integer"))?;
            }
            "--queue" => {
                i += 1;
                let v = args.get(i).ok_or("--queue needs a count")?;
                cfg.limits.max_queued =
                    v.parse::<usize>().map_err(|e| format!("--queue {v:?}: {e}"))?;
            }
            "--session-ttl" => {
                i += 1;
                let v = args.get(i).ok_or("--session-ttl needs seconds")?;
                let secs = v.parse::<u64>().map_err(|e| format!("--session-ttl {v:?}: {e}"))?;
                cfg.session_ttl = Some(Duration::from_secs(secs));
            }
            "--max-sessions" => {
                i += 1;
                let v = args.get(i).ok_or("--max-sessions needs a count")?;
                cfg.max_sessions = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--max-sessions {v:?}: need a positive integer"))?,
                );
            }
            "--db" => {
                i += 1;
                cfg.db = Some(args.get(i).cloned().ok_or("--db needs a directory")?);
            }
            "--auth-token" => {
                i += 1;
                let v = args.get(i).cloned().ok_or("--auth-token needs a token")?;
                if v.is_empty() {
                    return Err("--auth-token must not be empty".to_string());
                }
                cfg.auth_token = Some(v);
            }
            "--obs" => mhe_obs::set_level(mhe_obs::ObsLevel::Text),
            "--obs-json" => mhe_obs::set_level(mhe_obs::ObsLevel::Json),
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    Ok(Some(cfg))
}

/// Runs the daemon to completion: bind, publish the port, serve until a
/// SIGTERM/SIGINT drain, then exit cleanly.
///
/// # Errors
///
/// `(exit_code, message)` — [`EXIT_SERVER_UNAVAILABLE`] when the address
/// cannot be bound, [`EXIT_WORKER_FAILURE`] for serve-loop or port-file
/// I/O failures.
pub fn run(cfg: &DaemonConfig) -> Result<(), (u8, String)> {
    let mut service_cfg = ServiceConfig { limits: cfg.limits, ..ServiceConfig::default() };
    if let Some(ttl) = cfg.session_ttl {
        service_cfg.session_ttl = Some(ttl);
    }
    if let Some(max) = cfg.max_sessions {
        service_cfg.max_sessions = Some(max);
    }
    if let Some(dir) = &cfg.db {
        service_cfg.persist_dir = Some(std::path::PathBuf::from(dir));
    }
    let service = Arc::new(EvalService::with_config(service_cfg));
    let mut server = Server::bind(cfg.addr.as_str(), service)
        .map_err(|e| (EXIT_SERVER_UNAVAILABLE, format!("cannot bind {}: {e}", cfg.addr)))?;
    if let Some(token) = &cfg.auth_token {
        server = server.with_auth_token(Some(token.clone()));
    }
    server.install_signal_drain();
    let addr =
        server.local_addr().map_err(|e| (EXIT_WORKER_FAILURE, format!("local addr: {e}")))?;
    if let Some(path) = &cfg.port_file {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| (EXIT_WORKER_FAILURE, format!("cannot write {path}: {e}")))?;
    }
    eprintln!(
        "mhe-server: listening on {addr} (inflight {}, queue {}; SIGTERM drains)",
        cfg.limits.max_inflight, cfg.limits.max_queued
    );
    server.run().map_err(|e| (EXIT_WORKER_FAILURE, format!("serve loop: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_defaults_and_overrides() {
        let cfg = parse_args(&[]).unwrap().unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.port_file, None);

        let cfg = parse_args(&argv(&[
            "--addr",
            "127.0.0.1:7199",
            "--port-file",
            "/tmp/port",
            "--inflight",
            "2",
            "--queue",
            "0",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:7199");
        assert_eq!(cfg.port_file.as_deref(), Some("/tmp/port"));
        assert_eq!(cfg.limits, ServiceLimits { max_inflight: 2, max_queued: 0 });
    }

    #[test]
    fn parses_the_survivability_knobs() {
        let cfg = parse_args(&argv(&[
            "--session-ttl",
            "0",
            "--max-sessions",
            "2",
            "--db",
            "/tmp/mhe-db",
            "--auth-token",
            "hunter2",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(cfg.session_ttl, Some(Duration::ZERO));
        assert_eq!(cfg.max_sessions, Some(2));
        assert_eq!(cfg.db.as_deref(), Some("/tmp/mhe-db"));
        assert_eq!(cfg.auth_token.as_deref(), Some("hunter2"));
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(&argv(&["--inflight", "0"])).is_err());
        assert!(parse_args(&argv(&["--queue", "many"])).is_err());
        assert!(parse_args(&argv(&["--addr"])).is_err());
        assert!(parse_args(&argv(&["--frobnicate"])).is_err());
        assert!(parse_args(&argv(&["--session-ttl", "soon"])).is_err());
        assert!(parse_args(&argv(&["--max-sessions", "0"])).is_err());
        assert!(parse_args(&argv(&["--auth-token", ""])).is_err());
        assert!(parse_args(&argv(&["--db"])).is_err());
        assert_eq!(parse_args(&argv(&["--help"])).unwrap(), None);
    }
}
