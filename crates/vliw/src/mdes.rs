//! Machine descriptions (mdes) for the parameterized VLIW design space.
//!
//! A [`Mdes`] describes one single-cluster heterogeneous VLIW processor:
//! functional-unit counts per class, register-file sizes, and architectural
//! features. The paper's experiments use a narrow `1111` reference processor
//! and wider `2111`, `3221`, `4221`, `6332` targets (digits = number of
//! integer, float, memory, branch units); [`ProcessorKind`] provides those
//! presets, and arbitrary machines can be built with [`Mdes::builder`].

use mhe_workload::ir::OpClass;

/// Functional-unit classes of the VLIW datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Integer ALU.
    Int,
    /// Floating-point unit.
    Float,
    /// Memory (load/store) unit.
    Mem,
    /// Branch unit.
    Branch,
}

impl FuKind {
    /// All unit kinds in canonical order.
    pub const ALL: [FuKind; 4] = [FuKind::Int, FuKind::Float, FuKind::Mem, FuKind::Branch];

    /// The unit kind an operation class executes on.
    pub fn for_op(class: OpClass) -> FuKind {
        match class {
            OpClass::IntAlu => FuKind::Int,
            OpClass::FloatAlu => FuKind::Float,
            OpClass::Load | OpClass::Store => FuKind::Mem,
            OpClass::Branch => FuKind::Branch,
        }
    }
}

/// A VLIW processor description.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mdes {
    /// Human-readable name, e.g. `"3221"`.
    pub name: String,
    /// Number of integer units.
    pub int_units: u32,
    /// Number of floating-point units.
    pub float_units: u32,
    /// Number of memory units.
    pub mem_units: u32,
    /// Number of branch units.
    pub branch_units: u32,
    /// Integer register-file size.
    pub int_regs: u32,
    /// Floating-point register-file size.
    pub float_regs: u32,
    /// Whether the processor supports control speculation of loads.
    pub speculation: bool,
    /// Whether the processor supports predicated execution.
    pub predication: bool,
}

impl Mdes {
    /// Starts building a custom machine.
    pub fn builder(name: impl Into<String>) -> MdesBuilder {
        MdesBuilder {
            mdes: Mdes {
                name: name.into(),
                int_units: 1,
                float_units: 1,
                mem_units: 1,
                branch_units: 1,
                int_regs: 32,
                float_regs: 32,
                speculation: true,
                predication: false,
            },
        }
    }

    /// Total issue width (operations per cycle).
    pub fn width(&self) -> u32 {
        self.int_units + self.float_units + self.mem_units + self.branch_units
    }

    /// Number of units of a kind.
    pub fn units(&self, kind: FuKind) -> u32 {
        match kind {
            FuKind::Int => self.int_units,
            FuKind::Float => self.float_units,
            FuKind::Mem => self.mem_units,
            FuKind::Branch => self.branch_units,
        }
    }

    /// Register-specifier width in bits for a unit kind's operands.
    pub fn reg_bits(&self, kind: FuKind) -> u32 {
        let regs = match kind {
            FuKind::Float => self.float_regs,
            _ => self.int_regs,
        };
        bits_for(regs)
    }

    /// A crude area-cost estimate used by the spacewalker (arbitrary units).
    ///
    /// Functional units dominate; register files scale with port count,
    /// which grows with issue width.
    pub fn cost(&self) -> f64 {
        let fu = f64::from(self.int_units) * 1.0
            + f64::from(self.float_units) * 3.0
            + f64::from(self.mem_units) * 1.5
            + f64::from(self.branch_units) * 0.5;
        let ports = f64::from(self.width());
        let rf = (f64::from(self.int_regs) + 2.0 * f64::from(self.float_regs)) * ports / 64.0;
        fu + rf
    }
}

/// Builder for custom [`Mdes`] values.
#[derive(Debug, Clone)]
pub struct MdesBuilder {
    mdes: Mdes,
}

impl MdesBuilder {
    /// Sets functional-unit counts (integer, float, memory, branch).
    pub fn units(mut self, int: u32, float: u32, mem: u32, branch: u32) -> Self {
        self.mdes.int_units = int;
        self.mdes.float_units = float;
        self.mdes.mem_units = mem;
        self.mdes.branch_units = branch;
        self
    }

    /// Sets register-file sizes.
    pub fn regs(mut self, int: u32, float: u32) -> Self {
        self.mdes.int_regs = int;
        self.mdes.float_regs = float;
        self
    }

    /// Enables or disables load speculation.
    pub fn speculation(mut self, on: bool) -> Self {
        self.mdes.speculation = on;
        self
    }

    /// Enables or disables predication.
    pub fn predication(mut self, on: bool) -> Self {
        self.mdes.predication = on;
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if any unit count is zero or a register file has fewer than
    /// 8 registers — such machines cannot run the generated workloads.
    pub fn build(self) -> Mdes {
        let m = self.mdes;
        assert!(
            m.int_units >= 1 && m.float_units >= 1 && m.mem_units >= 1 && m.branch_units >= 1,
            "every unit class needs at least one unit"
        );
        assert!(m.int_regs >= 8 && m.float_regs >= 8, "register files too small");
        m
    }
}

/// The five processors of the paper's experiments.
///
/// The digits name the number of integer, float, memory, and branch units;
/// `P1111` is the narrow reference processor, the others are progressively
/// wider targets (issue widths 4, 5, 8, 9, 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcessorKind {
    /// Reference processor: 1 unit of each kind (width 4).
    P1111,
    /// 2 integer units (width 5).
    P2111,
    /// 3/2/2/1 units (width 8).
    P3221,
    /// 4/2/2/1 units (width 9).
    P4221,
    /// 6/3/3/2 units (width 14).
    P6332,
}

impl ProcessorKind {
    /// All five processors in paper order (narrow to wide).
    pub const ALL: [ProcessorKind; 5] = [
        ProcessorKind::P1111,
        ProcessorKind::P2111,
        ProcessorKind::P3221,
        ProcessorKind::P4221,
        ProcessorKind::P6332,
    ];

    /// The four non-reference target processors.
    pub const TARGETS: [ProcessorKind; 4] =
        [ProcessorKind::P2111, ProcessorKind::P3221, ProcessorKind::P4221, ProcessorKind::P6332];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ProcessorKind::P1111 => "1111",
            ProcessorKind::P2111 => "2111",
            ProcessorKind::P3221 => "3221",
            ProcessorKind::P4221 => "4221",
            ProcessorKind::P6332 => "6332",
        }
    }

    /// The machine description for this preset.
    ///
    /// Register files grow with issue width, as the paper notes ("operand
    /// formats of the wider processor are also typically larger due to
    /// larger register files").
    pub fn mdes(self) -> Mdes {
        match self {
            ProcessorKind::P1111 => Mdes::builder("1111").units(1, 1, 1, 1).regs(32, 32).build(),
            ProcessorKind::P2111 => Mdes::builder("2111").units(2, 1, 1, 1).regs(48, 32).build(),
            ProcessorKind::P3221 => Mdes::builder("3221").units(3, 2, 2, 1).regs(64, 48).build(),
            ProcessorKind::P4221 => Mdes::builder("4221").units(4, 2, 2, 1).regs(80, 64).build(),
            ProcessorKind::P6332 => Mdes::builder("6332").units(6, 3, 3, 2).regs(96, 64).build(),
        }
    }
}

impl std::fmt::Display for ProcessorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Bits needed to encode `n` distinct values (`ceil(log2(n))`).
pub(crate) fn bits_for(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        32 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_widths_match_paper() {
        let widths: Vec<u32> = ProcessorKind::ALL.iter().map(|p| p.mdes().width()).collect();
        // "the reference processor can issue up to 4 operations per cycle and
        //  the 2111, 3221, 4221, and 6332 target processors can issue up to
        //  5, 8, 9, and 14 operations per cycle"
        assert_eq!(widths, vec![4, 5, 8, 9, 14]);
    }

    #[test]
    fn bits_for_is_ceil_log2() {
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(32), 5);
        assert_eq!(bits_for(33), 6);
        assert_eq!(bits_for(48), 6);
        assert_eq!(bits_for(64), 6);
        assert_eq!(bits_for(96), 7);
    }

    #[test]
    fn wider_machines_cost_more() {
        let costs: Vec<f64> = ProcessorKind::ALL.iter().map(|p| p.mdes().cost()).collect();
        for w in costs.windows(2) {
            assert!(w[0] < w[1], "cost must increase with width: {costs:?}");
        }
    }

    #[test]
    fn reg_bits_reflect_register_files() {
        let m = ProcessorKind::P6332.mdes();
        assert_eq!(m.reg_bits(FuKind::Int), 7); // 96 registers
        assert_eq!(m.reg_bits(FuKind::Float), 6); // 64 registers
        let r = ProcessorKind::P1111.mdes();
        assert_eq!(r.reg_bits(FuKind::Int), 5); // 32 registers
    }

    #[test]
    fn units_accessor_matches_fields() {
        let m = ProcessorKind::P3221.mdes();
        assert_eq!(m.units(FuKind::Int), 3);
        assert_eq!(m.units(FuKind::Float), 2);
        assert_eq!(m.units(FuKind::Mem), 2);
        assert_eq!(m.units(FuKind::Branch), 1);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn builder_rejects_zero_units() {
        let _ = Mdes::builder("bad").units(0, 1, 1, 1).build();
    }

    #[test]
    fn fu_kind_for_op_covers_all_classes() {
        assert_eq!(FuKind::for_op(OpClass::IntAlu), FuKind::Int);
        assert_eq!(FuKind::for_op(OpClass::FloatAlu), FuKind::Float);
        assert_eq!(FuKind::for_op(OpClass::Load), FuKind::Mem);
        assert_eq!(FuKind::for_op(OpClass::Store), FuKind::Mem);
        assert_eq!(FuKind::for_op(OpClass::Branch), FuKind::Branch);
    }

    #[test]
    fn builder_customizes_features() {
        let m = Mdes::builder("x").units(2, 2, 2, 2).speculation(false).predication(true).build();
        assert!(!m.speculation);
        assert!(m.predication);
        assert_eq!(m.width(), 8);
    }
}
