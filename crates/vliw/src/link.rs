//! Linker: code layout, instruction alignment, and address assignment.
//!
//! Responsibilities mirror the paper's linker: inter-procedural layout
//! (profile-guided: frequently executed procedures first, increasing spatial
//! locality), packet-boundary alignment for branch targets (avoiding fetch
//! stalls at the cost of slightly larger code), and final address
//! assignment. Intra-procedural layout keeps the generator's block order,
//! which already chains fall-through paths.

use crate::asm::AssembledProgram;
use mhe_workload::exec::BlockFrequencies;
use mhe_workload::ir::{BlockId, ProcId, Program, Terminator};

/// Base word address of the text segment.
pub const TEXT_BASE: u64 = 0x0010_0000;

/// Placement of one block in the executable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLayout {
    /// First word address of the block.
    pub start: u64,
    /// Size in words.
    pub words: u32,
}

/// A linked executable image (addresses only; the bits themselves are never
/// materialized — the trace generator needs only addresses and sizes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binary {
    /// Block placements, indexed `[proc][block]`.
    pub blocks: Vec<Vec<BlockLayout>>,
    /// Total text size in words, including alignment padding.
    pub text_words: u64,
    /// Procedure layout order (hot first when profile-guided).
    pub proc_order: Vec<ProcId>,
}

impl Binary {
    /// Links an assembled program.
    ///
    /// If `freq` is provided, procedures are laid out in decreasing dynamic
    /// frequency (profile-guided layout); otherwise in index order.
    ///
    /// # Examples
    ///
    /// ```
    /// use mhe_vliw::{asm::AssembledProgram, link::Binary, mdes::ProcessorKind,
    ///               sched::ScheduledProgram};
    /// use mhe_workload::Benchmark;
    /// let program = Benchmark::Unepic.generate();
    /// let sched = ScheduledProgram::schedule(&program, &ProcessorKind::P1111.mdes());
    /// let asm = AssembledProgram::assemble(&sched);
    /// let bin = Binary::link(&program, &asm, None);
    /// assert!(bin.text_words >= asm.text_words());
    /// ```
    pub fn link(
        program: &Program,
        asm: &AssembledProgram,
        freq: Option<&BlockFrequencies>,
    ) -> Self {
        let nprocs = program.procedures.len();
        let mut proc_order: Vec<ProcId> = (0..nprocs as u32).map(ProcId).collect();
        if let Some(f) = freq {
            proc_order.sort_by_key(|&p| std::cmp::Reverse(f.proc_count(p)));
        }

        let mut aligned = alignment_targets(program);
        // Profile-guided builds only pay alignment padding for blocks that
        // actually execute ("branch targets ... at the expense of slightly
        // larger code size"); cold code stays packed.
        if let Some(f) = freq {
            for (pi, blocks) in aligned.iter_mut().enumerate() {
                for (bi, a) in blocks.iter_mut().enumerate() {
                    if f.count(ProcId(pi as u32), BlockId(bi as u32)) == 0 {
                        *a = false;
                    }
                }
            }
        }
        let packet = u64::from(asm.format.packet_words);

        let mut blocks: Vec<Vec<BlockLayout>> = program
            .procedures
            .iter()
            .map(|p| vec![BlockLayout { start: 0, words: 0 }; p.blocks.len()])
            .collect();
        let mut addr = TEXT_BASE;
        for &proc in &proc_order {
            // Procedure entries are always packet-aligned.
            addr = round_up(addr, packet);
            let pi = proc.0 as usize;
            for bi in 0..program.procedures[pi].blocks.len() {
                if aligned[pi][bi] {
                    addr = round_up(addr, packet);
                }
                let words = asm.procs[pi][bi].words;
                blocks[pi][bi] = BlockLayout { start: addr, words };
                addr += u64::from(words);
            }
        }
        Self { blocks, text_words: addr - TEXT_BASE, proc_order }
    }

    /// Placement of one block.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn block(&self, proc: ProcId, block: BlockId) -> BlockLayout {
        self.blocks[proc.0 as usize][block.0 as usize]
    }

    /// Text size in bytes.
    pub fn text_bytes(&self) -> u64 {
        self.text_words * 4
    }
}

/// Marks blocks that are branch targets (paper: aligned on packet
/// boundaries to avoid fetch stalls). Procedure entries are handled
/// separately by the linker.
fn alignment_targets(program: &Program) -> Vec<Vec<bool>> {
    let mut aligned: Vec<Vec<bool>> =
        program.procedures.iter().map(|p| vec![false; p.blocks.len()]).collect();
    for (pi, proc) in program.procedures.iter().enumerate() {
        for block in &proc.blocks {
            match block.terminator {
                Terminator::Jump { target } => aligned[pi][target.0 as usize] = true,
                Terminator::Branch { taken, .. } => {
                    // Only the taken target breaks the fall-through fetch
                    // stream; fall-through needs no alignment.
                    aligned[pi][taken.0 as usize] = true;
                }
                Terminator::Call { ret, .. } => aligned[pi][ret.0 as usize] = true,
                Terminator::Return | Terminator::Exit => {}
            }
        }
    }
    aligned
}

fn round_up(addr: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (addr + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdes::ProcessorKind;
    use crate::sched::ScheduledProgram;
    use mhe_workload::Benchmark;

    fn link_unepic(kind: ProcessorKind) -> (mhe_workload::Program, AssembledProgram, Binary) {
        let p = Benchmark::Unepic.generate();
        let s = ScheduledProgram::schedule(&p, &kind.mdes());
        let a = AssembledProgram::assemble(&s);
        let b = Binary::link(&p, &a, None);
        (p, a, b)
    }

    #[test]
    fn blocks_do_not_overlap() {
        let (_, _, bin) = link_unepic(ProcessorKind::P2111);
        let mut spans: Vec<(u64, u64)> =
            bin.blocks.iter().flatten().map(|b| (b.start, b.start + u64::from(b.words))).collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {w:?}");
        }
    }

    #[test]
    fn text_starts_at_base_and_covers_all_blocks() {
        let (_, _, bin) = link_unepic(ProcessorKind::P1111);
        let min = bin.blocks.iter().flatten().map(|b| b.start).min().unwrap();
        let max = bin.blocks.iter().flatten().map(|b| b.start + u64::from(b.words)).max().unwrap();
        assert_eq!(min, TEXT_BASE);
        assert_eq!(max - TEXT_BASE, bin.text_words);
    }

    #[test]
    fn padding_is_bounded() {
        let (_, asm, bin) = link_unepic(ProcessorKind::P6332);
        let raw = asm.text_words();
        assert!(bin.text_words >= raw);
        // Alignment should cost well under 40% even on the widest machine.
        assert!(
            (bin.text_words as f64) < raw as f64 * 1.4,
            "padding too large: raw {raw}, linked {}",
            bin.text_words
        );
    }

    #[test]
    fn branch_targets_are_packet_aligned() {
        let (p, asm, bin) = link_unepic(ProcessorKind::P3221);
        let packet = u64::from(asm.format.packet_words);
        for (pi, proc) in p.procedures.iter().enumerate() {
            for block in &proc.blocks {
                if let Terminator::Branch { taken, .. } = block.terminator {
                    let t = bin.blocks[pi][taken.0 as usize];
                    assert_eq!(t.start % packet, 0, "unaligned branch target");
                }
            }
        }
    }

    #[test]
    fn profile_guided_layout_puts_hot_procs_first() {
        let p = Benchmark::Unepic.generate();
        let s = ScheduledProgram::schedule(&p, &ProcessorKind::P1111.mdes());
        let a = AssembledProgram::assemble(&s);
        let f = BlockFrequencies::profile(&p, 99, 100_000);
        let bin = Binary::link(&p, &a, Some(&f));
        for w in bin.proc_order.windows(2) {
            assert!(f.proc_count(w[0]) >= f.proc_count(w[1]));
        }
    }

    #[test]
    fn layout_is_deterministic() {
        let (_, _, a) = link_unepic(ProcessorKind::P4221);
        let (_, _, b) = link_unepic(ProcessorKind::P4221);
        assert_eq!(a, b);
    }
}
