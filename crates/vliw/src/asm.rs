//! Assembler: encodes scheduled blocks using greedy template selection.
//!
//! For every schedule cycle the assembler picks the smallest template whose
//! slot multiset covers the cycle's operations (the paper's first selection
//! criterion); runs of empty cycles (latency stalls) are absorbed into the
//! preceding instruction's multi-no-op field when short enough (the second
//! criterion) and otherwise encoded as explicit no-op instructions using the
//! smallest template.

use crate::format::{InstructionFormat, SlotSet, MAX_NOOP_RUN};
use crate::mdes::FuKind;
use crate::sched::{ScheduledBlock, ScheduledProgram};
use mhe_workload::ir::{BlockId, ProcId};

/// An encoded basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembledBlock {
    /// Encoded words contributed by each schedule cycle (0 for cycles
    /// absorbed into a multi-no-op field).
    pub words_per_cycle: Vec<u32>,
    /// Total encoded size in words.
    pub words: u32,
}

/// A fully assembled program (relocatable: addresses assigned by the
/// linker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembledProgram {
    /// Encoded blocks, indexed `[proc][block]`.
    pub procs: Vec<Vec<AssembledBlock>>,
    /// The instruction format used.
    pub format: InstructionFormat,
}

impl AssembledProgram {
    /// Encodes every block of a scheduled program.
    ///
    /// # Examples
    ///
    /// ```
    /// use mhe_vliw::{asm::AssembledProgram, mdes::ProcessorKind, sched::ScheduledProgram};
    /// use mhe_workload::Benchmark;
    /// let program = Benchmark::Unepic.generate();
    /// let sched = ScheduledProgram::schedule(&program, &ProcessorKind::P1111.mdes());
    /// let asm = AssembledProgram::assemble(&sched);
    /// assert!(asm.text_words() > 0);
    /// ```
    pub fn assemble(sched: &ScheduledProgram) -> Self {
        let format = InstructionFormat::synthesize(&sched.mdes);
        let procs = sched
            .procs
            .iter()
            .map(|blocks| blocks.iter().map(|b| assemble_block(b, &format)).collect())
            .collect();
        Self { procs, format }
    }

    /// One block's encoding.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn block(&self, proc: ProcId, block: BlockId) -> &AssembledBlock {
        &self.procs[proc.0 as usize][block.0 as usize]
    }

    /// Total encoded text in words, before linking (no alignment padding).
    pub fn text_words(&self) -> u64 {
        self.procs.iter().flatten().map(|b| u64::from(b.words)).sum()
    }
}

fn assemble_block(block: &ScheduledBlock, format: &InstructionFormat) -> AssembledBlock {
    let n = block.cycles.len();
    let mut words_per_cycle = vec![0u32; n];
    let mut i = 0;
    while i < n {
        let cycle = &block.cycles[i];
        if cycle.is_empty() {
            // An empty cycle not absorbed by a predecessor's no-op field:
            // encode an explicit no-op instruction, which itself can absorb
            // a following run.
            words_per_cycle[i] = format.min_template_words();
        } else {
            let need = slot_needs(cycle);
            words_per_cycle[i] = format.cycle_words(&need);
        }
        // Absorb up to MAX_NOOP_RUN following empty cycles for free.
        let mut run = 0;
        while run < MAX_NOOP_RUN && i + 1 + (run as usize) < n {
            if block.cycles[i + 1 + run as usize].is_empty() {
                run += 1;
            } else {
                break;
            }
        }
        i += 1 + run as usize;
    }
    let words = words_per_cycle.iter().sum();
    AssembledBlock { words_per_cycle, words }
}

fn slot_needs(cycle: &[crate::sched::ScheduledOp]) -> SlotSet {
    let mut need = SlotSet::default();
    for op in cycle {
        match FuKind::for_op(op.class) {
            FuKind::Int => need.int += 1,
            FuKind::Float => need.float += 1,
            FuKind::Mem => need.mem += 1,
            FuKind::Branch => need.branch += 1,
        }
    }
    need
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdes::ProcessorKind;
    use crate::sched::ScheduledProgram;
    use mhe_workload::Benchmark;

    fn assemble_for(kind: ProcessorKind) -> AssembledProgram {
        let p = Benchmark::Unepic.generate();
        AssembledProgram::assemble(&ScheduledProgram::schedule(&p, &kind.mdes()))
    }

    #[test]
    fn every_block_has_positive_size() {
        let asm = assemble_for(ProcessorKind::P1111);
        for proc in &asm.procs {
            for b in proc {
                assert!(b.words > 0);
            }
        }
    }

    #[test]
    fn words_equal_sum_of_cycle_words() {
        let asm = assemble_for(ProcessorKind::P3221);
        for proc in &asm.procs {
            for b in proc {
                assert_eq!(b.words, b.words_per_cycle.iter().sum::<u32>());
            }
        }
    }

    #[test]
    fn wider_machines_produce_larger_text() {
        let p = Benchmark::Gcc.generate();
        let sizes: Vec<u64> = ProcessorKind::ALL
            .iter()
            .map(|k| {
                AssembledProgram::assemble(&ScheduledProgram::schedule(&p, &k.mdes())).text_words()
            })
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1], "text must grow with width: {sizes:?}");
        }
    }

    #[test]
    fn text_dilation_is_in_papers_range() {
        // Table 3: dilations roughly 1.26-1.40 (2111), 1.66-2.00 (3221),
        // 1.80-2.51 (4221), 2.47-3.25 (6332). Allow generous bands: the
        // synthetic formats only need the same regime.
        let p = Benchmark::Gcc.generate();
        let text = |k: ProcessorKind| {
            AssembledProgram::assemble(&ScheduledProgram::schedule(&p, &k.mdes())).text_words()
                as f64
        };
        let base = text(ProcessorKind::P1111);
        let d2111 = text(ProcessorKind::P2111) / base;
        let d3221 = text(ProcessorKind::P3221) / base;
        let d4221 = text(ProcessorKind::P4221) / base;
        let d6332 = text(ProcessorKind::P6332) / base;
        assert!((1.1..=1.7).contains(&d2111), "2111 dilation {d2111}");
        assert!((1.4..=2.4).contains(&d3221), "3221 dilation {d3221}");
        assert!((1.6..=2.8).contains(&d4221), "4221 dilation {d4221}");
        assert!((2.2..=3.6).contains(&d6332), "6332 dilation {d6332}");
        assert!(d2111 < d3221 && d3221 < d4221 && d4221 < d6332);
    }

    #[test]
    fn noop_runs_are_free_when_short() {
        use crate::format::InstructionFormat;
        use crate::sched::{ScheduledBlock, ScheduledOp};
        use mhe_workload::ir::OpClass;
        let format = InstructionFormat::synthesize(&ProcessorKind::P1111.mdes());
        let op = ScheduledOp { class: OpClass::IntAlu, mem: None };
        // op, 2 empty cycles (latency gap), op.
        let block = ScheduledBlock {
            cycles: vec![vec![op], vec![], vec![], vec![op]],
            spills: 0,
            spec_loads: 0,
        };
        let enc = assemble_block(&block, &format);
        assert_eq!(enc.words_per_cycle[1], 0);
        assert_eq!(enc.words_per_cycle[2], 0);
        assert_eq!(enc.words, enc.words_per_cycle[0] + enc.words_per_cycle[3]);
    }

    #[test]
    fn long_noop_runs_need_explicit_noops() {
        use crate::format::InstructionFormat;
        use crate::sched::{ScheduledBlock, ScheduledOp};
        use mhe_workload::ir::OpClass;
        let format = InstructionFormat::synthesize(&ProcessorKind::P1111.mdes());
        let op = ScheduledOp { class: OpClass::IntAlu, mem: None };
        // op followed by 5 empty cycles: 3 absorbed, the 4th needs an
        // explicit no-op, which absorbs the 5th.
        let block = ScheduledBlock {
            cycles: vec![vec![op], vec![], vec![], vec![], vec![], vec![]],
            spills: 0,
            spec_loads: 0,
        };
        let enc = assemble_block(&block, &format);
        assert_eq!(enc.words_per_cycle[4], format.min_template_words());
        assert_eq!(enc.words_per_cycle[5], 0);
    }
}
