//! End-to-end compilation pipeline: schedule → assemble → link.

use crate::asm::AssembledProgram;
use crate::link::Binary;
use crate::mdes::Mdes;
use crate::sched::ScheduledProgram;
use mhe_workload::exec::BlockFrequencies;
use mhe_workload::ir::Program;

/// A program compiled for one machine: the schedule (dynamic behaviour),
/// the encoding (code size), and the linked image (addresses).
#[derive(Debug, Clone, PartialEq)]
pub struct Compiled {
    /// Target machine.
    pub mdes: Mdes,
    /// Per-block schedules.
    pub sched: ScheduledProgram,
    /// Per-block encodings.
    pub asm: AssembledProgram,
    /// Linked image.
    pub binary: Binary,
}

impl Compiled {
    /// Compiles `program` for `mdes`, optionally profile-guided.
    ///
    /// # Examples
    ///
    /// ```
    /// use mhe_vliw::{compile::Compiled, mdes::ProcessorKind};
    /// use mhe_workload::Benchmark;
    /// let program = Benchmark::Unepic.generate();
    /// let narrow = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
    /// let wide = Compiled::build(&program, &ProcessorKind::P6332.mdes(), None);
    /// let dilation = wide.text_words() as f64 / narrow.text_words() as f64;
    /// assert!(dilation > 1.5);
    /// ```
    pub fn build(program: &Program, mdes: &Mdes, freq: Option<&BlockFrequencies>) -> Self {
        let _obs = mhe_obs::span(mhe_obs::Phase::Compile);
        let sched = ScheduledProgram::schedule(program, mdes);
        let asm = AssembledProgram::assemble(&sched);
        let binary = Binary::link(program, &asm, freq);
        Self { mdes: mdes.clone(), sched, asm, binary }
    }

    /// Total linked text size in words.
    pub fn text_words(&self) -> u64 {
        self.binary.text_words
    }
}

/// Text dilation of `target` relative to `reference` (the paper's `d`).
///
/// # Examples
///
/// ```
/// use mhe_vliw::{compile::{Compiled, text_dilation}, mdes::ProcessorKind};
/// use mhe_workload::Benchmark;
/// let program = Benchmark::Unepic.generate();
/// let r = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
/// let t = Compiled::build(&program, &ProcessorKind::P2111.mdes(), None);
/// let d = text_dilation(&r, &t);
/// assert!(d >= 1.0);
/// ```
pub fn text_dilation(reference: &Compiled, target: &Compiled) -> f64 {
    target.text_words() as f64 / reference.text_words() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdes::ProcessorKind;
    use mhe_workload::Benchmark;

    #[test]
    fn compile_is_deterministic() {
        let p = Benchmark::Epic.generate();
        let a = Compiled::build(&p, &ProcessorKind::P3221.mdes(), None);
        let b = Compiled::build(&p, &ProcessorKind::P3221.mdes(), None);
        assert_eq!(a, b);
    }

    #[test]
    fn dilation_of_reference_is_one() {
        let p = Benchmark::Epic.generate();
        let r = Compiled::build(&p, &ProcessorKind::P1111.mdes(), None);
        assert!((text_dilation(&r, &r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dilation_increases_with_width() {
        let p = Benchmark::Rasta.generate();
        let r = Compiled::build(&p, &ProcessorKind::P1111.mdes(), None);
        let mut prev = 1.0;
        for kind in ProcessorKind::TARGETS {
            let t = Compiled::build(&p, &kind.mdes(), None);
            let d = text_dilation(&r, &t);
            assert!(d > prev, "{kind}: dilation {d} <= previous {prev}");
            prev = d;
        }
    }
}
