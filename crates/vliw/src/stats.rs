//! Schedule statistics: utilization, ILP, and code-size accounting.
//!
//! The paper's evaluator derives processor performance "using schedule
//! lengths and profile statistics"; this module provides those statistics
//! plus the utilization view that explains *why* wide machines dilate:
//! low slot utilization means most of a wide instruction's bits encode
//! no-ops.

use crate::compile::Compiled;
use crate::mdes::FuKind;
use crate::sched::ScheduledProgram;
use mhe_workload::exec::BlockFrequencies;
use mhe_workload::ir::{BlockId, ProcId};

/// Aggregate schedule statistics for one compilation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleStats {
    /// Static schedule cycles over all blocks.
    pub cycles: u64,
    /// Scheduled operations (including spills and speculative loads).
    pub ops: u64,
    /// Cycles with no operation at all (latency bubbles).
    pub empty_cycles: u64,
    /// Static operations per cycle.
    pub ilp: f64,
    /// Fraction of issue slots actually filled.
    pub slot_utilization: f64,
}

/// Computes static schedule statistics.
///
/// # Examples
///
/// ```
/// use mhe_vliw::{mdes::ProcessorKind, sched::ScheduledProgram, stats::schedule_stats};
/// use mhe_workload::Benchmark;
/// let p = Benchmark::Unepic.generate();
/// let narrow = schedule_stats(&ScheduledProgram::schedule(&p, &ProcessorKind::P1111.mdes()));
/// let wide = schedule_stats(&ScheduledProgram::schedule(&p, &ProcessorKind::P6332.mdes()));
/// assert!(wide.ilp > narrow.ilp);
/// assert!(wide.slot_utilization < narrow.slot_utilization);
/// ```
pub fn schedule_stats(sched: &ScheduledProgram) -> ScheduleStats {
    let width = u64::from(sched.mdes.width());
    let mut cycles = 0u64;
    let mut ops = 0u64;
    let mut empty = 0u64;
    for block in sched.procs.iter().flatten() {
        cycles += block.cycles.len() as u64;
        for c in &block.cycles {
            ops += c.len() as u64;
            if c.is_empty() {
                empty += 1;
            }
        }
    }
    ScheduleStats {
        cycles,
        ops,
        empty_cycles: empty,
        ilp: if cycles == 0 { 0.0 } else { ops as f64 / cycles as f64 },
        slot_utilization: if cycles == 0 { 0.0 } else { ops as f64 / (cycles * width) as f64 },
    }
}

/// Per-unit-kind utilization: fraction of that kind's slots filled, over
/// the static schedule.
pub fn unit_utilization(sched: &ScheduledProgram) -> [(FuKind, f64); 4] {
    let mut used = [0u64; 4];
    let mut cycles = 0u64;
    for block in sched.procs.iter().flatten() {
        cycles += block.cycles.len() as u64;
        for c in &block.cycles {
            for op in c {
                match FuKind::for_op(op.class) {
                    FuKind::Int => used[0] += 1,
                    FuKind::Float => used[1] += 1,
                    FuKind::Mem => used[2] += 1,
                    FuKind::Branch => used[3] += 1,
                }
            }
        }
    }
    let denom = |n: u32| (cycles * u64::from(n)).max(1) as f64;
    [
        (FuKind::Int, used[0] as f64 / denom(sched.mdes.int_units)),
        (FuKind::Float, used[1] as f64 / denom(sched.mdes.float_units)),
        (FuKind::Mem, used[2] as f64 / denom(sched.mdes.mem_units)),
        (FuKind::Branch, used[3] as f64 / denom(sched.mdes.branch_units)),
    ]
}

/// Bytes of code per *executed* operation, weighted by block frequency —
/// the dynamic code-density metric behind instruction-cache pressure.
pub fn dynamic_code_density(compiled: &Compiled, freq: &BlockFrequencies) -> f64 {
    let mut bytes = 0u64;
    let mut ops = 0u64;
    for (pi, blocks) in compiled.binary.blocks.iter().enumerate() {
        for (bi, layout) in blocks.iter().enumerate() {
            let n = freq.count(ProcId(pi as u32), BlockId(bi as u32));
            if n == 0 {
                continue;
            }
            bytes += n * u64::from(layout.words) * 4;
            ops += n * compiled.sched.procs[pi][bi].op_count() as u64;
        }
    }
    if ops == 0 {
        0.0
    } else {
        bytes as f64 / ops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiled;
    use crate::mdes::ProcessorKind;
    use mhe_workload::Benchmark;

    fn stats_for(kind: ProcessorKind) -> ScheduleStats {
        let p = Benchmark::Epic.generate();
        schedule_stats(&ScheduledProgram::schedule(&p, &kind.mdes()))
    }

    #[test]
    fn ilp_grows_and_utilization_falls_with_width() {
        let mut prev_ilp = 0.0;
        for kind in ProcessorKind::ALL {
            let s = stats_for(kind);
            assert!(s.ilp >= prev_ilp * 0.98, "{kind}: ilp {0} fell", s.ilp);
            prev_ilp = s.ilp;
        }
        // Slot utilization falls from the narrow to the wide end (it need
        // not be strictly monotone between adjacent widths: width 4 -> 5
        // adds the slot the schedule can actually use).
        let narrow = stats_for(ProcessorKind::P1111);
        let wide = stats_for(ProcessorKind::P6332);
        assert!(
            wide.slot_utilization < 0.7 * narrow.slot_utilization,
            "utilization should fall: {} -> {}",
            narrow.slot_utilization,
            wide.slot_utilization
        );
    }

    #[test]
    fn utilization_bounded_by_one() {
        for kind in ProcessorKind::ALL {
            let s = stats_for(kind);
            assert!(s.slot_utilization > 0.0 && s.slot_utilization <= 1.0);
            assert!(s.ilp <= f64::from(kind.mdes().width()));
        }
    }

    #[test]
    fn unit_utilization_is_sane() {
        let p = Benchmark::Go.generate();
        let s = ScheduledProgram::schedule(&p, &ProcessorKind::P3221.mdes());
        for (kind, u) in unit_utilization(&s) {
            assert!((0.0..=1.0).contains(&u), "{kind:?}: {u}");
        }
        // On an integer benchmark (1% float ops) the branch unit — one
        // branch per block — is far busier than the float units.
        let u = unit_utilization(&s);
        assert!(u[3].1 > u[1].1, "branch {} vs float {}", u[3].1, u[1].1);
    }

    #[test]
    fn code_density_worsens_with_width() {
        let p = Benchmark::Gcc.generate();
        let freq = mhe_workload::BlockFrequencies::profile(&p, 7, 100_000);
        let narrow = Compiled::build(&p, &ProcessorKind::P1111.mdes(), Some(&freq));
        let wide = Compiled::build(&p, &ProcessorKind::P6332.mdes(), Some(&freq));
        let dn = dynamic_code_density(&narrow, &freq);
        let dw = dynamic_code_density(&wide, &freq);
        assert!(dn > 0.0);
        assert!(dw > 1.5 * dn, "wide density {dw} vs narrow {dn}");
    }
}
