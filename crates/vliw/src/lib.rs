//! Parameterized VLIW back-end: the compiler, instruction-format,
//! assembler, and linker substrate of the design system.
//!
//! The paper's toolchain (Elcor compiler, co-synthesized instruction
//! formats, Eas assembler, Eld linker) is reproduced here in four stages:
//!
//! 1. [`mdes`] — parameterized machine descriptions, including the five
//!    processors of the experiments (`1111` … `6332`);
//! 2. [`sched`] — a list scheduler with spill insertion and load
//!    speculation;
//! 3. [`mod@format`] + [`asm`] — variable-length multi-template instruction
//!    format synthesis and greedy template-selection encoding;
//! 4. [`link`] — profile-guided layout, packet alignment, and address
//!    assignment.
//!
//! [`compile::Compiled`] bundles the pipeline; [`compile::text_dilation`]
//! computes the paper's dilation coefficient `d`.
//!
//! # Quick start
//!
//! ```
//! use mhe_vliw::{compile::{Compiled, text_dilation}, mdes::ProcessorKind};
//! use mhe_workload::Benchmark;
//!
//! let program = Benchmark::Epic.generate();
//! let reference = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
//! let wide = Compiled::build(&program, &ProcessorKind::P6332.mdes(), None);
//! println!("text dilation d = {:.2}", text_dilation(&reference, &wide));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod compile;
pub mod format;
pub mod link;
pub mod mdes;
pub mod sched;
pub mod stats;

pub use compile::{text_dilation, Compiled};
pub use mdes::{Mdes, ProcessorKind};
