//! Instruction-format synthesis.
//!
//! Following the paper's co-synthesized variable-length, multi-template
//! formats, each machine gets a small ladder of templates: the full-width
//! template plus progressively narrower ones. A template is a multiset of
//! kind-specific operation slots plus a header carrying the template id and
//! a multi-no-op field (a run length of empty cycles following the
//! instruction, encoded for free).
//!
//! Two properties of the synthesis drive the paper's dilation effect:
//!
//! * slot operand fields widen with the register files (`reg_bits`), and
//! * the narrowest available template grows with machine width (decoder
//!   granularity), so sparsely filled cycles on wide machines waste bits.

use crate::mdes::{bits_for, FuKind, Mdes};

/// Bits for an opcode field in any slot.
const OPCODE_BITS: u32 = 8;

/// Bits of the multi-no-op run-length field in every instruction header.
const NOOP_RUN_BITS: u32 = 2;

/// Maximum run of empty cycles encodable in the multi-no-op field.
pub const MAX_NOOP_RUN: u32 = (1 << NOOP_RUN_BITS) - 1;

/// Slot counts per functional-unit kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotSet {
    /// Integer slots.
    pub int: u32,
    /// Float slots.
    pub float: u32,
    /// Memory slots.
    pub mem: u32,
    /// Branch slots.
    pub branch: u32,
}

impl SlotSet {
    /// Total slots.
    pub fn total(&self) -> u32 {
        self.int + self.float + self.mem + self.branch
    }

    /// Whether `self` has at least the slots of `need` in every kind.
    pub fn covers(&self, need: &SlotSet) -> bool {
        self.int >= need.int
            && self.float >= need.float
            && self.mem >= need.mem
            && self.branch >= need.branch
    }
}

/// One instruction template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Template {
    /// Slot multiset.
    pub slots: SlotSet,
    /// Encoded size in bits, including the header.
    pub bits: u32,
    /// Encoded size in 32-bit words (instructions are word-quantized).
    pub words: u32,
}

/// A synthesized instruction format for one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstructionFormat {
    templates: Vec<Template>,
    /// Header bits (template id + multi-no-op field).
    pub header_bits: u32,
    /// Fetch-packet size in words (power of two covering the full template).
    pub packet_words: u32,
}

impl InstructionFormat {
    /// Synthesizes the template ladder for `mdes`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mhe_vliw::{format::InstructionFormat, mdes::ProcessorKind};
    /// let narrow = InstructionFormat::synthesize(&ProcessorKind::P1111.mdes());
    /// let wide = InstructionFormat::synthesize(&ProcessorKind::P6332.mdes());
    /// assert!(wide.min_template_words() > narrow.min_template_words());
    /// ```
    pub fn synthesize(mdes: &Mdes) -> Self {
        let width = mdes.width();
        // Decoder granularity: the narrowest mixed template grows with
        // width; only narrow machines (width <= 6) afford single-slot
        // templates.
        let min_size = if width <= 6 { 1 } else { width.div_ceil(4) };
        let mut sizes = vec![width, width.div_ceil(2), width.div_ceil(4).max(min_size), min_size];
        sizes.sort_unstable();
        sizes.dedup();

        // Count templates first so the header width is known: one mixed
        // template per ladder size, plus — on narrow machines — per-kind
        // single-slot templates and the common two-op pair templates
        // (int+mem, int+branch, mem+branch, float+branch).
        let singles = if min_size == 1 { 4 + 4 } else { 0 };
        let n_templates = (sizes.len() + singles) as u32;
        let header_bits = bits_for(n_templates) + NOOP_RUN_BITS;

        let mut templates = Vec::new();
        if min_size == 1 {
            for kind in FuKind::ALL {
                let mut slots = SlotSet::default();
                match kind {
                    FuKind::Int => slots.int = 1,
                    FuKind::Float => slots.float = 1,
                    FuKind::Mem => slots.mem = 1,
                    FuKind::Branch => slots.branch = 1,
                }
                templates.push(make_template(mdes, slots, header_bits));
            }
            let pairs = [
                SlotSet { int: 1, mem: 1, ..Default::default() },
                SlotSet { int: 1, branch: 1, ..Default::default() },
                SlotSet { mem: 1, branch: 1, ..Default::default() },
                SlotSet { float: 1, branch: 1, ..Default::default() },
            ];
            for slots in pairs {
                templates.push(make_template(mdes, slots, header_bits));
            }
        }
        for &size in &sizes {
            if size == 1 && min_size == 1 {
                continue; // covered by the single-slot templates
            }
            let slots = proportional_slots(mdes, size);
            templates.push(make_template(mdes, slots, header_bits));
        }
        templates.sort_by_key(|t| (t.bits, t.slots.total()));
        templates.dedup();

        let full_words =
            templates.iter().map(|t| t.words).max().expect("format always has templates");
        Self { templates, header_bits, packet_words: full_words.next_power_of_two() }
    }

    /// The templates, ordered by increasing size.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Smallest template size in words (the cost of a one-op or no-op
    /// instruction).
    pub fn min_template_words(&self) -> u32 {
        self.templates.first().map(|t| t.words).unwrap_or(1)
    }

    /// Greedy template selection: the smallest template covering `need`.
    ///
    /// Returns `None` if no template covers it (cannot happen for cycles
    /// produced by the scheduler for the same machine, whose full template
    /// covers every legal cycle).
    pub fn select(&self, need: &SlotSet) -> Option<&Template> {
        self.templates.iter().find(|t| t.slots.covers(need))
    }

    /// Words needed to encode one schedule cycle with the given slot needs.
    ///
    /// # Panics
    ///
    /// Panics if no template covers `need` (a scheduler/format mismatch).
    pub fn cycle_words(&self, need: &SlotSet) -> u32 {
        self.select(need).unwrap_or_else(|| panic!("no template covers {need:?}")).words
    }
}

/// Bits to encode one slot of the given kind on the given machine.
fn slot_bits(mdes: &Mdes, kind: FuKind) -> u32 {
    let pred = if mdes.predication { 4 } else { 0 };
    let base = match kind {
        // dst + two sources.
        FuKind::Int => OPCODE_BITS + 3 * mdes.reg_bits(FuKind::Int),
        FuKind::Float => OPCODE_BITS + 3 * mdes.reg_bits(FuKind::Float),
        // reg + address reg + short literal offset.
        FuKind::Mem => OPCODE_BITS + 2 * mdes.reg_bits(FuKind::Int) + 6,
        // 16-bit displacement.
        FuKind::Branch => OPCODE_BITS + 16,
    };
    base + pred
}

/// Instruction-size quantum in words: wider machines disperse operations to
/// unit clusters at a coarser granularity, so their instructions are
/// quantized to multi-word units (cf. EPIC bundle/dispersal granularity).
pub(crate) fn quantum_words(mdes: &Mdes) -> u32 {
    1 + mdes.width() / 9
}

fn make_template(mdes: &Mdes, slots: SlotSet, header_bits: u32) -> Template {
    let bits = header_bits
        + slots.int * slot_bits(mdes, FuKind::Int)
        + slots.float * slot_bits(mdes, FuKind::Float)
        + slots.mem * slot_bits(mdes, FuKind::Mem)
        + slots.branch * slot_bits(mdes, FuKind::Branch);
    let q = quantum_words(mdes);
    let words = bits.div_ceil(32).div_ceil(q) * q;
    Template { slots, bits, words }
}

/// Allocates `size` slots across kinds proportionally to the machine's unit
/// counts (largest-remainder method, weighted toward common classes).
fn proportional_slots(mdes: &Mdes, size: u32) -> SlotSet {
    let width = mdes.width();
    let units = [
        (FuKind::Int, mdes.int_units, 1.0f64),
        (FuKind::Float, mdes.float_units, 0.6),
        (FuKind::Mem, mdes.mem_units, 0.9),
        (FuKind::Branch, mdes.branch_units, 0.7),
    ];
    let mut counts = [0u32; 4];
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(4);
    let mut assigned = 0;
    for (i, &(_, n, w)) in units.iter().enumerate() {
        let exact = f64::from(n * size) / f64::from(width);
        counts[i] = (exact.floor() as u32).min(n);
        assigned += counts[i];
        remainders.push((i, (exact - exact.floor()) * w));
    }
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut k = 0;
    while assigned < size {
        let (i, _) = remainders[k % 4];
        if counts[i] < units[i].1 {
            counts[i] += 1;
            assigned += 1;
        }
        k += 1;
        if k > 16 {
            break; // every kind saturated: template equals the full machine
        }
    }
    SlotSet { int: counts[0], float: counts[1], mem: counts[2], branch: counts[3] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdes::ProcessorKind;

    #[test]
    fn full_template_covers_machine_width() {
        for kind in ProcessorKind::ALL {
            let m = kind.mdes();
            let f = InstructionFormat::synthesize(&m);
            let full = SlotSet {
                int: m.int_units,
                float: m.float_units,
                mem: m.mem_units,
                branch: m.branch_units,
            };
            assert!(f.select(&full).is_some(), "{kind}: full-width cycle must be encodable");
        }
    }

    #[test]
    fn narrow_machine_has_one_word_instructions() {
        let f = InstructionFormat::synthesize(&ProcessorKind::P1111.mdes());
        assert_eq!(f.min_template_words(), 1);
    }

    #[test]
    fn wide_machine_min_template_is_larger() {
        let f6332 = InstructionFormat::synthesize(&ProcessorKind::P6332.mdes());
        assert!(f6332.min_template_words() >= 3, "got {}", f6332.min_template_words());
    }

    #[test]
    fn selection_is_smallest_covering() {
        let f = InstructionFormat::synthesize(&ProcessorKind::P3221.mdes());
        let one_int = SlotSet { int: 1, ..Default::default() };
        let t = f.select(&one_int).unwrap();
        // Every other covering template must be at least as large.
        for other in f.templates() {
            if other.slots.covers(&one_int) {
                assert!(other.bits >= t.bits);
            }
        }
    }

    #[test]
    fn templates_sorted_ascending() {
        for kind in ProcessorKind::ALL {
            let f = InstructionFormat::synthesize(&kind.mdes());
            for w in f.templates().windows(2) {
                assert!(w[0].bits <= w[1].bits);
            }
        }
    }

    #[test]
    fn packet_is_power_of_two_and_covers_full_template() {
        for kind in ProcessorKind::ALL {
            let f = InstructionFormat::synthesize(&kind.mdes());
            assert!(f.packet_words.is_power_of_two());
            let max_words = f.templates().iter().map(|t| t.words).max().unwrap();
            assert!(f.packet_words >= max_words);
        }
    }

    #[test]
    fn slots_never_exceed_units() {
        for kind in ProcessorKind::ALL {
            let m = kind.mdes();
            for t in InstructionFormat::synthesize(&m).templates() {
                assert!(t.slots.int <= m.int_units);
                assert!(t.slots.float <= m.float_units);
                assert!(t.slots.mem <= m.mem_units);
                assert!(t.slots.branch <= m.branch_units);
            }
        }
    }

    #[test]
    fn predication_widens_slots() {
        let plain = crate::mdes::Mdes::builder("a").units(2, 1, 1, 1).build();
        let pred = crate::mdes::Mdes::builder("b").units(2, 1, 1, 1).predication(true).build();
        let fp = InstructionFormat::synthesize(&plain);
        let fq = InstructionFormat::synthesize(&pred);
        let full = SlotSet { int: 2, float: 1, mem: 1, branch: 1 };
        assert!(fq.select(&full).unwrap().bits > fp.select(&full).unwrap().bits);
    }

    #[test]
    fn covers_is_componentwise() {
        let a = SlotSet { int: 2, float: 1, mem: 1, branch: 1 };
        let b = SlotSet { int: 1, float: 0, mem: 1, branch: 0 };
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        let c = SlotSet { int: 0, float: 2, mem: 0, branch: 0 };
        assert!(!a.covers(&c));
    }
}
