//! List scheduler: maps IR basic blocks onto a VLIW machine.
//!
//! The scheduler plays the role of the paper's Elcor back-end. For every
//! basic block it produces a resource- and dependence-legal schedule (one
//! [`Vec<ScheduledOp>`] per cycle), inserts spill code when block register
//! pressure exceeds the allocator's budget, and — on machines with
//! speculation — hoists loads from a block's likely successor into its free
//! memory slots. Schedule *shape* is what the rest of the system consumes:
//! cycle counts determine processor performance, scheduled memory operations
//! determine the data trace, and cycles × instruction-format encoding
//! determine code size (and therefore dilation).

use crate::mdes::{FuKind, Mdes};
use mhe_workload::ir::{BlockId, OpClass, PatternId, ProcId, Program, RegClass, Terminator};

/// How a scheduled memory operation produces its address at trace time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRef {
    /// An original IR memory operation: advances its pattern's counter.
    Pattern(PatternId),
    /// A speculatively hoisted load: *peeks* the pattern without advancing,
    /// so the original operation (if it executes) sees the same address.
    Speculative(PatternId),
    /// Spill store to the given frame spill slot.
    SpillStore(u32),
    /// Spill reload from the given frame spill slot.
    SpillLoad(u32),
}

/// One operation placed in a schedule cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Operation class (determines the functional unit consumed).
    pub class: OpClass,
    /// Address source for memory operations.
    pub mem: Option<MemRef>,
}

/// A scheduled basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledBlock {
    /// Operations per cycle; empty cycles (latency stalls) are legal.
    pub cycles: Vec<Vec<ScheduledOp>>,
    /// Number of spill store/load *pairs* inserted.
    pub spills: u32,
    /// Number of speculative loads hoisted into this block.
    pub spec_loads: u32,
}

impl ScheduledBlock {
    /// Schedule length in cycles.
    pub fn len_cycles(&self) -> u32 {
        self.cycles.len() as u32
    }

    /// Total scheduled operations (including spills and speculative dups).
    pub fn op_count(&self) -> usize {
        self.cycles.iter().map(Vec::len).sum()
    }

    /// Iterates over memory references in schedule order.
    pub fn mem_refs(&self) -> impl Iterator<Item = MemRef> + '_ {
        self.cycles.iter().flatten().filter_map(|op| op.mem)
    }
}

/// A fully scheduled program for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledProgram {
    /// Scheduled blocks, indexed `[proc][block]`.
    pub procs: Vec<Vec<ScheduledBlock>>,
    /// The machine this schedule targets.
    pub mdes: Mdes,
}

impl ScheduledProgram {
    /// Schedules every block of `program` for `mdes`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mhe_vliw::{mdes::ProcessorKind, sched::ScheduledProgram};
    /// use mhe_workload::Benchmark;
    /// let program = Benchmark::Unepic.generate();
    /// let narrow = ScheduledProgram::schedule(&program, &ProcessorKind::P1111.mdes());
    /// let wide = ScheduledProgram::schedule(&program, &ProcessorKind::P6332.mdes());
    /// assert!(wide.total_cycles() < narrow.total_cycles());
    /// ```
    pub fn schedule(program: &Program, mdes: &Mdes) -> Self {
        let mut procs = Vec::with_capacity(program.procedures.len());
        for proc in &program.procedures {
            let mut blocks = Vec::with_capacity(proc.blocks.len());
            for block in &proc.blocks {
                blocks.push(schedule_block(block, mdes));
            }
            procs.push(blocks);
        }
        let mut sp = Self { procs, mdes: mdes.clone() };
        if mdes.speculation {
            speculate(program, &mut sp);
        }
        sp
    }

    /// The schedule for one block.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn block(&self, proc: ProcId, block: BlockId) -> &ScheduledBlock {
        &self.procs[proc.0 as usize][block.0 as usize]
    }

    /// Sum of schedule lengths over all static blocks (a static measure;
    /// dynamic cycle counts weight by execution frequency).
    pub fn total_cycles(&self) -> u64 {
        self.procs.iter().flatten().map(|b| u64::from(b.len_cycles())).sum()
    }

    /// Total speculative loads inserted program-wide.
    pub fn total_spec_loads(&self) -> u64 {
        self.procs.iter().flatten().map(|b| u64::from(b.spec_loads)).sum()
    }

    /// Total spill pairs inserted program-wide.
    pub fn total_spills(&self) -> u64 {
        self.procs.iter().flatten().map(|b| u64::from(b.spills)).sum()
    }
}

/// Fraction of a register file the allocator grants to block-local values.
/// The remainder is held for live-in/live-out values and the global
/// allocator.
const LOCAL_REG_FRACTION: u32 = 4;

#[allow(clippy::needless_range_loop)] // paired index access into ops and preds
fn schedule_block(block: &mhe_workload::ir::BasicBlock, mdes: &Mdes) -> ScheduledBlock {
    let n = block.ops.len();
    // --- Dependence edges: preds[j] = list of (i, latency_i). ---
    let mut preds: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    for j in 0..n {
        let opj = &block.ops[j];
        for i in 0..j {
            let opi = &block.ops[i];
            let raw = opi.dst.is_some_and(|d| opj.srcs.contains(&d));
            let waw = opi.dst.is_some() && opi.dst == opj.dst;
            let war = opj.dst.is_some_and(|d| opi.srcs.contains(&d));
            let mem = match (opi.class, opj.class) {
                (OpClass::Store, OpClass::Store) => true,
                (OpClass::Store, OpClass::Load) | (OpClass::Load, OpClass::Store) => {
                    opi.pattern == opj.pattern
                }
                _ => false,
            };
            if raw || mem {
                preds[j].push((i, opi.class.latency()));
            } else if waw || war {
                // Same-cycle issue is fine for anti/output deps on a VLIW
                // with register read-before-write semantics; order only.
                preds[j].push((i, 0));
            }
        }
    }
    // --- Priorities: longest path to a sink. ---
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        // height[i] = max over successors; compute via preds of later ops.
        for j in (i + 1)..n {
            if let Some(&(_, lat)) = preds[j].iter().find(|&&(p, _)| p == i) {
                height[i] = height[i].max(height[j] + lat.max(1));
            }
        }
    }
    // --- List scheduling. ---
    let mut issue = vec![usize::MAX; n];
    let mut cycles: Vec<Vec<ScheduledOp>> = Vec::new();
    let mut scheduled = 0usize;
    let mut cycle = 0usize;
    while scheduled < n {
        let mut free = [mdes.int_units, mdes.float_units, mdes.mem_units, mdes.branch_units];
        // Ready ops in priority order.
        let mut ready: Vec<usize> = (0..n)
            .filter(|&j| issue[j] == usize::MAX)
            .filter(|&j| {
                preds[j]
                    .iter()
                    .all(|&(p, lat)| issue[p] != usize::MAX && issue[p] + lat as usize <= cycle)
            })
            .collect();
        ready.sort_by_key(|&j| (std::cmp::Reverse(height[j]), j));
        let mut this_cycle = Vec::new();
        for j in ready {
            let kind = FuKind::for_op(block.ops[j].class);
            let slot = kind_index(kind);
            if free[slot] > 0 {
                free[slot] -= 1;
                issue[j] = cycle;
                this_cycle.push(ScheduledOp {
                    class: block.ops[j].class,
                    mem: block.ops[j].pattern.map(MemRef::Pattern),
                });
                scheduled += 1;
            }
        }
        cycles.push(this_cycle);
        cycle += 1;
    }
    if cycles.is_empty() {
        cycles.push(Vec::new());
    }
    // --- Terminator branch: in the final cycle if a branch unit is free,
    //     otherwise a new cycle. ---
    let branch = ScheduledOp { class: OpClass::Branch, mem: None };
    let last = cycles.len() - 1;
    let brs_in_last = cycles[last].iter().filter(|o| o.class == OpClass::Branch).count() as u32;
    if brs_in_last < mdes.branch_units {
        cycles[last].push(branch);
    } else {
        cycles.push(vec![branch]);
    }
    // --- Spills. ---
    let spills = insert_spills(block, &issue, &mut cycles, mdes);
    ScheduledBlock { cycles, spills, spec_loads: 0 }
}

fn kind_index(kind: FuKind) -> usize {
    match kind {
        FuKind::Int => 0,
        FuKind::Float => 1,
        FuKind::Mem => 2,
        FuKind::Branch => 3,
    }
}

/// Computes block-local register pressure and inserts spill code for the
/// values that exceed the budget. Returns the number of spill pairs.
fn insert_spills(
    block: &mhe_workload::ir::BasicBlock,
    issue: &[usize],
    cycles: &mut Vec<Vec<ScheduledOp>>,
    mdes: &Mdes,
) -> u32 {
    let n_cycles = cycles.len();
    let mut pressure = 0u32;
    for (class, regs) in [(RegClass::Int, mdes.int_regs), (RegClass::Float, mdes.float_regs)] {
        // Live interval of each def: [issue, last use] (through block end if
        // unused locally — it may be live-out).
        let mut intervals: Vec<(usize, usize)> = Vec::new();
        for (i, op) in block.ops.iter().enumerate() {
            let Some(dst) = op.dst else { continue };
            if dst.class != class {
                continue;
            }
            let mut last_use: Option<usize> = None;
            for (j, later) in block.ops.iter().enumerate().skip(i + 1) {
                if later.srcs.contains(&dst) {
                    last_use = Some(last_use.map_or(issue[j], |u| u.max(issue[j])));
                }
                if later.dst == Some(dst) {
                    break; // redefinition kills the range
                }
            }
            // Only locally-used values compete for the block-local budget;
            // live-out values are the global allocator's problem (they hold
            // the registers the budget already excludes).
            let Some(end) = last_use else { continue };
            intervals.push((issue[i], end.max(issue[i])));
        }
        let budget = (regs / LOCAL_REG_FRACTION).max(4);
        let peak = peak_overlap(&intervals, n_cycles);
        pressure += peak.saturating_sub(budget);
    }
    // Each spilled value costs a store after definition and a reload before
    // use; place them in free memory slots, appending cycles if needed.
    for s in 0..pressure {
        place_mem_op(cycles, mdes, MemRef::SpillStore(s), OpClass::Store);
        place_mem_op(cycles, mdes, MemRef::SpillLoad(s), OpClass::Load);
    }
    pressure
}

fn peak_overlap(intervals: &[(usize, usize)], n_cycles: usize) -> u32 {
    let mut delta = vec![0i32; n_cycles + 1];
    for &(s, e) in intervals {
        delta[s] += 1;
        delta[(e + 1).min(n_cycles)] -= 1;
    }
    let mut cur = 0i32;
    let mut peak = 0i32;
    for d in delta {
        cur += d;
        peak = peak.max(cur);
    }
    peak.max(0) as u32
}

/// Places a memory op in the first cycle with a free memory unit, or in a
/// fresh trailing cycle.
fn place_mem_op(cycles: &mut Vec<Vec<ScheduledOp>>, mdes: &Mdes, mem: MemRef, class: OpClass) {
    let op = ScheduledOp { class, mem: Some(mem) };
    for c in cycles.iter_mut() {
        let used = c.iter().filter(|o| o.class.is_mem()).count() as u32;
        if used < mdes.mem_units {
            c.push(op);
            return;
        }
    }
    cycles.push(vec![op]);
}

/// Program-wide speculation pass: hoist the leading loads of each block's
/// likely successor into the block's free memory slots.
fn speculate(program: &Program, sp: &mut ScheduledProgram) {
    // Budget grows with spare memory units and with issue width: wider
    // machines have more idle slots worth filling. The narrow reference
    // machine (width 4, one memory unit) gets no budget at all — exactly
    // the asymmetry the paper attributes wider processors' extra loads to.
    let budget = sp.mdes.mem_units.saturating_sub(1)
        + u32::from(sp.mdes.width() >= 5)
        + u32::from(sp.mdes.width() >= 8);
    if budget == 0 {
        return;
    }
    for (pi, proc) in program.procedures.iter().enumerate() {
        for (bi, block) in proc.blocks.iter().enumerate() {
            let Terminator::Branch { taken, fall, p_taken } = block.terminator else {
                continue;
            };
            let likely = if p_taken >= 0.5 { taken } else { fall };
            let succ = &proc.blocks[likely.0 as usize];
            let loads: Vec<PatternId> = succ
                .ops
                .iter()
                .filter(|o| o.class == OpClass::Load)
                .filter_map(|o| o.pattern)
                .take(budget as usize)
                .collect();
            if loads.is_empty() {
                continue;
            }
            let sb = &mut sp.procs[pi][bi];
            let mut inserted = 0u32;
            'outer: for pid in loads {
                for c in sb.cycles.iter_mut() {
                    let used = c.iter().filter(|o| o.class.is_mem()).count() as u32;
                    if used < sp.mdes.mem_units {
                        c.push(ScheduledOp {
                            class: OpClass::Load,
                            mem: Some(MemRef::Speculative(pid)),
                        });
                        inserted += 1;
                        continue 'outer;
                    }
                }
                break; // no free slots anywhere: stop hoisting
            }
            sb.spec_loads = inserted;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdes::ProcessorKind;
    use mhe_workload::Benchmark;

    fn sched(kind: ProcessorKind) -> (mhe_workload::Program, ScheduledProgram) {
        let p = Benchmark::Unepic.generate();
        let s = ScheduledProgram::schedule(&p, &kind.mdes());
        (p, s)
    }

    #[test]
    fn every_block_has_at_least_one_cycle() {
        let (p, s) = sched(ProcessorKind::P1111);
        for (pi, proc) in p.procedures.iter().enumerate() {
            for bi in 0..proc.blocks.len() {
                assert!(!s.procs[pi][bi].cycles.is_empty());
            }
        }
    }

    #[test]
    fn resource_constraints_hold_every_cycle() {
        for kind in ProcessorKind::ALL {
            let m = kind.mdes();
            let (_, s) = sched(kind);
            for proc in &s.procs {
                for blk in proc {
                    for cyc in &blk.cycles {
                        let mut used = [0u32; 4];
                        for op in cyc {
                            used[kind_index(FuKind::for_op(op.class))] += 1;
                        }
                        assert!(used[0] <= m.int_units);
                        assert!(used[1] <= m.float_units);
                        assert!(used[2] <= m.mem_units);
                        assert!(used[3] <= m.branch_units);
                    }
                }
            }
        }
    }

    #[test]
    fn all_original_ops_are_scheduled() {
        let (p, s) = sched(ProcessorKind::P3221);
        for (pi, proc) in p.procedures.iter().enumerate() {
            for (bi, block) in proc.blocks.iter().enumerate() {
                let sb = &s.procs[pi][bi];
                let original: usize = sb
                    .cycles
                    .iter()
                    .flatten()
                    .filter(|o| {
                        !matches!(
                            o.mem,
                            Some(MemRef::Speculative(_))
                                | Some(MemRef::SpillStore(_))
                                | Some(MemRef::SpillLoad(_))
                        )
                    })
                    .count();
                // Original ops + exactly one terminator branch.
                assert_eq!(original, block.ops.len() + 1, "proc {pi} block {bi}");
            }
        }
    }

    #[test]
    fn wider_machines_schedule_fewer_or_equal_cycles() {
        let p = Benchmark::Rasta.generate();
        let narrow = ScheduledProgram::schedule(&p, &ProcessorKind::P1111.mdes());
        let wide = ScheduledProgram::schedule(&p, &ProcessorKind::P6332.mdes());
        assert!(wide.total_cycles() < narrow.total_cycles());
    }

    #[test]
    fn wider_machines_speculate_more() {
        let p = Benchmark::Gcc.generate();
        let spec: Vec<u64> = ProcessorKind::ALL
            .iter()
            .map(|k| ScheduledProgram::schedule(&p, &k.mdes()).total_spec_loads())
            .collect();
        assert!(spec[0] == 0, "1111 has one mem unit: no speculation budget");
        assert!(spec[4] > spec[1], "6332 should speculate more than 2111: {spec:?}");
    }

    #[test]
    fn disabling_speculation_removes_spec_loads() {
        let p = Benchmark::Epic.generate();
        let m = crate::mdes::Mdes::builder("wide-nospec")
            .units(6, 3, 3, 2)
            .regs(96, 64)
            .speculation(false)
            .build();
        let s = ScheduledProgram::schedule(&p, &m);
        assert_eq!(s.total_spec_loads(), 0);
    }

    #[test]
    fn branch_terminator_present_exactly_once_per_block() {
        let (_, s) = sched(ProcessorKind::P2111);
        for proc in &s.procs {
            for blk in proc {
                let branches =
                    blk.cycles.iter().flatten().filter(|o| o.class == OpClass::Branch).count();
                assert_eq!(branches, 1);
            }
        }
    }

    #[test]
    fn dependences_respected_by_issue_cycles() {
        // A hand-built chain: op1 -> op2 -> op3 (RAW each) must serialize
        // even on the widest machine.
        use mhe_workload::ir::{BasicBlock, Op, Terminator, Vreg};
        let chain = BasicBlock::new(
            vec![
                Op::compute(OpClass::IntAlu, Some(Vreg::int(100)), vec![]),
                Op::compute(OpClass::IntAlu, Some(Vreg::int(101)), vec![Vreg::int(100)]),
                Op::compute(OpClass::IntAlu, Some(Vreg::int(102)), vec![Vreg::int(101)]),
            ],
            Terminator::Return,
        );
        let m = ProcessorKind::P6332.mdes();
        let sb = schedule_block(&chain, &m);
        // 3 dependent 1-cycle ops need at least 3 cycles.
        assert!(sb.len_cycles() >= 3, "chain scheduled in {} cycles", sb.len_cycles());
    }

    #[test]
    fn independent_ops_pack_on_wide_machine() {
        use mhe_workload::ir::{BasicBlock, Op, Terminator, Vreg};
        let parallel = BasicBlock::new(
            (0..6)
                .map(|i| Op::compute(OpClass::IntAlu, Some(Vreg::int(200 + i)), vec![]))
                .collect(),
            Terminator::Return,
        );
        let wide = schedule_block(&parallel, &ProcessorKind::P6332.mdes());
        let narrow = schedule_block(&parallel, &ProcessorKind::P1111.mdes());
        assert_eq!(wide.len_cycles(), 1, "6 independent int ops fit one 6332 cycle");
        assert!(narrow.len_cycles() >= 6);
    }

    #[test]
    fn spec_loads_peek_patterns() {
        let p = Benchmark::Gcc.generate();
        let s = ScheduledProgram::schedule(&p, &ProcessorKind::P6332.mdes());
        let any_spec = s
            .procs
            .iter()
            .flatten()
            .flat_map(|b| b.mem_refs())
            .any(|m| matches!(m, MemRef::Speculative(_)));
        assert!(any_spec, "wide machine should have hoisted some loads");
    }
}
