//! The dilation model: efficient memory-hierarchy evaluation for VLIW
//! design-space exploration.
//!
//! This crate is the reproduction of the paper's primary contribution. The
//! problem: evaluating every (processor, cache) pair in a large embedded
//! design space by trace simulation is infeasible. The solution evaluates
//! caches **only on a single reference processor's traces** and models every
//! other processor's trace as a *dilated* reference trace, where each
//! instruction basic block stretches by the text-size ratio `d`:
//!
//! * [`dilation`] — text dilation and per-block dilation distributions
//!   (Figure 5);
//! * [`icache`] — Lemma 1 (dilation ⇔ line contraction) and the
//!   AHH-collision interpolation of Eq. 4.12;
//! * [`ucache`] — the mixed dilated/undilated extrapolation of
//!   Eqs. 4.13–4.15;
//! * [`evaluator`] — measure-once / estimate-everywhere orchestration,
//!   plus the ground-truth helpers (actual and dilated-trace simulation)
//!   used to validate the model;
//! * [`system`] — hierarchical whole-system evaluation (processor cycles +
//!   cache stalls).
//!
//! # Quick start
//!
//! ```
//! use mhe_cache::CacheConfig;
//! use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
//! use mhe_vliw::mdes::ProcessorKind;
//! use mhe_workload::Benchmark;
//!
//! let icache = CacheConfig::from_bytes(1024, 1, 32);
//! let dcache = CacheConfig::from_bytes(1024, 1, 32);
//! let ucache = CacheConfig::from_bytes(16 * 1024, 2, 64);
//! let eval = ReferenceEvaluation::for_benchmark(
//!     Benchmark::Unepic,
//!     &ProcessorKind::P1111.mdes(),
//!     EvalConfig { events: 20_000, ..EvalConfig::default() },
//!     &[icache], &[dcache], &[ucache],
//! );
//!
//! // Misses of the wide 6332 processor — no simulation of its trace:
//! let d = eval.dilation_of(&ProcessorKind::P6332.mdes());
//! let misses = eval.estimate_icache_misses(icache, d)?;
//! assert!(misses > 0.0);
//! # Ok::<(), mhe_core::MheError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accel;
pub mod auth;
pub mod bank;
pub mod cancel;
pub mod dilation;
pub mod env;
pub mod error;
pub mod evaluator;
pub mod fault;
pub mod icache;
pub mod metrics;
pub mod parallel;
pub mod system;
pub mod ucache;

pub use accel::{accelerated_cycles, Accelerator, KernelMap};
pub use bank::{FeatureKey, ReferenceBank};
pub use cancel::CancelToken;
pub use dilation::{text_dilation, DilationDistribution};
pub use env::RetryPolicy;
pub use error::{
    MheError, EXIT_BAD_CONFIG, EXIT_CANCELLED, EXIT_CORRUPT_INPUT, EXIT_SERVER_UNAVAILABLE,
    EXIT_UNAUTHORIZED, EXIT_WORKER_FAILURE,
};
pub use evaluator::{
    actual_misses, dilated_misses, EvalConfig, EvalConfigBuilder, ReferenceEvaluation,
};
pub use fault::{Fault, FaultPlan, FaultyReader, FaultyWriter};
pub use metrics::{EvalMetrics, PassMetrics, SamplingMetrics};
pub use mhe_sampling::SamplingConfig;
pub use parallel::{worker_threads, ParallelSweep, SweepError, SweepMetrics};
pub use system::{evaluate_system, processor_cycles, SystemDesign, SystemPerformance};
