//! The memory-hierarchy evaluator: measure once on the reference
//! processor, estimate everywhere else.
//!
//! [`ReferenceEvaluation`] packages the paper's whole efficiency story for
//! one application:
//!
//! 1. the application is compiled for the *reference* processor and its
//!    traces generated once;
//! 2. each stream's AHH trace parameters are measured in a single
//!    simulation-like pass (`TraceModeler`);
//! 3. every cache configuration in the design space — expanded with the
//!    neighbouring power-of-two line sizes that dilation interpolation
//!    needs — is simulated with the single-pass simulator, one pass per
//!    distinct line size;
//! 4. miss counts for *any* processor in the design space are then produced
//!    analytically from its text dilation, with no further simulation
//!    ([`ReferenceEvaluation::estimate_icache_misses`],
//!    [`ReferenceEvaluation::estimate_ucache_misses`],
//!    [`ReferenceEvaluation::dcache_misses`]).
//!
//! The module also provides the ground-truth helpers ([`actual_misses`],
//! [`dilated_misses`]) used to validate the model (Tables 2/4, Figures
//! 6/7).
//!
//! The reference trace is materialised once into shared buffers and the
//! modeler and simulation passes fan out across a scoped-thread worker
//! pool ([`crate::parallel`]). Every pass is independent, so miss counts
//! are bit-identical for any worker count; [`EvalConfig::threads`] and the
//! `MHE_THREADS` environment variable control the pool size, and
//! [`ReferenceEvaluation::metrics`] reports where the time went.

use crate::icache::estimate_icache_misses;
use crate::metrics::{EvalMetrics, PassMetrics};
use crate::parallel::ParallelSweep;
use crate::ucache::estimate_ucache_misses;
use mhe_cache::{Cache, CacheConfig, SinglePassSim};
use mhe_model::ahh::UniqueLineModel;
use mhe_model::params::{TraceParams, UnifiedParams, I_GRANULE, U_GRANULE};
use mhe_model::{ITraceModeler, UTraceModeler};
use mhe_trace::{Access, DilatedTraceGenerator, StreamKind, TraceGenerator};
use mhe_vliw::compile::Compiled;
use mhe_vliw::Mdes;
use mhe_workload::exec::BlockFrequencies;
use mhe_workload::ir::Program;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs of the reference evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalConfig {
    /// Dynamic window: number of basic-block events per trace.
    pub events: usize,
    /// Seed for execution (branch decisions, random data patterns).
    pub seed: u64,
    /// Granule size for instruction-trace parameters.
    pub i_granule: usize,
    /// Granule size for unified-trace parameters.
    pub u_granule: usize,
    /// Largest dilation the evaluation must support (determines how many
    /// smaller power-of-two line sizes are pre-simulated).
    pub max_dilation: f64,
    /// Which `u(L)` formula the estimators use.
    pub model: UniqueLineModel,
    /// Worker threads for the measurement fan-out; `0` means automatic
    /// (`MHE_THREADS`, else available parallelism). Results are
    /// bit-identical for every value.
    pub threads: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            events: 400_000,
            seed: 0xC0FF_EE01,
            i_granule: I_GRANULE,
            u_granule: U_GRANULE,
            max_dilation: 4.0,
            model: UniqueLineModel::RunBased,
            threads: 0,
        }
    }
}

impl EvalConfig {
    /// The effective worker count (resolves `threads == 0`).
    pub fn worker_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            crate::parallel::worker_threads()
        }
    }
}

/// Measured state of one application on the reference processor, ready to
/// answer miss queries for any processor in the design space.
#[derive(Debug)]
pub struct ReferenceEvaluation {
    config: EvalConfig,
    program: Program,
    freq: BlockFrequencies,
    reference: Compiled,
    iparams: TraceParams,
    uparams: UnifiedParams,
    imeasured: HashMap<CacheConfig, u64>,
    dmeasured: HashMap<CacheConfig, u64>,
    umeasured: HashMap<CacheConfig, u64>,
    metrics: EvalMetrics,
}

/// One unit of fan-out work: a modeler pass or a single-pass simulation.
enum MeasureTask {
    IModel { addrs: Arc<[u64]>, granule: usize },
    UModel { trace: Arc<[Access]>, granule: usize },
    Sim { kind: StreamKind, line: u32, configs: Vec<CacheConfig>, addrs: Arc<[u64]> },
}

enum MeasureResult {
    IModel(TraceParams, Duration),
    UModel(UnifiedParams, Duration),
    Sim { kind: StreamKind, rows: Vec<(CacheConfig, u64)>, pass: PassMetrics },
}

fn run_measure_task(task: MeasureTask) -> MeasureResult {
    match task {
        MeasureTask::IModel { addrs, granule } => {
            let start = Instant::now();
            let mut m = ITraceModeler::new(granule);
            for &a in addrs.iter() {
                m.process(a);
            }
            MeasureResult::IModel(m.finish(), start.elapsed())
        }
        MeasureTask::UModel { trace, granule } => {
            let start = Instant::now();
            let mut m = UTraceModeler::new(granule);
            for &a in trace.iter() {
                m.process(a);
            }
            MeasureResult::UModel(m.finish(), start.elapsed())
        }
        MeasureTask::Sim { kind, line, configs, addrs } => {
            let start = Instant::now();
            let mut sim = SinglePassSim::for_configs(&configs);
            for &a in addrs.iter() {
                sim.access(a);
            }
            let rows: Vec<(CacheConfig, u64)> =
                configs.iter().map(|&c| (c, sim.misses(c.sets, c.assoc))).collect();
            let pass = PassMetrics {
                stream: kind,
                line_words: line,
                configs: configs.len(),
                addresses: addrs.len() as u64,
                wall: start.elapsed(),
            };
            MeasureResult::Sim { kind, rows, pass }
        }
    }
}

/// Groups configurations by line size (deterministically ordered) and
/// emits one simulation task per group.
fn sim_tasks(kind: StreamKind, configs: &[CacheConfig], addrs: &Arc<[u64]>) -> Vec<MeasureTask> {
    let mut by_line: BTreeMap<u32, Vec<CacheConfig>> = BTreeMap::new();
    for &c in configs {
        by_line.entry(c.line_words).or_default().push(c);
    }
    by_line
        .into_iter()
        .map(|(line, group)| MeasureTask::Sim {
            kind,
            line,
            configs: group,
            addrs: Arc::clone(addrs),
        })
        .collect()
}

impl ReferenceEvaluation {
    /// Compiles `program` for the reference machine, measures trace
    /// parameters, and simulates the given cache design spaces on the
    /// reference trace.
    ///
    /// Instruction-cache configurations are automatically expanded with the
    /// smaller power-of-two line sizes required to interpolate up to
    /// `config.max_dilation`.
    pub fn build(
        program: Program,
        reference_mdes: &Mdes,
        config: EvalConfig,
        icaches: &[CacheConfig],
        dcaches: &[CacheConfig],
        ucaches: &[CacheConfig],
    ) -> Self {
        let build_start = Instant::now();
        let freq = BlockFrequencies::profile(&program, config.seed, 200_000);
        let reference = Compiled::build(&program, reference_mdes, Some(&freq));

        // --- Materialise the reference trace once; every pass below reads
        // the shared buffers instead of regenerating the trace. ---
        let trace_start = Instant::now();
        let unified: Vec<Access> = TraceGenerator::new(&program, &reference, config.seed)
            .with_event_limit(config.events)
            .collect();
        let iaddrs: Arc<[u64]> = unified
            .iter()
            .filter(|a| StreamKind::Instruction.admits(a.kind))
            .map(|a| a.addr)
            .collect();
        let daddrs: Arc<[u64]> = unified
            .iter()
            .filter(|a| StreamKind::Data.admits(a.kind))
            .map(|a| a.addr)
            .collect();
        let uaddrs: Arc<[u64]> = unified.iter().map(|a| a.addr).collect();
        let unified: Arc<[Access]> = unified.into();
        let trace_wall = trace_start.elapsed();

        // --- Fan out: two modeler passes plus one single-pass simulation
        // per (stream, line size), all independent. ---
        let expanded = expand_line_sizes(icaches, config.max_dilation);
        let mut tasks = vec![
            MeasureTask::IModel { addrs: Arc::clone(&iaddrs), granule: config.i_granule },
            MeasureTask::UModel { trace: Arc::clone(&unified), granule: config.u_granule },
        ];
        tasks.extend(sim_tasks(StreamKind::Instruction, &expanded, &iaddrs));
        tasks.extend(sim_tasks(StreamKind::Data, dcaches, &daddrs));
        tasks.extend(sim_tasks(StreamKind::Unified, ucaches, &uaddrs));

        let sweep = ParallelSweep::with_threads(config.worker_threads());
        let sim_start = Instant::now();
        let results = sweep.map(tasks, run_measure_task);
        let sim_wall = sim_start.elapsed();

        // --- Merge (input order, so metrics are deterministic too). ---
        let mut iparams = None;
        let mut uparams = None;
        let mut model_wall = Duration::ZERO;
        let mut imeasured = HashMap::new();
        let mut dmeasured = HashMap::new();
        let mut umeasured = HashMap::new();
        let mut passes = Vec::new();
        for result in results {
            match result {
                MeasureResult::IModel(p, wall) => {
                    iparams = Some(p);
                    model_wall += wall;
                }
                MeasureResult::UModel(p, wall) => {
                    uparams = Some(p);
                    model_wall += wall;
                }
                MeasureResult::Sim { kind, rows, pass } => {
                    let map = match kind {
                        StreamKind::Instruction => &mut imeasured,
                        StreamKind::Data => &mut dmeasured,
                        StreamKind::Unified => &mut umeasured,
                    };
                    map.extend(rows);
                    passes.push(pass);
                }
            }
        }
        let metrics = EvalMetrics {
            threads: sweep.threads(),
            trace_len: uaddrs.len() as u64,
            trace_wall,
            model_wall,
            sim_wall,
            build_wall: build_start.elapsed(),
            passes,
        };

        Self {
            config,
            program,
            freq,
            reference,
            iparams: iparams.expect("instruction modeler task ran"),
            uparams: uparams.expect("unified modeler task ran"),
            imeasured,
            dmeasured,
            umeasured,
            metrics,
        }
    }

    /// Convenience: build for a benchmark with the paper's cache spaces.
    pub fn for_benchmark(
        benchmark: mhe_workload::Benchmark,
        reference_mdes: &Mdes,
        config: EvalConfig,
        icaches: &[CacheConfig],
        dcaches: &[CacheConfig],
        ucaches: &[CacheConfig],
    ) -> Self {
        Self::build(benchmark.generate(), reference_mdes, config, icaches, dcaches, ucaches)
    }

    /// The evaluation's configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// The application program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The reference compilation.
    pub fn reference(&self) -> &Compiled {
        &self.reference
    }

    /// Instruction-trace AHH parameters.
    pub fn iparams(&self) -> &TraceParams {
        &self.iparams
    }

    /// Unified-trace AHH parameters (instruction and data components).
    pub fn uparams(&self) -> &UnifiedParams {
        &self.uparams
    }

    /// Text dilation of a target machine relative to the reference.
    ///
    /// This compiles the program for the target (cheap: no simulation),
    /// using the same layout profile as the reference so that
    /// `dilation_of(reference) == 1` exactly.
    pub fn dilation_of(&self, target: &Mdes) -> f64 {
        self.compile_target(target).text_words() as f64 / self.reference.text_words() as f64
    }

    /// Compiles the program for a target machine with the evaluation's
    /// layout profile.
    pub fn compile_target(&self, target: &Mdes) -> Compiled {
        Compiled::build(&self.program, target, Some(&self.freq))
    }

    /// Where the build's time went (trace, modelers, simulation fan-out).
    pub fn metrics(&self) -> &EvalMetrics {
        &self.metrics
    }

    /// All measured instruction-cache miss counts (including the expanded
    /// line sizes).
    pub fn imeasured(&self) -> &HashMap<CacheConfig, u64> {
        &self.imeasured
    }

    /// All measured data-cache miss counts.
    pub fn dmeasured(&self) -> &HashMap<CacheConfig, u64> {
        &self.dmeasured
    }

    /// All measured unified-cache miss counts.
    pub fn umeasured(&self) -> &HashMap<CacheConfig, u64> {
        &self.umeasured
    }

    /// Measured reference-trace misses of an instruction cache, if
    /// simulated.
    pub fn icache_misses_measured(&self, config: CacheConfig) -> Option<u64> {
        self.imeasured.get(&config).copied()
    }

    /// Measured reference-trace misses of a unified cache, if simulated.
    pub fn ucache_misses_measured(&self, config: CacheConfig) -> Option<u64> {
        self.umeasured.get(&config).copied()
    }

    /// Estimated instruction-cache misses under dilation `d`
    /// (Lemma 1 + Eq. 4.12).
    ///
    /// # Errors
    ///
    /// Returns `Err` if the required neighbouring line sizes were not in the
    /// simulated space (build with a larger `max_dilation`).
    pub fn estimate_icache_misses(&self, config: CacheConfig, d: f64) -> Result<f64, String> {
        let table = |cfg: CacheConfig| self.imeasured.get(&cfg).copied();
        estimate_icache_misses(&self.iparams, &table, config, d, self.config.model)
    }

    /// Estimated unified-cache misses under dilation `d` (Eq. 4.15).
    ///
    /// # Errors
    ///
    /// Returns `Err` if the configuration was not simulated.
    pub fn estimate_ucache_misses(&self, config: CacheConfig, d: f64) -> Result<f64, String> {
        let measured = self
            .umeasured
            .get(&config)
            .copied()
            .ok_or_else(|| format!("missing measured unified misses for {config}"))?;
        Ok(estimate_ucache_misses(&self.uparams, measured, config, d, self.config.model))
    }

    /// Data-cache misses for *any* processor (Eq. 4.1: the data trace is
    /// assumed unchanged, so the reference measurement is the answer).
    ///
    /// # Errors
    ///
    /// Returns `Err` if the configuration was not simulated.
    pub fn dcache_misses(&self, config: CacheConfig) -> Result<u64, String> {
        self.dmeasured
            .get(&config)
            .copied()
            .ok_or_else(|| format!("missing measured data misses for {config}"))
    }
}

/// Adds, for every instruction-cache configuration, the smaller
/// power-of-two line sizes needed to interpolate contracted lines down to
/// `L / max_dilation`.
fn expand_line_sizes(configs: &[CacheConfig], max_dilation: f64) -> Vec<CacheConfig> {
    let mut out: Vec<CacheConfig> = Vec::new();
    for &c in configs {
        let min_line = (f64::from(c.line_words) / max_dilation).floor().max(1.0) as u32;
        let mut l = c.line_words;
        loop {
            out.push(CacheConfig::new(c.sets, c.assoc, l));
            if l <= min_line || l == 1 {
                break;
            }
            l /= 2;
        }
        // One step upward as well: dilations slightly below 1 occur when a
        // target's code is *denser* than the reference's (e.g. the same
        // width without speculation), and then L/d exceeds L.
        out.push(CacheConfig::new(c.sets, c.assoc, c.line_words * 2));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Ground truth: simulates `config` on the *actual* trace of a target
/// compilation (the paper's "Actual" columns).
pub fn actual_misses(
    program: &Program,
    target: &Compiled,
    eval: &EvalConfig,
    kind: StreamKind,
    config: CacheConfig,
) -> u64 {
    let mut cache = Cache::new(config);
    for a in TraceGenerator::new(program, target, eval.seed)
        .with_event_limit(eval.events)
        .stream(kind)
    {
        cache.access(a.addr);
    }
    cache.stats().misses
}

/// Ground truth for the model's step 3: simulates `config` on the
/// reference trace *dilated by `d`* (the paper's "Dilated" columns).
pub fn dilated_misses(
    program: &Program,
    reference: &Compiled,
    d: f64,
    eval: &EvalConfig,
    kind: StreamKind,
    config: CacheConfig,
) -> u64 {
    let mut cache = Cache::new(config);
    for a in DilatedTraceGenerator::new(program, reference, d, eval.seed)
        .with_event_limit(eval.events)
        .stream(kind)
    {
        cache.access(a.addr);
    }
    cache.stats().misses
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhe_vliw::mdes::ProcessorKind;
    use mhe_workload::Benchmark;

    fn small_eval() -> ReferenceEvaluation {
        let cfg = EvalConfig { events: 60_000, ..EvalConfig::default() };
        ReferenceEvaluation::for_benchmark(
            Benchmark::Unepic,
            &ProcessorKind::P1111.mdes(),
            cfg,
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(16 * 1024, 2, 64)],
        )
    }

    #[test]
    fn build_measures_all_spaces() {
        let e = small_eval();
        let ic = CacheConfig::from_bytes(1024, 1, 32);
        assert!(e.icache_misses_measured(ic).is_some());
        assert!(e.dcache_misses(CacheConfig::from_bytes(1024, 1, 32)).is_ok());
        assert!(e
            .ucache_misses_measured(CacheConfig::from_bytes(16 * 1024, 2, 64))
            .is_some());
        // Expanded line sizes present: 32B cache with max_dilation 4 needs
        // 16B and 8B variants too.
        assert!(e.icache_misses_measured(CacheConfig::new(32, 1, 4)).is_some());
        assert!(e.icache_misses_measured(CacheConfig::new(32, 1, 2)).is_some());
    }

    #[test]
    fn unit_dilation_estimate_equals_measurement() {
        let e = small_eval();
        let ic = CacheConfig::from_bytes(1024, 1, 32);
        let est = e.estimate_icache_misses(ic, 1.0).unwrap();
        let measured = e.icache_misses_measured(ic).unwrap() as f64;
        assert!((est - measured).abs() < 1e-6);
        let uc = CacheConfig::from_bytes(16 * 1024, 2, 64);
        let est_u = e.estimate_ucache_misses(uc, 1.0).unwrap();
        let measured_u = e.ucache_misses_measured(uc).unwrap() as f64;
        assert!((est_u - measured_u).abs() < 1e-6);
    }

    #[test]
    fn icache_estimates_grow_with_dilation() {
        let e = small_eval();
        let ic = CacheConfig::from_bytes(1024, 1, 32);
        let m1 = e.estimate_icache_misses(ic, 1.0).unwrap();
        let m2 = e.estimate_icache_misses(ic, 2.0).unwrap();
        let m3 = e.estimate_icache_misses(ic, 3.0).unwrap();
        assert!(m2 > m1 * 1.05, "d=2 should clearly exceed d=1: {m1} -> {m2}");
        assert!(m3 > m2, "{m2} -> {m3}");
    }

    #[test]
    fn estimate_tracks_dilated_simulation() {
        // The model's step-3 accuracy claim, on a small instance: estimated
        // misses track the simulated dilated-trace misses.
        let e = small_eval();
        let ic = CacheConfig::from_bytes(1024, 1, 32);
        let mut worst = 0.0f64;
        let mut total = 0.0;
        let ds = [1.5, 2.0, 2.5];
        for d in ds {
            let est = e.estimate_icache_misses(ic, d).unwrap();
            let sim = dilated_misses(
                e.program(),
                e.reference(),
                d,
                e.config(),
                StreamKind::Instruction,
                ic,
            ) as f64;
            let rel = (est - sim).abs() / sim;
            worst = worst.max(rel);
            total += rel;
        }
        // Paper-comparable accuracy: Table 4 shows per-point errors of this
        // order; require the average to be clearly informative and no
        // single point to be wildly off.
        let mean = total / ds.len() as f64;
        assert!(mean < 0.30, "mean error {:.1}%", mean * 100.0);
        assert!(worst < 0.50, "worst error {:.1}%", worst * 100.0);
    }

    #[test]
    fn dilation_of_reference_is_one() {
        let e = small_eval();
        let d = e.dilation_of(&ProcessorKind::P1111.mdes());
        assert!((d - 1.0).abs() < 1e-12);
        assert!(e.dilation_of(&ProcessorKind::P6332.mdes()) > 2.0);
    }

    #[test]
    fn missing_config_errors_cleanly() {
        let e = small_eval();
        let unknown = CacheConfig::from_bytes(4096, 4, 16);
        assert!(e.estimate_ucache_misses(unknown, 1.5).is_err());
        assert!(e.dcache_misses(unknown).is_err());
    }

    #[test]
    fn expand_line_sizes_covers_dilation_range() {
        let base = CacheConfig::from_bytes(1024, 1, 32); // 8-word lines
        let out = expand_line_sizes(&[base], 4.0);
        let lines: Vec<u32> = out.iter().map(|c| c.line_words).collect();
        assert!(lines.contains(&8));
        assert!(lines.contains(&4));
        assert!(lines.contains(&2));
        assert!(!lines.contains(&1), "dilation 4 on 8-word lines stops at 2");
    }
}
