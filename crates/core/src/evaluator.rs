//! The memory-hierarchy evaluator: measure once on the reference
//! processor, estimate everywhere else.
//!
//! [`ReferenceEvaluation`] packages the paper's whole efficiency story for
//! one application:
//!
//! 1. the application is compiled for the *reference* processor and its
//!    traces generated once;
//! 2. each stream's AHH trace parameters are measured in a single
//!    simulation-like pass (`TraceModeler`);
//! 3. every cache configuration in the design space — expanded with the
//!    neighbouring power-of-two line sizes that dilation interpolation
//!    needs — is simulated with the single-pass simulator, one pass per
//!    distinct line size;
//! 4. miss counts for *any* processor in the design space are then produced
//!    analytically from its text dilation, with no further simulation
//!    ([`ReferenceEvaluation::estimate_icache_misses`],
//!    [`ReferenceEvaluation::estimate_ucache_misses`],
//!    [`ReferenceEvaluation::dcache_misses`]).
//!
//! The module also provides the ground-truth helpers ([`actual_misses`],
//! [`dilated_misses`]) used to validate the model (Tables 2/4, Figures
//! 6/7).
//!
//! The reference trace is materialised once into shared buffers and the
//! modeler and simulation passes fan out across a scoped-thread worker
//! pool ([`crate::parallel`]). Every pass is independent, so miss counts
//! are bit-identical for any worker count; [`EvalConfig::threads`] and the
//! `MHE_THREADS` environment variable control the pool size, and
//! [`ReferenceEvaluation::metrics`] reports where the time went.
//!
//! The same measurement also runs **streaming**:
//! [`ReferenceEvaluation::build_from_trace`] consumes any access stream in
//! fixed-size chunks, and [`ReferenceEvaluation::replay_file`] replays a
//! captured `.mtr` or `.din` trace file from disk in bounded memory
//! ([`ReferenceEvaluation::capture_mtr`] and
//! [`ReferenceEvaluation::capture_din`] write them). Chunks fan out across
//! the same worker pool into *stateful* modelers and simulators, so the
//! results are bit-identical to the in-memory path for any chunk size and
//! worker count; [`crate::metrics::ReplayMetrics`] reports decode
//! throughput and the on-disk compression ratio.

use crate::error::MheError;
use crate::icache::estimate_icache_misses;
use crate::metrics::{EvalMetrics, PassMetrics, ReplayMetrics, SamplingMetrics};
use crate::parallel::ParallelSweep;
use crate::ucache::estimate_ucache_misses;
use mhe_cache::{Cache, CacheConfig, Policy, SinglePassSim};
use mhe_model::ahh::UniqueLineModel;
use mhe_model::params::{TraceParams, UnifiedParams, I_GRANULE, U_GRANULE};
use mhe_model::{ITraceModeler, UTraceModeler};
use mhe_sampling::{
    RepWindow, SamplePlan, SamplePlanner, SampledSim, SamplingConfig, WindowExtractor,
};
use mhe_trace::codec::write_mtr;
use mhe_trace::io::{read_din_iter_named, write_din};
use mhe_trace::stats::din_text_bytes;
use mhe_trace::{
    Access, CodecStats, DilatedTraceGenerator, StreamKind, TraceGenerator, TraceReader,
};
use mhe_vliw::compile::Compiled;
use mhe_vliw::Mdes;
use mhe_workload::exec::BlockFrequencies;
use mhe_workload::ir::Program;
use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{self, BufReader, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs of the reference evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalConfig {
    /// Dynamic window: number of basic-block events per trace.
    pub events: usize,
    /// Seed for execution (branch decisions, random data patterns).
    pub seed: u64,
    /// Granule size for instruction-trace parameters.
    pub i_granule: usize,
    /// Granule size for unified-trace parameters.
    pub u_granule: usize,
    /// Largest dilation the evaluation must support (determines how many
    /// smaller power-of-two line sizes are pre-simulated).
    pub max_dilation: f64,
    /// Which `u(L)` formula the estimators use.
    pub model: UniqueLineModel,
    /// Worker threads for the measurement fan-out; `0` means automatic
    /// (`MHE_THREADS`, else available parallelism). Results are
    /// bit-identical for every value.
    pub threads: usize,
    /// Accesses per chunk when streaming a trace through the measurement
    /// tasks ([`ReferenceEvaluation::build_from_trace`] and `.din`
    /// replay; `.mtr` replay uses the file's own frame size). Results are
    /// bit-identical for every value.
    pub chunk_accesses: usize,
    /// Default replacement policy. [`ReferenceEvaluation::for_benchmark`]
    /// applies it to every supplied cache configuration that still
    /// carries the unmarked default (`Policy::Lru`); configurations with
    /// an explicit non-LRU policy are left alone. The lower-level
    /// constructors ([`ReferenceEvaluation::build`] and friends) honour
    /// each configuration's own `policy` field and ignore this knob.
    pub policy: Policy,
    /// When set, the whole measurement runs through interval sampling
    /// (split → signatures → k-means → representatives) instead of full
    /// simulation: miss counts become weighted estimates, AHH trace
    /// parameters stay exact (the modelers still see every access), and
    /// [`EvalMetrics::sampling`] records coverage and the error
    /// heuristic. `None` (the default) is exact full simulation.
    pub sampling: Option<SamplingConfig>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            events: 400_000,
            seed: 0xC0FF_EE01,
            i_granule: I_GRANULE,
            u_granule: U_GRANULE,
            max_dilation: 4.0,
            model: UniqueLineModel::RunBased,
            threads: 0,
            chunk_accesses: 1 << 16,
            policy: Policy::Lru,
            sampling: None,
        }
    }
}

impl EvalConfig {
    /// Starts a validating builder — the recommended way to construct a
    /// configuration. Direct struct-literal construction stays possible
    /// for backwards compatibility but performs no validation; prefer
    ///
    /// ```
    /// use mhe_core::evaluator::EvalConfig;
    /// let cfg = EvalConfig::builder().events(50_000).threads(2).build().unwrap();
    /// assert_eq!(cfg.events, 50_000);
    /// ```
    pub fn builder() -> EvalConfigBuilder {
        EvalConfigBuilder { config: EvalConfig::default(), obs: None }
    }

    /// The effective worker count (resolves `threads == 0`).
    pub fn worker_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            crate::parallel::worker_threads()
        }
    }

    /// Validates the configuration's invariants (what
    /// [`EvalConfigBuilder::build`] enforces).
    ///
    /// # Errors
    ///
    /// [`MheError::InvalidConfig`] naming the first offending field.
    pub fn validate(&self) -> Result<(), MheError> {
        let bad = |field: &'static str, requirement: &'static str| {
            Err(MheError::InvalidConfig { field, requirement })
        };
        if self.events == 0 {
            return bad("events", "must be positive");
        }
        if self.i_granule == 0 {
            return bad("i_granule", "must be positive");
        }
        if self.u_granule == 0 {
            return bad("u_granule", "must be positive");
        }
        if !self.max_dilation.is_finite() || self.max_dilation < 1.0 {
            return bad("max_dilation", "must be finite and at least 1");
        }
        if self.chunk_accesses == 0 {
            return bad("chunk_accesses", "must be positive");
        }
        if let Some(sampling) = &self.sampling {
            if let Err((field, requirement)) = sampling.validate() {
                return bad(field, requirement);
            }
        }
        Ok(())
    }
}

/// Validating builder for [`EvalConfig`], started by
/// [`EvalConfig::builder`].
///
/// Every setter has the field's name; [`EvalConfigBuilder::build`]
/// validates the combination and returns a typed
/// [`MheError::InvalidConfig`] instead of panicking downstream. The
/// builder is also where observability is selected for the process:
/// [`EvalConfigBuilder::obs`] overrides the `MHE_OBS` environment
/// variable.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfigBuilder {
    config: EvalConfig,
    obs: Option<mhe_obs::ObsLevel>,
}

impl EvalConfigBuilder {
    /// Dynamic window: number of basic-block events per trace.
    pub fn events(mut self, events: usize) -> Self {
        self.config.events = events;
        self
    }

    /// Seed for execution (branch decisions, random data patterns).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Granule size for instruction-trace parameters.
    pub fn i_granule(mut self, granule: usize) -> Self {
        self.config.i_granule = granule;
        self
    }

    /// Granule size for unified-trace parameters.
    pub fn u_granule(mut self, granule: usize) -> Self {
        self.config.u_granule = granule;
        self
    }

    /// Largest dilation the evaluation must support.
    pub fn max_dilation(mut self, d: f64) -> Self {
        self.config.max_dilation = d;
        self
    }

    /// Which `u(L)` formula the estimators use.
    pub fn model(mut self, model: UniqueLineModel) -> Self {
        self.config.model = model;
        self
    }

    /// Worker threads for every fan-out; `0` means automatic
    /// (`MHE_THREADS`, else available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Accesses per chunk when streaming a trace through the measurement.
    pub fn chunk_accesses(mut self, chunk: usize) -> Self {
        self.config.chunk_accesses = chunk;
        self
    }

    /// Default replacement policy, applied by
    /// [`ReferenceEvaluation::for_benchmark`] to configurations that
    /// don't state one explicitly.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Routes the measurement through interval sampling: only one
    /// representative interval per cluster is simulated, with miss
    /// counts scaled back by cluster weights.
    ///
    /// ```
    /// use mhe_core::evaluator::EvalConfig;
    /// use mhe_core::SamplingConfig;
    /// let cfg = EvalConfig::builder()
    ///     .sampling(SamplingConfig { interval_accesses: 4096, clusters: 8, ..Default::default() })
    ///     .build()
    ///     .unwrap();
    /// assert!(cfg.sampling.is_some());
    /// ```
    pub fn sampling(mut self, sampling: SamplingConfig) -> Self {
        self.config.sampling = Some(sampling);
        self
    }

    /// Selects the process-wide observability level when the
    /// configuration is built, overriding `MHE_OBS`. Reporting never
    /// affects results: miss counts are bit-identical at every level.
    pub fn obs(mut self, level: mhe_obs::ObsLevel) -> Self {
        self.obs = Some(level);
        self
    }

    /// Validates and produces the configuration (applying the
    /// [`EvalConfigBuilder::obs`] override, if any).
    ///
    /// # Errors
    ///
    /// [`MheError::InvalidConfig`] naming the first offending field.
    pub fn build(self) -> Result<EvalConfig, MheError> {
        self.config.validate()?;
        if let Some(level) = self.obs {
            mhe_obs::set_level(level);
        }
        Ok(self.config)
    }
}

/// Measured state of one application on the reference processor, ready to
/// answer miss queries for any processor in the design space.
///
/// The program, layout profile, and reference compilation are held behind
/// [`Arc`]s: a built evaluation is `Send + Sync` (asserted at compile
/// time below) and designed to be shared — wrap it in an `Arc` (see
/// [`ReferenceEvaluation::into_shared`]) and any number of walker or
/// service threads can answer metric queries from the same warm state.
#[derive(Debug)]
pub struct ReferenceEvaluation {
    config: EvalConfig,
    program: Arc<Program>,
    freq: Arc<BlockFrequencies>,
    reference: Arc<Compiled>,
    iparams: TraceParams,
    uparams: UnifiedParams,
    imeasured: HashMap<CacheConfig, u64>,
    dmeasured: HashMap<CacheConfig, u64>,
    umeasured: HashMap<CacheConfig, u64>,
    metrics: EvalMetrics,
}

// The service layer multiplexes concurrent clients onto one shared
// evaluation; losing either bound must fail the build, not the daemon.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ReferenceEvaluation>()
};

/// One unit of fan-out work: a modeler pass or a single-pass simulation.
enum MeasureTask {
    IModel { addrs: Arc<[u64]>, granule: usize },
    UModel { trace: Arc<[Access]>, granule: usize },
    Sim { kind: StreamKind, line: u32, configs: Vec<CacheConfig>, addrs: Arc<[u64]> },
}

enum MeasureResult {
    IModel(TraceParams, Duration),
    UModel(UnifiedParams, Duration),
    Sim { kind: StreamKind, rows: Vec<(CacheConfig, u64)>, pass: PassMetrics },
}

fn run_measure_task(task: MeasureTask) -> MeasureResult {
    match task {
        MeasureTask::IModel { addrs, granule } => {
            let start = Instant::now();
            let mut m = ITraceModeler::new(granule);
            for &a in addrs.iter() {
                m.process(a);
            }
            MeasureResult::IModel(m.finish(), start.elapsed())
        }
        MeasureTask::UModel { trace, granule } => {
            let start = Instant::now();
            let mut m = UTraceModeler::new(granule);
            for &a in trace.iter() {
                m.process(a);
            }
            MeasureResult::UModel(m.finish(), start.elapsed())
        }
        MeasureTask::Sim { kind, line, configs, addrs } => {
            let start = Instant::now();
            let mut sim = SinglePassSim::for_configs(&configs);
            sim.run(addrs.iter().copied());
            let rows: Vec<(CacheConfig, u64)> =
                configs.iter().map(|&c| (c, sim.misses(c.sets, c.assoc))).collect();
            let pass = PassMetrics {
                stream: kind,
                line_words: line,
                configs: configs.len(),
                addresses: addrs.len() as u64,
                wall: start.elapsed(),
            };
            MeasureResult::Sim { kind, rows, pass }
        }
    }
}

/// Groups configurations by (line size, policy) — the unit one
/// [`SinglePassSim`] can cover — in deterministic `BTreeMap` order, and
/// emits one simulation task per group.
fn sim_tasks(kind: StreamKind, configs: &[CacheConfig], addrs: &Arc<[u64]>) -> Vec<MeasureTask> {
    let mut by_family: BTreeMap<(u32, Policy), Vec<CacheConfig>> = BTreeMap::new();
    for &c in configs {
        by_family.entry((c.line_words, c.policy)).or_default().push(c);
    }
    by_family
        .into_iter()
        .map(|((line, _), group)| MeasureTask::Sim {
            kind,
            line,
            configs: group,
            addrs: Arc::clone(addrs),
        })
        .collect()
}

/// One stateful unit of the streaming fan-out, fed one trace chunk at a
/// time across many [`ParallelSweep::for_each_mut`] rounds.
enum StreamTask {
    IModel { modeler: ITraceModeler, wall: Duration },
    UModel { modeler: UTraceModeler, wall: Duration },
    Sim { kind: StreamKind, sim: SinglePassSim, configs: Vec<CacheConfig>, wall: Duration },
    Plan { planner: Box<SamplePlanner>, wall: Duration },
}

impl StreamTask {
    fn feed(&mut self, chunk: &[Access]) {
        let start = Instant::now();
        match self {
            StreamTask::IModel { modeler, wall } => {
                for a in chunk {
                    if StreamKind::Instruction.admits(a.kind) {
                        modeler.process(a.addr);
                    }
                }
                *wall += start.elapsed();
            }
            StreamTask::UModel { modeler, wall } => {
                for &a in chunk {
                    modeler.process(a);
                }
                *wall += start.elapsed();
            }
            StreamTask::Sim { kind, sim, wall, .. } => {
                sim.run_stream(*kind, chunk.iter().copied());
                *wall += start.elapsed();
            }
            StreamTask::Plan { planner, wall } => {
                planner.feed(chunk);
                *wall += start.elapsed();
            }
        }
    }
}

/// Streaming counterpart of [`sim_tasks`]: one *stateful* single-pass
/// simulator per distinct (line size, policy) family, ready to be fed
/// chunks.
fn stream_sim_tasks(kind: StreamKind, configs: &[CacheConfig]) -> Vec<StreamTask> {
    let mut by_family: BTreeMap<(u32, Policy), Vec<CacheConfig>> = BTreeMap::new();
    for &c in configs {
        by_family.entry((c.line_words, c.policy)).or_default().push(c);
    }
    by_family
        .into_values()
        .map(|group| StreamTask::Sim {
            kind,
            sim: SinglePassSim::for_configs(&group),
            configs: group,
            wall: Duration::ZERO,
        })
        .collect()
}

/// Everything the streaming fan-out measures, before assembly into a
/// [`ReferenceEvaluation`].
struct StreamOutcome {
    threads: usize,
    iparams: TraceParams,
    uparams: UnifiedParams,
    imeasured: HashMap<CacheConfig, u64>,
    dmeasured: HashMap<CacheConfig, u64>,
    umeasured: HashMap<CacheConfig, u64>,
    passes: Vec<PassMetrics>,
    trace_len: u64,
    din_bytes: u64,
    chunks: u64,
    decode_wall: Duration,
    sim_wall: Duration,
    model_wall: Duration,
}

/// Pulls chunks from `next_chunk` until it yields `Ok(None)`, feeding
/// every stateful measurement task each chunk through the worker pool.
///
/// Each task sees the whole access stream in order regardless of the
/// chunking, and modelers and simulators are deterministic, so the
/// outcome is bit-identical to the materialised fan-out in
/// [`ReferenceEvaluation::build`] for any chunk size and worker count.
fn measure_streaming(
    config: &EvalConfig,
    icaches: &[CacheConfig],
    dcaches: &[CacheConfig],
    ucaches: &[CacheConfig],
    next_chunk: &mut dyn FnMut() -> io::Result<Option<Vec<Access>>>,
) -> io::Result<StreamOutcome> {
    let expanded = expand_line_sizes(icaches, config.max_dilation);
    let mut tasks = vec![
        StreamTask::IModel { modeler: ITraceModeler::new(config.i_granule), wall: Duration::ZERO },
        StreamTask::UModel { modeler: UTraceModeler::new(config.u_granule), wall: Duration::ZERO },
    ];
    tasks.extend(stream_sim_tasks(StreamKind::Instruction, &expanded));
    tasks.extend(stream_sim_tasks(StreamKind::Data, dcaches));
    tasks.extend(stream_sim_tasks(StreamKind::Unified, ucaches));

    // No retries here: stream tasks are stateful, so re-running a task
    // that panicked mid-chunk could double-feed accesses. A panic in this
    // sweep surfaces as a structured error instead.
    let sweep = ParallelSweep::with_threads(config.worker_threads())
        .with_retry(crate::env::RetryPolicy::NONE)
        .with_label("streaming measure");
    let mut trace_len = 0u64;
    let mut din_bytes = 0u64;
    let mut chunks = 0u64;
    let mut decode_wall = Duration::ZERO;
    let mut sim_wall = Duration::ZERO;
    loop {
        let decode_start = Instant::now();
        let chunk = next_chunk()?;
        decode_wall += decode_start.elapsed();
        let Some(chunk) = chunk else { break };
        if chunk.is_empty() {
            continue;
        }
        trace_len += chunk.len() as u64;
        din_bytes += din_text_bytes(chunk.iter().copied());
        chunks += 1;
        let sim_start = Instant::now();
        sweep
            .try_for_each_mut_in(Some(mhe_obs::Phase::Simulate), &mut tasks, |t| {
                t.feed(&chunk);
                Ok(())
            })
            .map_err(|e| io::Error::other(e.error.to_string()))?;
        sim_wall += sim_start.elapsed();
    }

    let mut iparams = None;
    let mut uparams = None;
    let mut model_wall = Duration::ZERO;
    let mut imeasured = HashMap::new();
    let mut dmeasured = HashMap::new();
    let mut umeasured = HashMap::new();
    let mut passes = Vec::new();
    for task in tasks {
        match task {
            StreamTask::IModel { modeler, wall } => {
                iparams = Some(modeler.finish());
                model_wall += wall;
            }
            StreamTask::UModel { modeler, wall } => {
                uparams = Some(modeler.finish());
                model_wall += wall;
            }
            StreamTask::Sim { kind, sim, configs, wall } => {
                let map = match kind {
                    StreamKind::Instruction => &mut imeasured,
                    StreamKind::Data => &mut dmeasured,
                    StreamKind::Unified => &mut umeasured,
                };
                map.extend(configs.iter().map(|&c| (c, sim.misses(c.sets, c.assoc))));
                passes.push(PassMetrics {
                    stream: kind,
                    line_words: sim.line_words(),
                    configs: configs.len(),
                    addresses: sim.accesses(),
                    wall,
                });
            }
            StreamTask::Plan { .. } => {
                unreachable!("plan tasks only run inside measure_sampled")
            }
        }
    }
    Ok(StreamOutcome {
        threads: sweep.threads(),
        iparams: iparams.expect("instruction modeler task ran"),
        uparams: uparams.expect("unified modeler task ran"),
        imeasured,
        dmeasured,
        umeasured,
        passes,
        trace_len,
        din_bytes,
        chunks,
        decode_wall,
        sim_wall,
        model_wall,
    })
}

/// One unit of the sampled fan-out: estimate one (stream, line size,
/// policy) family of configurations from the shared plan and windows.
struct SampledTask {
    kind: StreamKind,
    configs: Vec<CacheConfig>,
    plan: Arc<SamplePlan>,
    windows: Arc<Vec<RepWindow>>,
}

fn run_sampled_task(task: SampledTask) -> (StreamKind, Vec<(CacheConfig, u64)>, PassMetrics) {
    let start = Instant::now();
    let line = task.configs[0].line_words;
    let policy = task.configs[0].policy;
    let mut set_counts: Vec<u32> = task.configs.iter().map(|c| c.sets).collect();
    set_counts.sort_unstable();
    set_counts.dedup();
    let max_assoc = task.configs.iter().map(|c| c.assoc).max().unwrap_or(1);
    let sim = SampledSim::measure(
        policy,
        line,
        &set_counts,
        max_assoc,
        task.kind,
        &task.plan,
        &task.windows,
    );
    let rows: Vec<(CacheConfig, u64)> =
        task.configs.iter().map(|&c| (c, sim.misses(c.sets, c.assoc))).collect();
    let pass = PassMetrics {
        stream: task.kind,
        line_words: line,
        configs: task.configs.len(),
        addresses: sim.sim_accesses(),
        wall: start.elapsed(),
    };
    (task.kind, rows, pass)
}

/// Sampled counterpart of [`sim_tasks`]: one estimator task per (line
/// size, policy) family, all sharing the plan and windows.
fn sampled_tasks(
    kind: StreamKind,
    configs: &[CacheConfig],
    plan: &Arc<SamplePlan>,
    windows: &Arc<Vec<RepWindow>>,
) -> Vec<SampledTask> {
    let mut by_family: BTreeMap<(u32, Policy), Vec<CacheConfig>> = BTreeMap::new();
    for &c in configs {
        by_family.entry((c.line_words, c.policy)).or_default().push(c);
    }
    by_family
        .into_values()
        .map(|group| SampledTask {
            kind,
            configs: group,
            plan: Arc::clone(plan),
            windows: Arc::clone(windows),
        })
        .collect()
}

/// Interval-sampled measurement: two passes over the trace plus a
/// fan-out over the representative windows.
///
/// Pass A (`pass_a`) streams the whole trace once through the *exact*
/// AHH modelers and the sampling planner (signatures — a few array
/// lookups per access). Pass B (`pass_b`) streams the trace again and
/// merely copies out each representative's warm-up and body, bounded by
/// `clusters × (interval + warmup)` accesses of memory. The simulation
/// fan-out then runs one [`SampledSim`] per (stream, line size, policy)
/// family through the worker pool; family results merge in input order,
/// so the outcome is bit-identical for any thread count, chunking, or
/// repetition.
fn measure_sampled(
    config: &EvalConfig,
    sampling: SamplingConfig,
    icaches: &[CacheConfig],
    dcaches: &[CacheConfig],
    ucaches: &[CacheConfig],
    pass_a: &mut dyn FnMut() -> io::Result<Option<Vec<Access>>>,
    pass_b: &mut dyn FnMut() -> io::Result<Option<Vec<Access>>>,
) -> io::Result<(StreamOutcome, SamplingMetrics)> {
    // --- Pass A: exact modelers + interval signatures. ---
    let mut tasks = vec![
        StreamTask::IModel { modeler: ITraceModeler::new(config.i_granule), wall: Duration::ZERO },
        StreamTask::UModel { modeler: UTraceModeler::new(config.u_granule), wall: Duration::ZERO },
        StreamTask::Plan { planner: Box::new(SamplePlanner::new(sampling)), wall: Duration::ZERO },
    ];
    let sweep = ParallelSweep::with_threads(config.worker_threads())
        .with_retry(crate::env::RetryPolicy::NONE)
        .with_label("sampled measure");
    let mut trace_len = 0u64;
    let mut din_bytes = 0u64;
    let mut chunks = 0u64;
    let mut decode_wall = Duration::ZERO;
    let mut sim_wall = Duration::ZERO;
    loop {
        let decode_start = Instant::now();
        let chunk = pass_a()?;
        decode_wall += decode_start.elapsed();
        let Some(chunk) = chunk else { break };
        if chunk.is_empty() {
            continue;
        }
        trace_len += chunk.len() as u64;
        din_bytes += din_text_bytes(chunk.iter().copied());
        chunks += 1;
        let sim_start = Instant::now();
        sweep
            .try_for_each_mut_in(Some(mhe_obs::Phase::Simulate), &mut tasks, |t| {
                t.feed(&chunk);
                Ok(())
            })
            .map_err(|e| io::Error::other(e.error.to_string()))?;
        sim_wall += sim_start.elapsed();
    }
    let mut iparams = None;
    let mut uparams = None;
    let mut plan = None;
    let mut model_wall = Duration::ZERO;
    for task in tasks {
        match task {
            StreamTask::IModel { modeler, wall } => {
                iparams = Some(modeler.finish());
                model_wall += wall;
            }
            StreamTask::UModel { modeler, wall } => {
                uparams = Some(modeler.finish());
                model_wall += wall;
            }
            StreamTask::Plan { planner, wall } => {
                plan = Some(planner.finish());
                model_wall += wall;
            }
            StreamTask::Sim { .. } => unreachable!("sampled pass A runs no simulators"),
        }
    }
    let plan = Arc::new(plan.expect("planner task ran"));

    // --- Pass B: copy out the representative windows (single-threaded;
    // it is a pure range intersection + memcpy). ---
    let mut extractor = WindowExtractor::new(&plan);
    loop {
        let decode_start = Instant::now();
        let chunk = pass_b()?;
        decode_wall += decode_start.elapsed();
        let Some(chunk) = chunk else { break };
        extractor.feed(&chunk);
    }
    let windows = Arc::new(extractor.finish());

    // --- Fan-out: one sampled estimator per (stream, line, policy). ---
    let expanded = expand_line_sizes(icaches, config.max_dilation);
    let mut tasks = sampled_tasks(StreamKind::Instruction, &expanded, &plan, &windows);
    tasks.extend(sampled_tasks(StreamKind::Data, dcaches, &plan, &windows));
    tasks.extend(sampled_tasks(StreamKind::Unified, ucaches, &plan, &windows));
    let sim_start = Instant::now();
    let results = sweep.map_in(Some(mhe_obs::Phase::Simulate), tasks, run_sampled_task);
    sim_wall += sim_start.elapsed();

    let mut imeasured = HashMap::new();
    let mut dmeasured = HashMap::new();
    let mut umeasured = HashMap::new();
    let mut passes = Vec::new();
    for (kind, rows, pass) in results {
        let map = match kind {
            StreamKind::Instruction => &mut imeasured,
            StreamKind::Data => &mut dmeasured,
            StreamKind::Unified => &mut umeasured,
        };
        map.extend(rows);
        passes.push(pass);
    }
    let sampling_metrics = SamplingMetrics {
        intervals: plan.intervals().len() as u64,
        clusters: plan.clusters().len() as u64,
        representative_accesses: plan.representative_accesses(),
        total_accesses: plan.total_accesses(),
        error_bound: plan.error_bound(),
    };
    Ok((
        StreamOutcome {
            threads: sweep.threads(),
            iparams: iparams.expect("instruction modeler task ran"),
            uparams: uparams.expect("unified modeler task ran"),
            imeasured,
            dmeasured,
            umeasured,
            passes,
            trace_len,
            din_bytes,
            chunks,
            decode_wall,
            sim_wall,
            model_wall,
        },
        sampling_metrics,
    ))
}

impl ReferenceEvaluation {
    /// Compiles `program` for the reference machine, measures trace
    /// parameters, and simulates the given cache design spaces on the
    /// reference trace.
    ///
    /// Instruction-cache configurations are automatically expanded with the
    /// smaller power-of-two line sizes required to interpolate up to
    /// `config.max_dilation`.
    pub fn build(
        program: Program,
        reference_mdes: &Mdes,
        config: EvalConfig,
        icaches: &[CacheConfig],
        dcaches: &[CacheConfig],
        ucaches: &[CacheConfig],
    ) -> Self {
        let build_start = Instant::now();
        let freq = BlockFrequencies::profile(&program, config.seed, 200_000);
        let reference = Compiled::build(&program, reference_mdes, Some(&freq));

        // --- Sampled route: never materialise the trace at all. The
        // deterministic generator is simply run twice (pass A:
        // signatures + exact modelers; pass B: window extraction). ---
        if let Some(sampling) = config.sampling {
            let (outcome, sampling_metrics) = {
                let chunk_size = config.chunk_accesses.max(1);
                let make_pass = || {
                    let mut it = TraceGenerator::new(&program, &reference, config.seed)
                        .with_event_limit(config.events);
                    move || -> io::Result<Option<Vec<Access>>> {
                        let chunk: Vec<Access> = it.by_ref().take(chunk_size).collect();
                        Ok(if chunk.is_empty() { None } else { Some(chunk) })
                    }
                };
                let mut pass_a = make_pass();
                let mut pass_b = make_pass();
                measure_sampled(
                    &config,
                    sampling,
                    icaches,
                    dcaches,
                    ucaches,
                    &mut pass_a,
                    &mut pass_b,
                )
                .expect("in-memory trace source cannot fail")
            };
            return Self::from_outcome(
                program,
                freq,
                reference,
                config,
                outcome,
                None,
                Some(sampling_metrics),
                build_start,
            );
        }

        // --- Materialise the reference trace once; every pass below reads
        // the shared buffers instead of regenerating the trace. ---
        let trace_start = Instant::now();
        let trace_obs = mhe_obs::span(mhe_obs::Phase::TraceGen);
        let unified: Vec<Access> = TraceGenerator::new(&program, &reference, config.seed)
            .with_event_limit(config.events)
            .collect();
        drop(trace_obs);
        let iaddrs: Arc<[u64]> = unified
            .iter()
            .filter(|a| StreamKind::Instruction.admits(a.kind))
            .map(|a| a.addr)
            .collect();
        let daddrs: Arc<[u64]> =
            unified.iter().filter(|a| StreamKind::Data.admits(a.kind)).map(|a| a.addr).collect();
        let uaddrs: Arc<[u64]> = unified.iter().map(|a| a.addr).collect();
        let unified: Arc<[Access]> = unified.into();
        let trace_wall = trace_start.elapsed();

        // --- Fan out: two modeler passes plus one single-pass simulation
        // per (stream, line size), all independent. ---
        let expanded = expand_line_sizes(icaches, config.max_dilation);
        let mut tasks = vec![
            MeasureTask::IModel { addrs: Arc::clone(&iaddrs), granule: config.i_granule },
            MeasureTask::UModel { trace: Arc::clone(&unified), granule: config.u_granule },
        ];
        tasks.extend(sim_tasks(StreamKind::Instruction, &expanded, &iaddrs));
        tasks.extend(sim_tasks(StreamKind::Data, dcaches, &daddrs));
        tasks.extend(sim_tasks(StreamKind::Unified, ucaches, &uaddrs));

        let sweep = ParallelSweep::with_threads(config.worker_threads());
        let sim_start = Instant::now();
        let results = sweep.map_in(Some(mhe_obs::Phase::Simulate), tasks, run_measure_task);
        let sim_wall = sim_start.elapsed();

        // --- Merge (input order, so metrics are deterministic too). ---
        let mut iparams = None;
        let mut uparams = None;
        let mut model_wall = Duration::ZERO;
        let mut imeasured = HashMap::new();
        let mut dmeasured = HashMap::new();
        let mut umeasured = HashMap::new();
        let mut passes = Vec::new();
        for result in results {
            match result {
                MeasureResult::IModel(p, wall) => {
                    iparams = Some(p);
                    model_wall += wall;
                }
                MeasureResult::UModel(p, wall) => {
                    uparams = Some(p);
                    model_wall += wall;
                }
                MeasureResult::Sim { kind, rows, pass } => {
                    let map = match kind {
                        StreamKind::Instruction => &mut imeasured,
                        StreamKind::Data => &mut dmeasured,
                        StreamKind::Unified => &mut umeasured,
                    };
                    map.extend(rows);
                    passes.push(pass);
                }
            }
        }
        let metrics = EvalMetrics {
            threads: sweep.threads(),
            trace_len: uaddrs.len() as u64,
            trace_wall,
            model_wall,
            sim_wall,
            build_wall: build_start.elapsed(),
            passes,
            replay: None,
            sampling: None,
        };

        Self {
            config,
            program: Arc::new(program),
            freq: Arc::new(freq),
            reference: Arc::new(reference),
            iparams: iparams.expect("instruction modeler task ran"),
            uparams: uparams.expect("unified modeler task ran"),
            imeasured,
            dmeasured,
            umeasured,
            metrics,
        }
    }

    /// Assembles an evaluation from the streaming fan-out's outcome.
    #[allow(clippy::too_many_arguments)]
    fn from_outcome(
        program: Program,
        freq: BlockFrequencies,
        reference: Compiled,
        config: EvalConfig,
        outcome: StreamOutcome,
        replay: Option<ReplayMetrics>,
        sampling: Option<SamplingMetrics>,
        build_start: Instant,
    ) -> Self {
        let metrics = EvalMetrics {
            threads: outcome.threads,
            trace_len: outcome.trace_len,
            trace_wall: outcome.decode_wall,
            model_wall: outcome.model_wall,
            sim_wall: outcome.sim_wall,
            build_wall: build_start.elapsed(),
            passes: outcome.passes,
            replay,
            sampling,
        };
        Self {
            config,
            program: Arc::new(program),
            freq: Arc::new(freq),
            reference: Arc::new(reference),
            iparams: outcome.iparams,
            uparams: outcome.uparams,
            imeasured: outcome.imeasured,
            dmeasured: outcome.dmeasured,
            umeasured: outcome.umeasured,
            metrics,
        }
    }

    /// Like [`ReferenceEvaluation::build`], but measures an explicitly
    /// supplied access stream instead of generating the reference trace:
    /// the stream *is* taken to be the reference trace.
    ///
    /// The stream is consumed in chunks of [`EvalConfig::chunk_accesses`]
    /// fanned out across the worker pool into stateful modelers and
    /// simulators, so arbitrarily long traces run in bounded memory.
    /// Whenever the stream equals the generated reference trace, every
    /// miss count and parameter is bit-identical to `build`'s.
    pub fn build_from_trace(
        program: Program,
        reference_mdes: &Mdes,
        config: EvalConfig,
        trace: impl IntoIterator<Item = Access>,
        icaches: &[CacheConfig],
        dcaches: &[CacheConfig],
        ucaches: &[CacheConfig],
    ) -> Self {
        let build_start = Instant::now();
        let freq = BlockFrequencies::profile(&program, config.seed, 200_000);
        let reference = Compiled::build(&program, reference_mdes, Some(&freq));
        let chunk_size = config.chunk_accesses.max(1);
        // Sampling needs two passes over the stream; a one-shot iterator
        // has to be materialised for that (file-backed traces should use
        // `replay_file`, which re-opens the file instead).
        if let Some(sampling) = config.sampling {
            let all: Vec<Access> = trace.into_iter().collect();
            let (outcome, sampling_metrics) = {
                let mut chunks_a = all.chunks(chunk_size);
                let mut pass_a = move || Ok(chunks_a.next().map(<[Access]>::to_vec));
                let mut chunks_b = all.chunks(chunk_size);
                let mut pass_b = move || Ok(chunks_b.next().map(<[Access]>::to_vec));
                measure_sampled(
                    &config,
                    sampling,
                    icaches,
                    dcaches,
                    ucaches,
                    &mut pass_a,
                    &mut pass_b,
                )
                .expect("in-memory trace source cannot fail")
            };
            return Self::from_outcome(
                program,
                freq,
                reference,
                config,
                outcome,
                None,
                Some(sampling_metrics),
                build_start,
            );
        }
        let mut iter = trace.into_iter();
        let mut next = move || -> io::Result<Option<Vec<Access>>> {
            let chunk: Vec<Access> = iter.by_ref().take(chunk_size).collect();
            Ok(if chunk.is_empty() { None } else { Some(chunk) })
        };
        let outcome = measure_streaming(&config, icaches, dcaches, ucaches, &mut next)
            .expect("in-memory trace source cannot fail");
        Self::from_outcome(program, freq, reference, config, outcome, None, None, build_start)
    }

    /// Replays a captured trace file as the reference trace.
    ///
    /// `.mtr` files are decoded frame by frame (each frame is one chunk);
    /// `.din` text is parsed in chunks of [`EvalConfig::chunk_accesses`].
    /// Either way the file streams through the measurement in bounded
    /// memory, and the resulting evaluation is bit-identical to building
    /// from the same trace in memory. [`EvalMetrics::replay`] records
    /// bytes read, decode throughput, and the compression ratio relative
    /// to `din` text.
    ///
    /// # Errors
    ///
    /// Propagates I/O and decode errors; rejects file extensions other
    /// than `mtr` or `din` with [`io::ErrorKind::InvalidInput`].
    pub fn replay_file(
        program: Program,
        reference_mdes: &Mdes,
        config: EvalConfig,
        path: impl AsRef<Path>,
        icaches: &[CacheConfig],
        dcaches: &[CacheConfig],
        ucaches: &[CacheConfig],
    ) -> io::Result<Self> {
        let path = path.as_ref();
        let build_start = Instant::now();
        let freq = BlockFrequencies::profile(&program, config.seed, 200_000);
        let reference = Compiled::build(&program, reference_mdes, Some(&freq));
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        let chunk_size = config.chunk_accesses.max(1);
        let din_chunk = |lines: &mut dyn Iterator<Item = io::Result<Access>>| -> io::Result<Option<Vec<Access>>> {
            let mut chunk = Vec::new();
            for item in lines {
                chunk.push(item?);
                if chunk.len() >= chunk_size {
                    break;
                }
            }
            Ok(if chunk.is_empty() { None } else { Some(chunk) })
        };
        let (outcome, sampling_metrics, bytes_read) = match (ext, config.sampling) {
            ("mtr", None) => {
                let mut reader = TraceReader::new(BufReader::new(File::open(path)?))?;
                let outcome = {
                    let mut next = || reader.next_frame();
                    measure_streaming(&config, icaches, dcaches, ucaches, &mut next)?
                };
                let bytes = reader.stats().bytes;
                (outcome, None, bytes)
            }
            ("mtr", Some(sampling)) => {
                // Sampling's two passes re-open the file: the trace still
                // never lives in memory, only the representative windows.
                let mut reader_a = TraceReader::new(BufReader::new(File::open(path)?))?;
                let mut reader_b = TraceReader::new(BufReader::new(File::open(path)?))?;
                let (outcome, sm) = {
                    let mut pass_a = || reader_a.next_frame();
                    let mut pass_b = || reader_b.next_frame();
                    measure_sampled(
                        &config,
                        sampling,
                        icaches,
                        dcaches,
                        ucaches,
                        &mut pass_a,
                        &mut pass_b,
                    )?
                };
                let bytes = reader_a.stats().bytes;
                (outcome, Some(sm), bytes)
            }
            ("din", None) => {
                let mut lines = read_din_iter_named(
                    BufReader::new(File::open(path)?),
                    path.display().to_string(),
                );
                let outcome = {
                    let mut next = || din_chunk(&mut lines);
                    measure_streaming(&config, icaches, dcaches, ucaches, &mut next)?
                };
                // din is the uncompressed baseline: what we read is the
                // text itself.
                let bytes = outcome.din_bytes;
                (outcome, None, bytes)
            }
            ("din", Some(sampling)) => {
                let mut lines_a = read_din_iter_named(
                    BufReader::new(File::open(path)?),
                    path.display().to_string(),
                );
                let mut lines_b = read_din_iter_named(
                    BufReader::new(File::open(path)?),
                    path.display().to_string(),
                );
                let (outcome, sm) = {
                    let mut pass_a = || din_chunk(&mut lines_a);
                    let mut pass_b = || din_chunk(&mut lines_b);
                    measure_sampled(
                        &config,
                        sampling,
                        icaches,
                        dcaches,
                        ucaches,
                        &mut pass_a,
                        &mut pass_b,
                    )?
                };
                let bytes = outcome.din_bytes;
                (outcome, Some(sm), bytes)
            }
            (other, _) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("unknown trace extension {other:?} (expected mtr or din)"),
                ));
            }
        };
        let replay = ReplayMetrics {
            bytes_read,
            accesses: outcome.trace_len,
            din_bytes: outcome.din_bytes,
            chunks: outcome.chunks,
            decode_wall: outcome.decode_wall,
        };
        Ok(Self::from_outcome(
            program,
            freq,
            reference,
            config,
            outcome,
            Some(replay),
            sampling_metrics,
            build_start,
        ))
    }

    /// Convenience: build for a benchmark with the paper's cache spaces.
    ///
    /// Applies [`EvalConfig::policy`] to every configuration that still
    /// carries the unmarked LRU default, so a whole evaluation can be
    /// switched to FIFO (say) with one builder call; configurations with
    /// an explicit non-LRU policy keep it.
    pub fn for_benchmark(
        benchmark: mhe_workload::Benchmark,
        reference_mdes: &Mdes,
        config: EvalConfig,
        icaches: &[CacheConfig],
        dcaches: &[CacheConfig],
        ucaches: &[CacheConfig],
    ) -> Self {
        let stamp = |cs: &[CacheConfig]| -> Vec<CacheConfig> {
            cs.iter()
                .map(|&c| if c.policy == Policy::Lru { c.with_policy(config.policy) } else { c })
                .collect()
        };
        Self::build(
            benchmark.generate(),
            reference_mdes,
            config,
            &stamp(icaches),
            &stamp(dcaches),
            &stamp(ucaches),
        )
    }

    /// The evaluation's configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Overrides the worker-thread count used by downstream parallel
    /// consumers (walkers, sweeps) without rebuilding the evaluation.
    /// `0` restores the automatic `MHE_THREADS`/parallelism default.
    ///
    /// Thread count is normally a construction-time concern — set it with
    /// [`EvalConfig::builder`]'s `.threads(n)` — so this explicit
    /// override exists only for benchmarks that sweep thread counts over
    /// one already-simulated evaluation.
    pub fn override_worker_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }

    /// The application program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// A shared handle to the application program, for consumers that
    /// outlive this borrow (service sessions, spawned workers).
    pub fn shared_program(&self) -> Arc<Program> {
        Arc::clone(&self.program)
    }

    /// The reference compilation.
    pub fn reference(&self) -> &Compiled {
        &self.reference
    }

    /// A shared handle to the reference compilation.
    pub fn shared_reference(&self) -> Arc<Compiled> {
        Arc::clone(&self.reference)
    }

    /// Wraps the evaluation for sharing across threads. Sugar for
    /// `Arc::new`, named so call sites document the ownership transfer:
    /// once shared, the thread count can no longer be overridden — decide
    /// it at construction time.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Instruction-trace AHH parameters.
    pub fn iparams(&self) -> &TraceParams {
        &self.iparams
    }

    /// Unified-trace AHH parameters (instruction and data components).
    pub fn uparams(&self) -> &UnifiedParams {
        &self.uparams
    }

    /// Text dilation of a target machine relative to the reference.
    ///
    /// This compiles the program for the target (cheap: no simulation),
    /// using the same layout profile as the reference so that
    /// `dilation_of(reference) == 1` exactly.
    pub fn dilation_of(&self, target: &Mdes) -> f64 {
        self.compile_target(target).text_words() as f64 / self.reference.text_words() as f64
    }

    /// Compiles the program for a target machine with the evaluation's
    /// layout profile.
    pub fn compile_target(&self, target: &Mdes) -> Compiled {
        Compiled::build(&self.program, target, Some(self.freq.as_ref()))
    }

    /// Where the build's time went (trace, modelers, simulation fan-out).
    pub fn metrics(&self) -> &EvalMetrics {
        &self.metrics
    }

    /// The reference trace, regenerated on demand as a stream.
    ///
    /// Trace generation is deterministic, so this is exactly the access
    /// sequence the evaluation measured; capturing it and replaying the
    /// file reproduces the evaluation bit for bit.
    pub fn reference_trace(&self) -> impl Iterator<Item = Access> + '_ {
        TraceGenerator::new(&self.program, &self.reference, self.config.seed)
            .with_event_limit(self.config.events)
    }

    /// Captures the reference trace as a compact `.mtr` binary stream,
    /// returning the codec's size accounting.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn capture_mtr<W: Write>(&self, w: W) -> io::Result<CodecStats> {
        write_mtr(w, self.reference_trace())
    }

    /// Captures the reference trace as classic `din` text.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn capture_din<W: Write>(&self, w: W) -> io::Result<()> {
        write_din(w, self.reference_trace())
    }

    /// All measured instruction-cache miss counts (including the expanded
    /// line sizes).
    pub fn imeasured(&self) -> &HashMap<CacheConfig, u64> {
        &self.imeasured
    }

    /// All measured data-cache miss counts.
    pub fn dmeasured(&self) -> &HashMap<CacheConfig, u64> {
        &self.dmeasured
    }

    /// All measured unified-cache miss counts.
    pub fn umeasured(&self) -> &HashMap<CacheConfig, u64> {
        &self.umeasured
    }

    /// Measured reference-trace misses of an instruction cache, if
    /// simulated.
    pub fn icache_misses_measured(&self, config: CacheConfig) -> Option<u64> {
        self.imeasured.get(&config).copied()
    }

    /// Measured reference-trace misses of a unified cache, if simulated.
    pub fn ucache_misses_measured(&self, config: CacheConfig) -> Option<u64> {
        self.umeasured.get(&config).copied()
    }

    /// Estimated instruction-cache misses under dilation `d`
    /// (Lemma 1 + Eq. 4.12).
    ///
    /// # Errors
    ///
    /// Returns [`MheError::MissingSimulation`] if the required neighbouring
    /// line sizes were not in the simulated space (build with a larger
    /// `max_dilation`).
    pub fn estimate_icache_misses(&self, config: CacheConfig, d: f64) -> Result<f64, MheError> {
        let _obs = mhe_obs::span(mhe_obs::Phase::Estimate);
        mhe_obs::add_events(mhe_obs::Phase::Estimate, 1);
        let table = |cfg: CacheConfig| self.imeasured.get(&cfg).copied();
        estimate_icache_misses(&self.iparams, &table, config, d, self.config.model)
    }

    /// Estimated unified-cache misses under dilation `d` (Eq. 4.15).
    ///
    /// # Errors
    ///
    /// Returns [`MheError::MissingSimulation`] if the configuration was not
    /// simulated.
    pub fn estimate_ucache_misses(&self, config: CacheConfig, d: f64) -> Result<f64, MheError> {
        let _obs = mhe_obs::span(mhe_obs::Phase::Estimate);
        mhe_obs::add_events(mhe_obs::Phase::Estimate, 1);
        let measured = self
            .umeasured
            .get(&config)
            .copied()
            .ok_or(MheError::MissingSimulation { stream: StreamKind::Unified, config })?;
        Ok(estimate_ucache_misses(&self.uparams, measured, config, d, self.config.model))
    }

    /// Data-cache misses for *any* processor (Eq. 4.1: the data trace is
    /// assumed unchanged, so the reference measurement is the answer).
    ///
    /// # Errors
    ///
    /// Returns [`MheError::MissingSimulation`] if the configuration was not
    /// simulated.
    pub fn dcache_misses(&self, config: CacheConfig) -> Result<u64, MheError> {
        let _obs = mhe_obs::span(mhe_obs::Phase::Estimate);
        mhe_obs::add_events(mhe_obs::Phase::Estimate, 1);
        self.dmeasured
            .get(&config)
            .copied()
            .ok_or(MheError::MissingSimulation { stream: StreamKind::Data, config })
    }
}

/// Adds, for every instruction-cache configuration, the smaller
/// power-of-two line sizes needed to interpolate contracted lines down to
/// `L / max_dilation`.
fn expand_line_sizes(configs: &[CacheConfig], max_dilation: f64) -> Vec<CacheConfig> {
    let mut out: Vec<CacheConfig> = Vec::new();
    for &c in configs {
        let min_line = (f64::from(c.line_words) / max_dilation).floor().max(1.0) as u32;
        let mut l = c.line_words;
        loop {
            out.push(c.with_line_words(l));
            if l <= min_line || l == 1 {
                break;
            }
            l /= 2;
        }
        // One step upward as well: dilations slightly below 1 occur when a
        // target's code is *denser* than the reference's (e.g. the same
        // width without speculation), and then L/d exceeds L.
        out.push(c.with_line_words(c.line_words * 2));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Ground truth: simulates `config` on the *actual* trace of a target
/// compilation (the paper's "Actual" columns).
pub fn actual_misses(
    program: &Program,
    target: &Compiled,
    eval: &EvalConfig,
    kind: StreamKind,
    config: CacheConfig,
) -> u64 {
    let mut cache = Cache::new(config);
    for a in
        TraceGenerator::new(program, target, eval.seed).with_event_limit(eval.events).stream(kind)
    {
        cache.access(a.addr);
    }
    cache.stats().misses
}

/// Ground truth for the model's step 3: simulates `config` on the
/// reference trace *dilated by `d`* (the paper's "Dilated" columns).
pub fn dilated_misses(
    program: &Program,
    reference: &Compiled,
    d: f64,
    eval: &EvalConfig,
    kind: StreamKind,
    config: CacheConfig,
) -> u64 {
    let mut cache = Cache::new(config);
    for a in DilatedTraceGenerator::new(program, reference, d, eval.seed)
        .with_event_limit(eval.events)
        .stream(kind)
    {
        cache.access(a.addr);
    }
    cache.stats().misses
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhe_vliw::mdes::ProcessorKind;
    use mhe_workload::Benchmark;

    fn small_eval() -> ReferenceEvaluation {
        let cfg = EvalConfig { events: 60_000, ..EvalConfig::default() };
        ReferenceEvaluation::for_benchmark(
            Benchmark::Unepic,
            &ProcessorKind::P1111.mdes(),
            cfg,
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(16 * 1024, 2, 64)],
        )
    }

    #[test]
    fn build_measures_all_spaces() {
        let e = small_eval();
        let ic = CacheConfig::from_bytes(1024, 1, 32);
        assert!(e.icache_misses_measured(ic).is_some());
        assert!(e.dcache_misses(CacheConfig::from_bytes(1024, 1, 32)).is_ok());
        assert!(e.ucache_misses_measured(CacheConfig::from_bytes(16 * 1024, 2, 64)).is_some());
        // Expanded line sizes present: 32B cache with max_dilation 4 needs
        // 16B and 8B variants too.
        assert!(e.icache_misses_measured(CacheConfig::new(32, 1, 4)).is_some());
        assert!(e.icache_misses_measured(CacheConfig::new(32, 1, 2)).is_some());
    }

    #[test]
    fn unit_dilation_estimate_equals_measurement() {
        let e = small_eval();
        let ic = CacheConfig::from_bytes(1024, 1, 32);
        let est = e.estimate_icache_misses(ic, 1.0).unwrap();
        let measured = e.icache_misses_measured(ic).unwrap() as f64;
        assert!((est - measured).abs() < 1e-6);
        let uc = CacheConfig::from_bytes(16 * 1024, 2, 64);
        let est_u = e.estimate_ucache_misses(uc, 1.0).unwrap();
        let measured_u = e.ucache_misses_measured(uc).unwrap() as f64;
        assert!((est_u - measured_u).abs() < 1e-6);
    }

    #[test]
    fn icache_estimates_grow_with_dilation() {
        let e = small_eval();
        let ic = CacheConfig::from_bytes(1024, 1, 32);
        let m1 = e.estimate_icache_misses(ic, 1.0).unwrap();
        let m2 = e.estimate_icache_misses(ic, 2.0).unwrap();
        let m3 = e.estimate_icache_misses(ic, 3.0).unwrap();
        assert!(m2 > m1 * 1.05, "d=2 should clearly exceed d=1: {m1} -> {m2}");
        assert!(m3 > m2, "{m2} -> {m3}");
    }

    #[test]
    fn estimate_tracks_dilated_simulation() {
        // The model's step-3 accuracy claim, on a small instance: estimated
        // misses track the simulated dilated-trace misses.
        let e = small_eval();
        let ic = CacheConfig::from_bytes(1024, 1, 32);
        let mut worst = 0.0f64;
        let mut total = 0.0;
        let ds = [1.5, 2.0, 2.5];
        for d in ds {
            let est = e.estimate_icache_misses(ic, d).unwrap();
            let sim = dilated_misses(
                e.program(),
                e.reference(),
                d,
                e.config(),
                StreamKind::Instruction,
                ic,
            ) as f64;
            let rel = (est - sim).abs() / sim;
            worst = worst.max(rel);
            total += rel;
        }
        // Paper-comparable accuracy: Table 4 shows per-point errors of this
        // order; require the average to be clearly informative and no
        // single point to be wildly off.
        let mean = total / ds.len() as f64;
        assert!(mean < 0.30, "mean error {:.1}%", mean * 100.0);
        assert!(worst < 0.50, "worst error {:.1}%", worst * 100.0);
    }

    #[test]
    fn dilation_of_reference_is_one() {
        let e = small_eval();
        let d = e.dilation_of(&ProcessorKind::P1111.mdes());
        assert!((d - 1.0).abs() < 1e-12);
        assert!(e.dilation_of(&ProcessorKind::P6332.mdes()) > 2.0);
    }

    #[test]
    fn missing_config_errors_cleanly() {
        let e = small_eval();
        let unknown = CacheConfig::from_bytes(4096, 4, 16);
        assert!(e.estimate_ucache_misses(unknown, 1.5).is_err());
        assert!(e.dcache_misses(unknown).is_err());
    }

    #[test]
    fn build_from_trace_matches_build() {
        let e = small_eval();
        let trace: Vec<Access> = e.reference_trace().collect();
        let ic = [CacheConfig::from_bytes(1024, 1, 32)];
        let dc = [CacheConfig::from_bytes(1024, 1, 32)];
        let uc = [CacheConfig::from_bytes(16 * 1024, 2, 64)];
        for chunk_accesses in [999, 1 << 16] {
            let cfg = EvalConfig { events: 60_000, chunk_accesses, ..EvalConfig::default() };
            let s = ReferenceEvaluation::build_from_trace(
                e.program().clone(),
                &ProcessorKind::P1111.mdes(),
                cfg,
                trace.iter().copied(),
                &ic,
                &dc,
                &uc,
            );
            assert_eq!(s.imeasured(), e.imeasured(), "chunk {chunk_accesses}");
            assert_eq!(s.dmeasured(), e.dmeasured(), "chunk {chunk_accesses}");
            assert_eq!(s.umeasured(), e.umeasured(), "chunk {chunk_accesses}");
            let est =
                |ev: &ReferenceEvaluation| ev.estimate_icache_misses(ic[0], 2.0).unwrap().to_bits();
            assert_eq!(est(&s), est(&e));
            assert_eq!(s.metrics().trace_len, e.metrics().trace_len);
            assert!(s.metrics().replay.is_none());
        }
    }

    #[test]
    fn replay_mtr_file_matches_build() {
        let e = small_eval();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mhe_eval_unit_{}.mtr", std::process::id()));
        let stats = e.capture_mtr(std::fs::File::create(&path).unwrap()).unwrap();
        assert!(stats.compression_ratio() > 1.0);
        let r = ReferenceEvaluation::replay_file(
            e.program().clone(),
            &ProcessorKind::P1111.mdes(),
            *e.config(),
            &path,
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(16 * 1024, 2, 64)],
        )
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(r.imeasured(), e.imeasured());
        assert_eq!(r.dmeasured(), e.dmeasured());
        assert_eq!(r.umeasured(), e.umeasured());
        let replay = r.metrics().replay.expect("file replay records metrics");
        assert_eq!(replay.accesses, e.metrics().trace_len);
        assert_eq!(replay.bytes_read, stats.bytes);
        assert!(replay.chunks > 0);
        assert!(replay.compression_ratio() > 1.0);
    }

    #[test]
    fn replay_rejects_unknown_extension() {
        let e = small_eval();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mhe_eval_unit_{}.txt", std::process::id()));
        std::fs::write(&path, b"not a trace").unwrap();
        let err = ReferenceEvaluation::replay_file(
            e.program().clone(),
            &ProcessorKind::P1111.mdes(),
            *e.config(),
            &path,
            &[],
            &[],
            &[],
        )
        .unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn builder_validates_each_field() {
        let cfg = EvalConfig::builder()
            .events(1234)
            .seed(9)
            .threads(3)
            .chunk_accesses(512)
            .max_dilation(2.5)
            .build()
            .unwrap();
        assert_eq!(cfg.events, 1234);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.chunk_accesses, 512);
        assert_eq!(cfg.max_dilation, 2.5);

        let field = |r: Result<EvalConfig, MheError>| match r {
            Err(MheError::InvalidConfig { field, .. }) => field,
            other => panic!("expected InvalidConfig, got {other:?}"),
        };
        assert_eq!(field(EvalConfig::builder().events(0).build()), "events");
        assert_eq!(field(EvalConfig::builder().i_granule(0).build()), "i_granule");
        assert_eq!(field(EvalConfig::builder().u_granule(0).build()), "u_granule");
        assert_eq!(field(EvalConfig::builder().max_dilation(0.5).build()), "max_dilation");
        assert_eq!(field(EvalConfig::builder().max_dilation(f64::NAN).build()), "max_dilation");
        assert_eq!(field(EvalConfig::builder().chunk_accesses(0).build()), "chunk_accesses");
    }

    #[test]
    fn default_config_is_valid() {
        EvalConfig::default().validate().unwrap();
        assert_eq!(EvalConfig::builder().build().unwrap(), EvalConfig::default());
    }

    /// A sampling config that degenerates to exact full simulation: one
    /// cluster whose single interval is the whole trace, no warm-up, and
    /// the analytic fast path disabled.
    fn degenerate_sampling() -> SamplingConfig {
        SamplingConfig {
            interval_accesses: usize::MAX,
            clusters: 1,
            warmup: 0,
            histogram_sets: u32::MAX,
            ..SamplingConfig::default()
        }
    }

    #[test]
    fn degenerate_sampled_build_is_exact() {
        let e = small_eval();
        let cfg = EvalConfig {
            events: 60_000,
            sampling: Some(degenerate_sampling()),
            ..EvalConfig::default()
        };
        let s = ReferenceEvaluation::for_benchmark(
            Benchmark::Unepic,
            &ProcessorKind::P1111.mdes(),
            cfg,
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(16 * 1024, 2, 64)],
        );
        assert_eq!(s.imeasured(), e.imeasured());
        assert_eq!(s.dmeasured(), e.dmeasured());
        assert_eq!(s.umeasured(), e.umeasured());
        let sm = s.metrics().sampling.expect("sampled build records metrics");
        assert_eq!(sm.intervals, 1);
        assert_eq!(sm.clusters, 1);
        assert_eq!(sm.total_accesses, s.metrics().trace_len);
        assert_eq!(sm.error_bound, 0.0);
        assert!(e.metrics().sampling.is_none(), "exact build has no sampling metrics");
    }

    #[test]
    fn sampled_build_approximates_exact() {
        let e = small_eval();
        let cfg = EvalConfig {
            events: 60_000,
            sampling: Some(SamplingConfig::default()),
            ..EvalConfig::default()
        };
        let s = ReferenceEvaluation::for_benchmark(
            Benchmark::Unepic,
            &ProcessorKind::P1111.mdes(),
            cfg,
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(16 * 1024, 2, 64)],
        );
        let sm = s.metrics().sampling.expect("sampled build records metrics");
        assert!(sm.intervals > sm.clusters);
        assert!(sm.representative_accesses < sm.total_accesses);
        for (grid, exact_grid) in [(s.imeasured(), e.imeasured()), (s.dmeasured(), e.dmeasured())] {
            for (c, exact) in exact_grid {
                let approx = grid[c];
                let denom = (*exact).max(1) as f64;
                let rel = (approx as f64 - *exact as f64).abs() / denom;
                assert!(rel < 0.10, "{c:?}: sampled {approx} vs exact {exact} ({rel:.3})");
            }
        }
    }

    #[test]
    fn sampled_replay_matches_sampled_build() {
        let e = small_eval();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mhe_eval_sampled_{}.mtr", std::process::id()));
        e.capture_mtr(std::fs::File::create(&path).unwrap()).unwrap();
        let cfg = EvalConfig {
            events: 60_000,
            sampling: Some(degenerate_sampling()),
            ..EvalConfig::default()
        };
        let r = ReferenceEvaluation::replay_file(
            e.program().clone(),
            &ProcessorKind::P1111.mdes(),
            cfg,
            &path,
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(16 * 1024, 2, 64)],
        )
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(r.imeasured(), e.imeasured());
        assert_eq!(r.dmeasured(), e.dmeasured());
        assert_eq!(r.umeasured(), e.umeasured());
        assert!(r.metrics().replay.is_some());
        assert!(r.metrics().sampling.is_some());
    }

    #[test]
    fn builder_validates_sampling_fields() {
        let field = |r: Result<EvalConfig, MheError>| match r {
            Err(MheError::InvalidConfig { field, .. }) => field,
            other => panic!("expected InvalidConfig, got {other:?}"),
        };
        let zero_interval = SamplingConfig { interval_accesses: 0, ..SamplingConfig::default() };
        assert_eq!(
            field(EvalConfig::builder().sampling(zero_interval).build()),
            "sampling.interval_accesses"
        );
        let zero_clusters = SamplingConfig { clusters: 0, ..SamplingConfig::default() };
        assert_eq!(
            field(EvalConfig::builder().sampling(zero_clusters).build()),
            "sampling.clusters"
        );
        let ok = EvalConfig::builder().sampling(SamplingConfig::default()).build().unwrap();
        assert_eq!(ok.sampling, Some(SamplingConfig::default()));
    }

    #[test]
    fn expand_line_sizes_covers_dilation_range() {
        let base = CacheConfig::from_bytes(1024, 1, 32); // 8-word lines
        let out = expand_line_sizes(&[base], 4.0);
        let lines: Vec<u32> = out.iter().map(|c| c.line_words).collect();
        assert!(lines.contains(&8));
        assert!(lines.contains(&4));
        assert!(lines.contains(&2));
        assert!(!lines.contains(&1), "dilation 4 on 8-word lines stops at 2");
    }
}
