//! Instruction-cache miss estimation under dilation (§4.3.1).
//!
//! Lemma 1: dilating the trace by `d` is equivalent to *contracting the
//! line size* by `d`: `M(IC(S,A,L), Pref, d) = M(IC(S,A,L/d), Pref)`. Since
//! `L/d` is generally not a power of two, the misses of the infeasible
//! cache are interpolated between the two neighbouring feasible line sizes
//! using the AHH collision count as the interpolation basis (Lemma 2 /
//! Eq. 4.12) — misses are far too nonlinear in line size for plain linear
//! interpolation, which the ablation benchmark demonstrates.

use crate::error::MheError;
use mhe_cache::CacheConfig;
use mhe_model::ahh::{collisions, interpolate_linear_in, unique_lines, UniqueLineModel};
use mhe_model::params::TraceParams;
use mhe_trace::StreamKind;

/// Source of measured reference-trace miss counts for feasible caches.
///
/// Implemented by the evaluator's tables; a closure works too.
pub trait MeasuredMisses {
    /// Misses of `config` on the (undilated) reference trace.
    ///
    /// Returns `None` if the configuration was not simulated.
    fn misses(&self, config: CacheConfig) -> Option<u64>;
}

impl<F: Fn(CacheConfig) -> Option<u64>> MeasuredMisses for F {
    fn misses(&self, config: CacheConfig) -> Option<u64> {
        self(config)
    }
}

/// Neighbouring feasible (power-of-two) line sizes around a contracted line
/// size `l` (in words). Returns `(lower, upper)` with `lower <= l <= upper`.
pub fn bracket_line_words(l: f64) -> (u32, u32) {
    assert!(l > 0.0, "contracted line size must be positive");
    if l <= 1.0 {
        return (1, 1);
    }
    let lo = (l.log2().floor().exp2() as u32).max(1);
    if (f64::from(lo) - l).abs() < 1e-9 {
        (lo, lo)
    } else {
        (lo, lo * 2)
    }
}

/// Estimates `M(IC(S,A,L), Pref, d)` — instruction-cache misses of the
/// reference trace dilated by `d` — from measured reference-trace misses
/// and the instruction-trace parameters.
///
/// # Errors
///
/// Returns [`MheError::MissingSimulation`] naming the missing configuration
/// if `measured` lacks a required neighbouring line size.
///
/// # Panics
///
/// Panics if `d <= 0`.
pub fn estimate_icache_misses(
    params: &TraceParams,
    measured: &impl MeasuredMisses,
    cache: CacheConfig,
    d: f64,
    model: UniqueLineModel,
) -> Result<f64, MheError> {
    assert!(d > 0.0, "dilation must be positive, got {d}");
    // Lemma 1: contract the line size by the dilation.
    let l_eff = f64::from(cache.line_words) / d;
    let (lo, hi) = bracket_line_words(l_eff);
    let m_lo = lookup(measured, cache, lo)?;
    if lo == hi {
        return Ok(m_lo as f64);
    }
    let m_hi = lookup(measured, cache, hi)?;
    // Eq. 4.12: misses are linear in Coll; interpolate in that basis.
    let coll = |l: f64| collisions(unique_lines(params, l, model), cache.sets, cache.assoc);
    let g_lo = coll(f64::from(lo));
    let g_hi = coll(f64::from(hi));
    let g = coll(l_eff);
    let est = interpolate_linear_in(m_lo as f64, g_lo, m_hi as f64, g_hi, g);
    Ok(est.max(0.0))
}

/// Plain linear interpolation in the line size itself — the naive
/// alternative the paper rejects. Kept public for the ablation benchmark.
///
/// # Errors
///
/// Returns [`MheError::MissingSimulation`] naming the missing
/// configuration, as for [`estimate_icache_misses`].
pub fn estimate_icache_misses_linear(
    measured: &impl MeasuredMisses,
    cache: CacheConfig,
    d: f64,
) -> Result<f64, MheError> {
    assert!(d > 0.0, "dilation must be positive, got {d}");
    let l_eff = f64::from(cache.line_words) / d;
    let (lo, hi) = bracket_line_words(l_eff);
    let m_lo = lookup(measured, cache, lo)? as f64;
    if lo == hi {
        return Ok(m_lo);
    }
    let m_hi = lookup(measured, cache, hi)? as f64;
    let t = (l_eff - f64::from(lo)) / f64::from(hi - lo);
    Ok(m_lo + t * (m_hi - m_lo))
}

fn lookup(
    measured: &impl MeasuredMisses,
    cache: CacheConfig,
    line_words: u32,
) -> Result<u64, MheError> {
    // Keep the policy: the contracted-line family was simulated under
    // the target cache's own replacement policy.
    let cfg = cache.with_line_words(line_words);
    measured
        .misses(cfg)
        .ok_or(MheError::MissingSimulation { stream: StreamKind::Instruction, config: cfg })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn table(entries: &[(u32, u64)]) -> impl MeasuredMisses {
        let map: HashMap<u32, u64> = entries.iter().copied().collect();
        move |cfg: CacheConfig| {
            if cfg.sets == 32 && cfg.assoc == 1 {
                map.get(&cfg.line_words).copied()
            } else {
                None
            }
        }
    }

    fn params() -> TraceParams {
        TraceParams { u1: 3000.0, p1: 0.1, lav: 16.0 }
    }

    #[test]
    fn bracket_finds_neighbours() {
        assert_eq!(bracket_line_words(3.0), (2, 4));
        assert_eq!(bracket_line_words(4.0), (4, 4));
        assert_eq!(bracket_line_words(5.7), (4, 8));
        assert_eq!(bracket_line_words(1.0), (1, 1));
        assert_eq!(bracket_line_words(0.4), (1, 1));
    }

    #[test]
    fn unit_dilation_returns_measured_misses() {
        let m = table(&[(8, 5000)]);
        let cfg = CacheConfig::new(32, 1, 8);
        let est =
            estimate_icache_misses(&params(), &m, cfg, 1.0, UniqueLineModel::RunBased).unwrap();
        assert!((est - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn power_of_two_dilation_maps_to_smaller_line() {
        // d = 2 on a 8-word line = the 4-word-line cache, exactly.
        let m = table(&[(4, 9000), (8, 5000)]);
        let cfg = CacheConfig::new(32, 1, 8);
        let est =
            estimate_icache_misses(&params(), &m, cfg, 2.0, UniqueLineModel::RunBased).unwrap();
        assert!((est - 9000.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_dilation_lands_between_neighbours() {
        let m = table(&[(4, 9000), (8, 5000)]);
        let cfg = CacheConfig::new(32, 1, 8);
        for d in [1.3, 1.5, 1.9] {
            let est =
                estimate_icache_misses(&params(), &m, cfg, d, UniqueLineModel::RunBased).unwrap();
            assert!(
                (5000.0..=9000.0).contains(&est),
                "d={d}: estimate {est} outside measured bracket"
            );
        }
    }

    #[test]
    fn estimates_increase_with_dilation() {
        // More dilation -> smaller effective line -> more misses (for a
        // spatially local trace).
        let m = table(&[(1, 20_000), (2, 14_000), (4, 9000), (8, 5000)]);
        let cfg = CacheConfig::new(32, 1, 8);
        let mut prev = 0.0;
        for d in [1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0] {
            let est =
                estimate_icache_misses(&params(), &m, cfg, d, UniqueLineModel::RunBased).unwrap();
            assert!(est >= prev, "d={d}: {est} < {prev}");
            prev = est;
        }
    }

    #[test]
    fn missing_configuration_is_an_error() {
        let m = table(&[(8, 5000)]);
        let cfg = CacheConfig::new(32, 1, 8);
        let err = estimate_icache_misses(&params(), &m, cfg, 1.5, UniqueLineModel::RunBased);
        // d = 1.5 needs the 4-word neighbour, which was not simulated.
        assert_eq!(
            err.unwrap_err(),
            MheError::MissingSimulation {
                stream: StreamKind::Instruction,
                config: CacheConfig::new(32, 1, 4),
            }
        );
    }

    #[test]
    fn linear_variant_interpolates_in_line_size() {
        let m = table(&[(4, 9000), (8, 5000)]);
        let cfg = CacheConfig::new(32, 1, 8);
        // l_eff = 8/1.6 = 5 -> t = 0.25 -> 9000 + 0.25*(-4000) = 8000.
        let est = estimate_icache_misses_linear(&m, cfg, 1.6).unwrap();
        assert!((est - 8000.0).abs() < 1e-9);
    }

    #[test]
    fn ahh_and_linear_interpolation_differ_in_general() {
        let m = table(&[(4, 9000), (8, 5000)]);
        let cfg = CacheConfig::new(32, 1, 8);
        let a = estimate_icache_misses(&params(), &m, cfg, 1.6, UniqueLineModel::RunBased).unwrap();
        let b = estimate_icache_misses_linear(&m, cfg, 1.6).unwrap();
        assert!((a - b).abs() > 1.0, "AHH ({a}) vs linear ({b}) suspiciously equal");
    }
}
