//! The workspace error taxonomy.
//!
//! Every fallible metric query in the evaluation stack reports a typed
//! [`MheError`] instead of a formatted string, so callers — walkers in
//! particular — can match on the failure, recover (e.g. rebuild the
//! evaluation with a wider space), or propagate it without parsing text.
//! The errors are values: cheap to construct, `Eq`-comparable in tests,
//! and rendered for humans only at the display boundary.

use mhe_cache::CacheConfig;
use mhe_trace::StreamKind;
use std::fmt;

/// Why a metric query could not be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MheError {
    /// A query needed the measured misses of a cache configuration that was
    /// never simulated on the reference trace.
    ///
    /// For instruction caches this usually means a dilation required a
    /// contracted line size outside the pre-simulated expansion — rebuild
    /// the evaluation with a larger `max_dilation` or add the configuration
    /// to the space.
    MissingSimulation {
        /// The stream whose measurement is missing.
        stream: StreamKind,
        /// The configuration that was not simulated.
        config: CacheConfig,
    },
    /// No reference evaluation matches a target machine's
    /// speculation/predication feature combination (see
    /// [`crate::bank::ReferenceBank`]).
    MissingReference {
        /// Whether the target supports load speculation.
        speculation: bool,
        /// Whether the target supports predicated execution.
        predication: bool,
    },
    /// An [`crate::evaluator::EvalConfig`] builder was given an invalid
    /// value (zero window, zero granule, non-finite or sub-unit dilation,
    /// zero chunk size).
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// What the field requires.
        requirement: &'static str,
    },
}

impl MheError {
    /// Shorthand for a missing simulation of `config` on `stream`.
    pub fn missing(stream: StreamKind, config: CacheConfig) -> Self {
        MheError::MissingSimulation { stream, config }
    }
}

impl fmt::Display for MheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MheError::MissingSimulation { stream, config } => {
                let s = match stream {
                    StreamKind::Instruction => "instruction",
                    StreamKind::Data => "data",
                    StreamKind::Unified => "unified",
                };
                write!(
                    f,
                    "missing measured {s} misses for {config}: \
                     not in the simulated space (rebuild with this \
                     configuration or a larger max_dilation)"
                )
            }
            MheError::MissingReference { speculation, predication } => write!(
                f,
                "no reference evaluation for features \
                 speculation={speculation}, predication={predication}"
            ),
            MheError::InvalidConfig { field, requirement } => {
                write!(f, "invalid evaluation config: {field} {requirement}")
            }
        }
    }
}

impl std::error::Error for MheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_configuration() {
        let e = MheError::missing(StreamKind::Instruction, CacheConfig::from_bytes(1024, 1, 32));
        let msg = e.to_string();
        assert!(msg.contains("instruction"), "{msg}");
        assert!(msg.contains("max_dilation"), "{msg}");
        let e = MheError::MissingReference { speculation: true, predication: false };
        assert!(e.to_string().contains("speculation=true"));
        let e = MheError::InvalidConfig { field: "events", requirement: "must be positive" };
        let msg = e.to_string();
        assert!(msg.contains("events") && msg.contains("positive"), "{msg}");
    }

    #[test]
    fn errors_are_comparable_values() {
        let cfg = CacheConfig::from_bytes(1024, 1, 32);
        assert_eq!(
            MheError::missing(StreamKind::Data, cfg),
            MheError::MissingSimulation { stream: StreamKind::Data, config: cfg }
        );
        assert_ne!(
            MheError::missing(StreamKind::Data, cfg),
            MheError::missing(StreamKind::Unified, cfg)
        );
    }
}
