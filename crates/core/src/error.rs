//! The workspace error taxonomy.
//!
//! Every fallible metric query in the evaluation stack reports a typed
//! [`MheError`] instead of a formatted string, so callers — walkers in
//! particular — can match on the failure, recover (e.g. rebuild the
//! evaluation with a wider space), or propagate it without parsing text.
//! The errors are values: cheap to construct, `Eq`-comparable in tests,
//! and rendered for humans only at the display boundary.

use mhe_cache::CacheConfig;
use mhe_trace::StreamKind;
use std::fmt;
use std::sync::Arc;

/// Process exit code for user configuration errors (usage, unreadable or
/// malformed spec, invalid evaluation config). `0` is success and `1` a
/// generic failure, so the fault-specific codes start at 2.
pub const EXIT_BAD_CONFIG: u8 = 2;
/// Process exit code for corrupt persistent input (trace, cache database,
/// or checkpoint failing magic/version/CRC validation).
pub const EXIT_CORRUPT_INPUT: u8 = 3;
/// Process exit code for worker failures (a panic isolated inside a
/// parallel sweep after retries, or a failed persistence write).
pub const EXIT_WORKER_FAILURE: u8 = 4;
/// Process exit code for a client that could not reach (or was turned
/// away by) an evaluation daemon: connection refused, handshake mismatch,
/// or a structured admission-control rejection.
pub const EXIT_SERVER_UNAVAILABLE: u8 = 5;
/// Process exit code for an authentication failure: the peer requires a
/// shared token (`--auth-token`/`MHE_AUTH_TOKEN`) and the connection
/// presented none, or a proof that did not verify.
pub const EXIT_UNAUTHORIZED: u8 = 6;
/// Process exit code for a cooperatively cancelled evaluation: the
/// client disconnected mid-sweep or sent an explicit `Cancel` frame, and
/// the sweep stopped at the next task boundary.
pub const EXIT_CANCELLED: u8 = 7;

/// Why a metric query could not be answered.
///
/// Variants carrying free-form context (`WorkerFailed`, `CorruptInput`)
/// use `Arc<str>` so the error stays cheap to clone across sweep
/// boundaries; the enum is therefore `Clone` but no longer `Copy`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MheError {
    /// A query needed the measured misses of a cache configuration that was
    /// never simulated on the reference trace.
    ///
    /// For instruction caches this usually means a dilation required a
    /// contracted line size outside the pre-simulated expansion — rebuild
    /// the evaluation with a larger `max_dilation` or add the configuration
    /// to the space.
    MissingSimulation {
        /// The stream whose measurement is missing.
        stream: StreamKind,
        /// The configuration that was not simulated.
        config: CacheConfig,
    },
    /// No reference evaluation matches a target machine's
    /// speculation/predication feature combination (see
    /// [`crate::bank::ReferenceBank`]).
    MissingReference {
        /// Whether the target supports load speculation.
        speculation: bool,
        /// Whether the target supports predicated execution.
        predication: bool,
    },
    /// An [`crate::evaluator::EvalConfig`] builder was given an invalid
    /// value (zero window, zero granule, non-finite or sub-unit dilation,
    /// zero chunk size).
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// What the field requires.
        requirement: &'static str,
    },
    /// A worker task panicked inside a parallel sweep.
    ///
    /// The panic was caught at the task boundary (it never crosses
    /// `join()`); remaining queued work was cancelled and any configured
    /// [`crate::env::RetryPolicy`] was exhausted before this surfaced.
    WorkerFailed {
        /// A label identifying the failed task (e.g. `"sweep job 17"`).
        task: Arc<str>,
        /// The panic payload message, when it was a string.
        cause: Arc<str>,
    },
    /// A persistent artifact (`.mtr` trace, evaluation database,
    /// checkpoint) failed validation — bad magic, truncation, or a CRC
    /// mismatch.
    CorruptInput {
        /// The file (or stream description) that failed to decode.
        path: Arc<str>,
        /// What exactly was wrong.
        detail: Arc<str>,
    },
    /// The evaluation was cooperatively cancelled at a task boundary
    /// (client disconnect, explicit `Cancel` frame, or a dropped
    /// [`crate::cancel::CancelToken`] holder). Partial work — warmed
    /// cache entries in particular — remains valid and reusable.
    Cancelled,
}

impl MheError {
    /// Shorthand for a missing simulation of `config` on `stream`.
    pub fn missing(stream: StreamKind, config: CacheConfig) -> Self {
        MheError::MissingSimulation { stream, config }
    }

    /// Shorthand for a caught worker panic in task `task`.
    pub fn worker_failed(task: impl AsRef<str>, cause: impl AsRef<str>) -> Self {
        MheError::WorkerFailed { task: Arc::from(task.as_ref()), cause: Arc::from(cause.as_ref()) }
    }

    /// Shorthand for a corrupt persistent artifact at `path`.
    pub fn corrupt(path: impl AsRef<str>, detail: impl AsRef<str>) -> Self {
        MheError::CorruptInput {
            path: Arc::from(path.as_ref()),
            detail: Arc::from(detail.as_ref()),
        }
    }

    /// The process exit code binaries map this error to:
    /// [`EXIT_BAD_CONFIG`] for user configuration errors,
    /// [`EXIT_CORRUPT_INPUT`] for corrupt input artifacts,
    /// [`EXIT_WORKER_FAILURE`] for worker failures,
    /// [`EXIT_CANCELLED`] for cooperative cancellation. (`0` is success
    /// and `1` a generic failure, so the fault-specific codes start at 2;
    /// [`EXIT_SERVER_UNAVAILABLE`] and [`EXIT_UNAUTHORIZED`] are reserved
    /// for daemon clients and have no `MheError` variant.)
    pub fn exit_code(&self) -> u8 {
        match self {
            MheError::MissingSimulation { .. }
            | MheError::MissingReference { .. }
            | MheError::InvalidConfig { .. } => EXIT_BAD_CONFIG,
            MheError::CorruptInput { .. } => EXIT_CORRUPT_INPUT,
            MheError::WorkerFailed { .. } => EXIT_WORKER_FAILURE,
            MheError::Cancelled => EXIT_CANCELLED,
        }
    }
}

impl fmt::Display for MheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MheError::MissingSimulation { stream, config } => {
                let s = match stream {
                    StreamKind::Instruction => "instruction",
                    StreamKind::Data => "data",
                    StreamKind::Unified => "unified",
                };
                write!(
                    f,
                    "missing measured {s} misses for {config}: \
                     not in the simulated space (rebuild with this \
                     configuration or a larger max_dilation)"
                )
            }
            MheError::MissingReference { speculation, predication } => write!(
                f,
                "no reference evaluation for features \
                 speculation={speculation}, predication={predication}"
            ),
            MheError::InvalidConfig { field, requirement } => {
                write!(f, "invalid evaluation config: {field} {requirement}")
            }
            MheError::WorkerFailed { task, cause } => {
                write!(f, "worker panic in {task}: {cause}")
            }
            MheError::CorruptInput { path, detail } => {
                write!(f, "corrupt input {path}: {detail}")
            }
            MheError::Cancelled => write!(f, "evaluation cancelled"),
        }
    }
}

impl std::error::Error for MheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_configuration() {
        let e = MheError::missing(StreamKind::Instruction, CacheConfig::from_bytes(1024, 1, 32));
        let msg = e.to_string();
        assert!(msg.contains("instruction"), "{msg}");
        assert!(msg.contains("max_dilation"), "{msg}");
        let e = MheError::MissingReference { speculation: true, predication: false };
        assert!(e.to_string().contains("speculation=true"));
        let e = MheError::InvalidConfig { field: "events", requirement: "must be positive" };
        let msg = e.to_string();
        assert!(msg.contains("events") && msg.contains("positive"), "{msg}");
    }

    #[test]
    fn fault_variants_carry_context_and_exit_codes() {
        let e = MheError::worker_failed("sweep job 17", "index out of bounds");
        assert_eq!(e.exit_code(), 4);
        let msg = e.to_string();
        assert!(msg.contains("sweep job 17") && msg.contains("index out of bounds"), "{msg}");

        let e = MheError::corrupt("db/cache.mhec", "file CRC mismatch");
        assert_eq!(e.exit_code(), 3);
        let msg = e.to_string();
        assert!(msg.contains("db/cache.mhec") && msg.contains("CRC"), "{msg}");

        let e = MheError::InvalidConfig { field: "events", requirement: "must be positive" };
        assert_eq!(e.exit_code(), 2);

        assert_eq!(MheError::Cancelled.exit_code(), 7);
        assert!(MheError::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn errors_are_comparable_values() {
        let cfg = CacheConfig::from_bytes(1024, 1, 32);
        assert_eq!(
            MheError::missing(StreamKind::Data, cfg),
            MheError::MissingSimulation { stream: StreamKind::Data, config: cfg }
        );
        assert_ne!(
            MheError::missing(StreamKind::Data, cfg),
            MheError::missing(StreamKind::Unified, cfg)
        );
    }
}
