//! The optional hardware accelerator (paper Figure 1: "non-programmable
//! systolic array").
//!
//! The paper's design space includes an optional accelerator whose
//! performance, like the processor's, "is estimated using schedule lengths
//! and profile statistics". We model a systolic array that offloads the
//! hottest compute-dominated procedures ("kernels"): offloaded blocks
//! execute at the array's initiation interval instead of their VLIW
//! schedule length, and the array's cost is added to system cost. Memory
//! behaviour is deliberately left unchanged — the array shares the cache
//! hierarchy, keeping the accelerator orthogonal to the dilation model
//! (the same separation the paper's hierarchical evaluation uses).

use mhe_vliw::compile::Compiled;
use mhe_workload::exec::{BlockFrequencies, Executor};
use mhe_workload::ir::{OpClass, ProcId, Program};

/// A non-programmable systolic-array accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accelerator {
    /// Operations retired per cycle when a kernel runs on the array.
    pub throughput_ops: u32,
    /// Fraction of a procedure's operations that must be compute
    /// (int/float) for it to be synthesizable onto the array.
    pub min_compute_fraction: f64,
    /// How many kernel procedures the array can host.
    pub kernel_slots: usize,
    /// Area cost in the same units as [`mhe_vliw::Mdes::cost`].
    pub cost: f64,
}

impl Default for Accelerator {
    fn default() -> Self {
        Self { throughput_ops: 16, min_compute_fraction: 0.5, kernel_slots: 2, cost: 20.0 }
    }
}

/// The kernel selection for one program: which procedures run on the
/// array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelMap {
    kernels: Vec<ProcId>,
}

impl KernelMap {
    /// Selects up to `accel.kernel_slots` offloadable procedures, hottest
    /// first.
    ///
    /// A procedure is offloadable when its static compute fraction
    /// (int + float ops over all ops) reaches the accelerator's threshold
    /// and it makes no calls (systolic arrays don't call back into
    /// software).
    pub fn select(program: &Program, freq: &BlockFrequencies, accel: &Accelerator) -> Self {
        let mut candidates: Vec<(u64, ProcId)> = Vec::new();
        for (pi, proc) in program.procedures.iter().enumerate() {
            let id = ProcId(pi as u32);
            let mut compute = 0usize;
            let mut total = 0usize;
            let mut calls = false;
            for block in &proc.blocks {
                for op in &block.ops {
                    total += 1;
                    if matches!(op.class, OpClass::IntAlu | OpClass::FloatAlu) {
                        compute += 1;
                    }
                }
                if matches!(block.terminator, mhe_workload::ir::Terminator::Call { .. }) {
                    calls = true;
                }
            }
            if calls || total == 0 {
                continue;
            }
            if compute as f64 / total as f64 >= accel.min_compute_fraction {
                candidates.push((freq.proc_count(id), id));
            }
        }
        candidates.sort_by_key(|&(hot, _)| std::cmp::Reverse(hot));
        Self {
            kernels: candidates
                .into_iter()
                .take(accel.kernel_slots)
                .filter(|&(hot, _)| hot > 0)
                .map(|(_, id)| id)
                .collect(),
        }
    }

    /// The selected kernel procedures.
    pub fn kernels(&self) -> &[ProcId] {
        &self.kernels
    }

    /// Whether a procedure runs on the array.
    pub fn is_kernel(&self, proc: ProcId) -> bool {
        self.kernels.contains(&proc)
    }
}

/// Dynamic cycles with the accelerator: kernel blocks retire at the
/// array's throughput, everything else uses the VLIW schedule.
pub fn accelerated_cycles(
    program: &Program,
    compiled: &Compiled,
    kernels: &KernelMap,
    accel: &Accelerator,
    seed: u64,
    events: usize,
) -> u64 {
    Executor::new(program, seed)
        .take(events)
        .map(|ev| {
            let sched = compiled.sched.block(ev.proc, ev.block);
            if kernels.is_kernel(ev.proc) {
                let ops = sched.op_count() as u64;
                ops.div_ceil(u64::from(accel.throughput_ops)).max(1)
            } else {
                u64::from(sched.len_cycles())
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::processor_cycles;
    use mhe_vliw::ProcessorKind;
    use mhe_workload::Benchmark;

    fn setup() -> (Program, Compiled, BlockFrequencies) {
        let p = Benchmark::Rasta.generate(); // FP-heavy: good kernel donor
        let freq = BlockFrequencies::profile(&p, 5, 100_000);
        let c = Compiled::build(&p, &ProcessorKind::P1111.mdes(), Some(&freq));
        (p, c, freq)
    }

    #[test]
    fn kernels_are_hot_computational_and_leaf() {
        let (p, _, freq) = setup();
        let accel = Accelerator::default();
        let map = KernelMap::select(&p, &freq, &accel);
        for &k in map.kernels() {
            let proc = p.proc(k);
            assert!(
                !proc
                    .blocks
                    .iter()
                    .any(|b| matches!(b.terminator, mhe_workload::ir::Terminator::Call { .. })),
                "kernel {k} makes calls"
            );
            assert!(freq.proc_count(k) > 0, "kernel {k} never executes");
        }
        assert!(map.kernels().len() <= accel.kernel_slots);
    }

    #[test]
    fn acceleration_reduces_cycles_on_fp_workloads() {
        let (p, c, freq) = setup();
        let accel = Accelerator::default();
        let map = KernelMap::select(&p, &freq, &accel);
        if map.kernels().is_empty() {
            // Selection can legitimately be empty for some profiles; the
            // test is vacuous then — but rasta should provide kernels.
            panic!("rasta should yield at least one kernel");
        }
        let events = 50_000;
        let base = processor_cycles(&p, &c, 5, events);
        let accelerated = accelerated_cycles(&p, &c, &map, &accel, 5, events);
        assert!(accelerated < base, "accelerator should help: {accelerated} vs {base}");
    }

    #[test]
    fn zero_slot_accelerator_changes_nothing() {
        let (p, c, freq) = setup();
        let accel = Accelerator { kernel_slots: 0, ..Accelerator::default() };
        let map = KernelMap::select(&p, &freq, &accel);
        assert!(map.kernels().is_empty());
        let events = 20_000;
        assert_eq!(
            accelerated_cycles(&p, &c, &map, &accel, 5, events),
            processor_cycles(&p, &c, 5, events)
        );
    }

    #[test]
    fn impossible_threshold_selects_nothing() {
        let (p, _, freq) = setup();
        let accel = Accelerator { min_compute_fraction: 1.01, ..Accelerator::default() };
        assert!(KernelMap::select(&p, &freq, &accel).kernels().is_empty());
    }
}
