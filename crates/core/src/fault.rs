//! Deterministic fault injection for robustness testing.
//!
//! Long design-space sweeps must survive the failures that real storage
//! and real worker pools produce: flipped bits, truncated files, short
//! reads, full disks, and panicking tasks. This module makes every one of
//! those failures *reproducible*: a [`FaultPlan`] is an explicit schedule
//! of faults (parsed from text or derived from a seed), and the
//! [`FaultyReader`]/[`FaultyWriter`] adapters apply its I/O faults at
//! exact byte offsets, so a failing test case is a value you can paste
//! into a regression test — not a flaky coincidence.
//!
//! Two consumption models:
//!
//! - **Explicit**: tests wrap a reader/writer in [`FaultyReader`] /
//!   [`FaultyWriter`] with a plan of their choosing.
//! - **Ambient**: setting `MHE_FAULT_PLAN` (same syntax as
//!   [`FaultPlan::parse`]) arms a process-wide plan whose
//!   [`Fault::PanicTask`] entries fire inside `ParallelSweep`'s fallible
//!   paths via [`maybe_panic_task`], proving panics are isolated without
//!   touching production code. Tests arm programmatically with [`arm`],
//!   which returns a disarm-on-drop guard.
//!
//! Worker-panic faults are **one-shot** — a task index panics on its
//! first attempt only — so a [`crate::env::RetryPolicy`] with retries can
//! demonstrably recover from them. Every fired fault increments the
//! `fault_injected` observability counter.
//!
//! ```
//! use mhe_core::fault::{Fault, FaultPlan, FaultyReader};
//! use std::io::Read;
//!
//! let data = vec![0u8; 16];
//! let plan = FaultPlan::new(vec![Fault::BitFlip { byte: 3, mask: 0x01 }]);
//! let mut out = Vec::new();
//! FaultyReader::new(data.as_slice(), &plan).read_to_end(&mut out).unwrap();
//! assert_eq!(out[3], 0x01);
//! ```

use std::io::{ErrorKind, Read, Result as IoResult, Write};
use std::sync::{Mutex, OnceLock};

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// XOR `mask` into the byte at stream offset `byte` (read or write).
    BitFlip {
        /// Stream offset of the corrupted byte.
        byte: u64,
        /// Which bits to flip (must be non-zero to have any effect).
        mask: u8,
    },
    /// End the stream at offset `at`: reads see EOF, writes silently drop
    /// the tail (a torn write, as when a process dies mid-save).
    Truncate {
        /// Offset after which no byte is transferred.
        at: u64,
    },
    /// One-shot short read: the first read crossing offset `at` returns
    /// only the bytes up to `at`. Legal under the [`Read`] contract —
    /// correct consumers must retry, broken ones mis-decode.
    ShortRead {
        /// The offset the shortened read stops at.
        at: u64,
    },
    /// The disk fills at offset `at`: any write reaching it fails with
    /// [`ErrorKind::StorageFull`], persistently.
    Enospc {
        /// First unwritable offset.
        at: u64,
    },
    /// Panic the sweep task with this index (0-based, one-shot).
    PanicTask {
        /// The task index to kill on its first attempt.
        task: u64,
    },
    /// Drop the `frame`-th protocol frame written by this process
    /// (0-based, one-shot): the peer never sees it, as when a connection
    /// dies between frames.
    DropFrame {
        /// Index of the frame to drop, counted across all connections.
        frame: u64,
    },
    /// Write the `frame`-th protocol frame twice (one-shot): a duplicate
    /// delivery, as a retransmitting middlebox would produce.
    DupFrame {
        /// Index of the frame to duplicate.
        frame: u64,
    },
    /// Write only the first half of the `frame`-th protocol frame, then
    /// stop (one-shot): a mid-frame connection tear.
    TruncFrame {
        /// Index of the frame to truncate.
        frame: u64,
    },
    /// Sleep before writing the `frame`-th protocol frame (one-shot):
    /// network latency/head-of-line blocking at an exact, reproducible
    /// point.
    DelayFrame {
        /// Index of the frame to delay.
        frame: u64,
        /// How long to stall the write, in milliseconds.
        millis: u64,
    },
}

/// A deterministic schedule of faults.
///
/// The text syntax (used by `MHE_FAULT_PLAN`) is a comma-separated list:
///
/// ```text
/// flip@BYTE:MASK , truncate@AT , short@AT , enospc@AT , panic@TASK ,
/// drop@FRAME , dup@FRAME , trunc@FRAME , delay@FRAME:MILLIS
/// ```
///
/// e.g. `MHE_FAULT_PLAN=panic@3,panic@11` kills sweep tasks 3 and 11 on
/// their first attempts, and `MHE_FAULT_PLAN=drop@2` swallows the third
/// protocol frame the process writes. Offsets are decimal; `MASK`
/// accepts `0x` hex.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan firing exactly the given faults.
    pub fn new(faults: Vec<Fault>) -> Self {
        Self { faults }
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Parses the `MHE_FAULT_PLAN` syntax. Returns `None` if any entry is
    /// malformed (a fault plan must be exact or absent — a half-parsed
    /// plan would silently test less than intended).
    pub fn parse(text: &str) -> Option<FaultPlan> {
        let mut faults = Vec::new();
        for entry in text.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (kind, arg) = entry.split_once('@')?;
            let fault = match kind.trim() {
                "flip" => {
                    let (byte, mask) = arg.split_once(':')?;
                    let mask = mask.trim();
                    let mask = match mask.strip_prefix("0x") {
                        Some(hex) => u8::from_str_radix(hex, 16).ok()?,
                        None => mask.parse().ok()?,
                    };
                    Fault::BitFlip { byte: byte.trim().parse().ok()?, mask }
                }
                "truncate" => Fault::Truncate { at: arg.trim().parse().ok()? },
                "short" => Fault::ShortRead { at: arg.trim().parse().ok()? },
                "enospc" => Fault::Enospc { at: arg.trim().parse().ok()? },
                "panic" => Fault::PanicTask { task: arg.trim().parse().ok()? },
                "drop" => Fault::DropFrame { frame: arg.trim().parse().ok()? },
                "dup" => Fault::DupFrame { frame: arg.trim().parse().ok()? },
                "trunc" => Fault::TruncFrame { frame: arg.trim().parse().ok()? },
                "delay" => {
                    let (frame, millis) = arg.split_once(':')?;
                    Fault::DelayFrame {
                        frame: frame.trim().parse().ok()?,
                        millis: millis.trim().parse().ok()?,
                    }
                }
                _ => return None,
            };
            faults.push(fault);
        }
        if faults.is_empty() {
            None
        } else {
            Some(FaultPlan { faults })
        }
    }

    /// A single-fault plan derived deterministically from `seed`, aimed at
    /// a stream of `domain` bytes (or `domain` tasks for panics). The same
    /// seed always yields the same fault, so a failing seed is a
    /// reproducible test case.
    pub fn seeded(seed: u64, domain: u64) -> FaultPlan {
        // SplitMix64: full-period, dependency-free.
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let domain = domain.max(1);
        let at = next() % domain;
        let fault = match next() % 5 {
            0 => Fault::BitFlip { byte: at, mask: (1 << (next() % 8)) as u8 },
            1 => Fault::Truncate { at },
            2 => Fault::ShortRead { at },
            3 => Fault::Enospc { at },
            _ => Fault::PanicTask { task: at },
        };
        FaultPlan { faults: vec![fault] }
    }

    /// A single-*network*-fault plan derived deterministically from
    /// `seed`, aimed at a stream of `frames` protocol frames. Same
    /// contract as [`FaultPlan::seeded`]: one seed, one reproducible
    /// fault — here a frame drop, duplicate, truncation, or a short
    /// (bounded, ≤ 50 ms) delay.
    pub fn seeded_net(seed: u64, frames: u64) -> FaultPlan {
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let frame = next() % frames.max(1);
        let fault = match next() % 4 {
            0 => Fault::DropFrame { frame },
            1 => Fault::DupFrame { frame },
            2 => Fault::TruncFrame { frame },
            _ => Fault::DelayFrame { frame, millis: 1 + next() % 50 },
        };
        FaultPlan { faults: vec![fault] }
    }
}

/// What an armed plan decided about one outgoing protocol frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Write the frame normally (no armed plan, or no fault for it).
    Deliver,
    /// Swallow the frame entirely.
    Drop,
    /// Write the frame twice.
    Duplicate,
    /// Write only the first half of the frame, then stop.
    Truncate,
    /// Sleep this long, then write the frame normally.
    Delay(std::time::Duration),
}

/// A process-wide armed plan with per-fault fired flags and the running
/// count of protocol frames the process has written since arming.
#[derive(Debug)]
struct ActivePlan {
    plan: FaultPlan,
    fired: Vec<bool>,
    frames_seen: u64,
}

fn armed() -> &'static Mutex<Option<ActivePlan>> {
    static ARMED: OnceLock<Mutex<Option<ActivePlan>>> = OnceLock::new();
    ARMED.get_or_init(|| {
        // First touch arms the ambient plan from MHE_FAULT_PLAN, if set.
        let plan = std::env::var("MHE_FAULT_PLAN").ok().and_then(|v| FaultPlan::parse(&v));
        Mutex::new(plan.map(|plan| {
            let fired = vec![false; plan.faults.len()];
            ActivePlan { plan, fired, frames_seen: 0 }
        }))
    })
}

/// Disarms the ambient plan when dropped; returned by [`arm`].
#[derive(Debug)]
pub struct ArmGuard {
    _private: (),
}

impl Drop for ArmGuard {
    fn drop(&mut self) {
        if let Ok(mut slot) = armed().lock() {
            *slot = None;
        }
    }
}

/// Arms `plan` process-wide (replacing any previous plan, including one
/// from `MHE_FAULT_PLAN`) until the returned guard drops.
///
/// Tests arming plans must serialize on their own lock: the plan is
/// global, so two concurrently armed tests would see each other's faults.
#[must_use = "the plan disarms when the guard drops"]
pub fn arm(plan: FaultPlan) -> ArmGuard {
    let fired = vec![false; plan.faults.len()];
    if let Ok(mut slot) = armed().lock() {
        *slot = Some(ActivePlan { plan, fired, frames_seen: 0 });
    }
    ArmGuard { _private: () }
}

/// True if any plan is currently armed (ambient or via [`arm`]).
pub fn is_armed() -> bool {
    armed().lock().map(|slot| slot.is_some()).unwrap_or(false)
}

/// The lock tests must hold while a plan is armed.
///
/// The armed plan is process-global and `cargo test` runs tests on
/// parallel threads, so any test calling [`arm`] must serialize on this
/// lock for the guard's whole lifetime — otherwise one test's faults
/// fire inside another's sweeps.
pub fn injection_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Fires a scheduled [`Fault::PanicTask`] for `task`, at most once.
///
/// Called by `ParallelSweep`'s fallible paths at each task boundary; a
/// no-op unless a plan is armed and schedules this index. The panic
/// message names the injection so it can never be mistaken for a real
/// defect.
pub fn maybe_panic_task(task: u64) {
    let should_fire = {
        let Ok(mut slot) = armed().lock() else { return };
        let Some(active) = slot.as_mut() else { return };
        let mut fire = false;
        for (fault, fired) in active.plan.faults.iter().zip(active.fired.iter_mut()) {
            if !*fired && *fault == (Fault::PanicTask { task }) {
                *fired = true;
                fire = true;
                break;
            }
        }
        fire
    };
    if should_fire {
        mhe_obs::count(mhe_obs::Counter::FaultInjected, 1);
        panic!("injected fault: worker panic in task {task}");
    }
}

/// Decides the fate of the next outgoing protocol frame.
///
/// Called by the wire layer before every frame write. Each call consumes
/// one index from the armed plan's process-wide frame counter; a
/// scheduled frame fault ([`Fault::DropFrame`] and friends) matching that
/// index fires at most once and increments the `fault_injected` counter.
/// With no plan armed this is one mutex lock and returns
/// [`FrameFate::Deliver`].
pub fn next_frame_fate() -> FrameFate {
    let fate = {
        let Ok(mut slot) = armed().lock() else { return FrameFate::Deliver };
        let Some(active) = slot.as_mut() else { return FrameFate::Deliver };
        let frame_idx = active.frames_seen;
        active.frames_seen += 1;
        let mut fate = FrameFate::Deliver;
        for (fault, fired) in active.plan.faults.iter().zip(active.fired.iter_mut()) {
            if *fired {
                continue;
            }
            let decided = match *fault {
                Fault::DropFrame { frame } if frame == frame_idx => Some(FrameFate::Drop),
                Fault::DupFrame { frame } if frame == frame_idx => Some(FrameFate::Duplicate),
                Fault::TruncFrame { frame } if frame == frame_idx => Some(FrameFate::Truncate),
                Fault::DelayFrame { frame, millis } if frame == frame_idx => {
                    Some(FrameFate::Delay(std::time::Duration::from_millis(millis)))
                }
                _ => None,
            };
            if let Some(f) = decided {
                *fired = true;
                fate = f;
                break;
            }
        }
        fate
    };
    if fate != FrameFate::Deliver {
        mhe_obs::count(mhe_obs::Counter::FaultInjected, 1);
    }
    fate
}

/// Per-adapter fault state: the plan's I/O faults with fired flags.
#[derive(Debug)]
struct IoFaults {
    faults: Vec<(Fault, bool)>,
    pos: u64,
}

impl IoFaults {
    fn new(plan: &FaultPlan) -> Self {
        let faults = plan
            .faults
            .iter()
            .filter(|f| {
                !matches!(
                    f,
                    Fault::PanicTask { .. }
                        | Fault::DropFrame { .. }
                        | Fault::DupFrame { .. }
                        | Fault::TruncFrame { .. }
                        | Fault::DelayFrame { .. }
                )
            })
            .map(|&f| (f, false))
            .collect();
        Self { faults, pos: 0 }
    }

    /// How many of `len` bytes a read at the current offset may return,
    /// honouring truncation (persistent EOF) and one-shot short reads.
    fn clamp_read(&mut self, len: usize) -> usize {
        let mut allowed = len as u64;
        let pos = self.pos;
        for (fault, fired) in &mut self.faults {
            match *fault {
                Fault::Truncate { at } => {
                    let cap = at.saturating_sub(pos);
                    if cap < allowed {
                        allowed = cap;
                        if !*fired {
                            *fired = true;
                            mhe_obs::count(mhe_obs::Counter::FaultInjected, 1);
                        }
                    }
                }
                Fault::ShortRead { at } if !*fired && pos < at && pos + allowed > at => {
                    allowed = at - pos;
                    *fired = true;
                    mhe_obs::count(mhe_obs::Counter::FaultInjected, 1);
                }
                _ => {}
            }
        }
        allowed as usize
    }

    /// Applies scheduled bit flips to the `n` bytes of `buf` that were
    /// just transferred at the pre-advance offset, then advances.
    fn corrupt_and_advance(&mut self, buf: &mut [u8], n: usize) {
        let start = self.pos;
        for (fault, fired) in &mut self.faults {
            if let Fault::BitFlip { byte, mask } = *fault {
                if !*fired && byte >= start && byte < start + n as u64 {
                    buf[(byte - start) as usize] ^= mask;
                    *fired = true;
                    mhe_obs::count(mhe_obs::Counter::FaultInjected, 1);
                }
            }
        }
        self.pos = start + n as u64;
    }
}

/// A [`Read`] adapter that injects a [`FaultPlan`]'s I/O faults at exact
/// byte offsets: bit flips corrupt the data in flight, truncation forces
/// early EOF, short reads under-fill the buffer once.
#[derive(Debug)]
pub struct FaultyReader<R: Read> {
    inner: R,
    state: IoFaults,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner`, injecting `plan`'s I/O faults (panic faults are
    /// ignored — they belong to the sweep engine).
    pub fn new(inner: R, plan: &FaultPlan) -> Self {
        Self { inner, state: IoFaults::new(plan) }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> IoResult<usize> {
        let allowed = self.state.clamp_read(buf.len());
        if allowed == 0 && !buf.is_empty() {
            return Ok(0); // injected EOF (truncation)
        }
        let n = self.inner.read(&mut buf[..allowed])?;
        self.state.corrupt_and_advance(buf, n);
        Ok(n)
    }
}

/// A [`Write`] adapter that injects a [`FaultPlan`]'s I/O faults: bit
/// flips corrupt outgoing bytes, truncation silently drops the tail (a
/// torn write), ENOSPC fails with [`ErrorKind::StorageFull`].
#[derive(Debug)]
pub struct FaultyWriter<W: Write> {
    inner: W,
    state: IoFaults,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner`, injecting `plan`'s I/O faults (panic faults are
    /// ignored — they belong to the sweep engine).
    pub fn new(inner: W, plan: &FaultPlan) -> Self {
        Self { inner, state: IoFaults::new(plan) }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> IoResult<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let pos = self.state.pos;
        // ENOSPC: a hard error at the boundary; the bytes before it land
        // as a partial write first, exactly as a real full disk behaves.
        let mut accept = buf.len() as u64;
        for (fault, fired) in &mut self.state.faults {
            if let Fault::Enospc { at } = *fault {
                if pos >= at {
                    *fired = true;
                    mhe_obs::count(mhe_obs::Counter::FaultInjected, 1);
                    return Err(std::io::Error::new(
                        ErrorKind::StorageFull,
                        format!("injected fault: ENOSPC at byte {at}"),
                    ));
                }
                accept = accept.min(at - pos);
            }
        }
        // Torn write: accepted bytes at/after the truncation offset are
        // reported written but never persisted, as when a process dies
        // mid-save.
        let mut keep = accept;
        for (fault, fired) in &mut self.state.faults {
            if let Fault::Truncate { at } = *fault {
                let cap = at.saturating_sub(pos);
                if cap < keep {
                    keep = cap;
                    if !*fired {
                        *fired = true;
                        mhe_obs::count(mhe_obs::Counter::FaultInjected, 1);
                    }
                }
            }
        }
        if keep > 0 {
            let mut chunk = buf[..keep as usize].to_vec();
            self.state.corrupt_and_advance(&mut chunk, keep as usize);
            self.inner.write_all(&chunk)?;
            self.state.pos = pos + accept;
        } else {
            self.state.pos = pos + accept;
        }
        Ok(accept as usize)
    }

    fn flush(&mut self) -> IoResult<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_syntax() {
        let plan = FaultPlan::parse("flip@100:0x01, truncate@512, short@64, enospc@4096, panic@3")
            .unwrap();
        assert_eq!(
            plan.faults(),
            &[
                Fault::BitFlip { byte: 100, mask: 0x01 },
                Fault::Truncate { at: 512 },
                Fault::ShortRead { at: 64 },
                Fault::Enospc { at: 4096 },
                Fault::PanicTask { task: 3 },
            ]
        );
        assert_eq!(FaultPlan::parse("flip@8:255").unwrap().faults().len(), 1);
        assert!(FaultPlan::parse("").is_none());
        assert!(FaultPlan::parse("panic@x").is_none());
        assert!(FaultPlan::parse("meteor@7").is_none());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..64 {
            assert_eq!(FaultPlan::seeded(seed, 1000), FaultPlan::seeded(seed, 1000));
        }
        // The generator covers every fault kind within a modest seed range.
        let kinds: std::collections::HashSet<u8> = (0..64)
            .map(|s| match FaultPlan::seeded(s, 1000).faults()[0] {
                Fault::BitFlip { .. } => 0,
                Fault::Truncate { .. } => 1,
                Fault::ShortRead { .. } => 2,
                Fault::Enospc { .. } => 3,
                Fault::PanicTask { .. } => 4,
                _ => u8::MAX,
            })
            .collect();
        assert_eq!(kinds.len(), 5);
        assert!(!kinds.contains(&u8::MAX), "seeded() must not emit frame faults");
    }

    #[test]
    fn reader_flips_exactly_the_scheduled_bit() {
        let data = vec![0u8; 32];
        let plan = FaultPlan::new(vec![Fault::BitFlip { byte: 17, mask: 0x40 }]);
        let mut out = Vec::new();
        FaultyReader::new(data.as_slice(), &plan).read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 32);
        for (i, b) in out.iter().enumerate() {
            assert_eq!(*b, if i == 17 { 0x40 } else { 0 }, "byte {i}");
        }
    }

    #[test]
    fn reader_truncates_at_the_scheduled_offset() {
        let data = vec![7u8; 100];
        let plan = FaultPlan::new(vec![Fault::Truncate { at: 40 }]);
        let mut out = Vec::new();
        FaultyReader::new(data.as_slice(), &plan).read_to_end(&mut out).unwrap();
        assert_eq!(out, vec![7u8; 40]);
    }

    #[test]
    fn reader_short_read_is_one_shot_and_lossless() {
        let data: Vec<u8> = (0..100u8).collect();
        let plan = FaultPlan::new(vec![Fault::ShortRead { at: 33 }]);
        let mut r = FaultyReader::new(data.as_slice(), &plan);
        let mut buf = [0u8; 64];
        let n = r.read(&mut buf).unwrap();
        assert_eq!(n, 33, "first read crossing the offset is shortened");
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!([&buf[..n], &rest[..]].concat(), data, "no data is lost");
    }

    #[test]
    fn writer_fails_with_storage_full_at_the_scheduled_offset() {
        let plan = FaultPlan::new(vec![Fault::Enospc { at: 10 }]);
        let mut w = FaultyWriter::new(Vec::new(), &plan);
        assert_eq!(w.write(&[0u8; 8]).unwrap(), 8);
        // The next write crosses byte 10: the first 2 bytes land, then
        // the following attempt is full.
        let err = w.write_all(&[0u8; 8]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::StorageFull);
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(w.into_inner().len(), 10);
    }

    #[test]
    fn writer_torn_write_drops_the_tail_silently() {
        let plan = FaultPlan::new(vec![Fault::Truncate { at: 6 }]);
        let mut w = FaultyWriter::new(Vec::new(), &plan);
        w.write_all(&[1u8; 4]).unwrap();
        w.write_all(&[2u8; 4]).unwrap();
        w.write_all(&[3u8; 4]).unwrap();
        assert_eq!(w.into_inner(), vec![1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn writer_flips_outgoing_bytes() {
        let plan = FaultPlan::new(vec![Fault::BitFlip { byte: 5, mask: 0xFF }]);
        let mut w = FaultyWriter::new(Vec::new(), &plan);
        w.write_all(&[0u8; 10]).unwrap();
        let out = w.into_inner();
        assert_eq!(out[5], 0xFF);
        assert_eq!(out.iter().filter(|&&b| b != 0).count(), 1);
    }

    #[test]
    fn panic_faults_do_not_touch_io_adapters() {
        let plan = FaultPlan::new(vec![Fault::PanicTask { task: 0 }]);
        let data = vec![9u8; 16];
        let mut out = Vec::new();
        FaultyReader::new(data.as_slice(), &plan).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn parse_accepts_the_frame_fault_syntax() {
        let plan = FaultPlan::parse("drop@2, dup@0, trunc@7, delay@3:25").unwrap();
        assert_eq!(
            plan.faults(),
            &[
                Fault::DropFrame { frame: 2 },
                Fault::DupFrame { frame: 0 },
                Fault::TruncFrame { frame: 7 },
                Fault::DelayFrame { frame: 3, millis: 25 },
            ]
        );
        assert!(FaultPlan::parse("delay@3").is_none(), "delay requires :MILLIS");
        assert!(FaultPlan::parse("drop@x").is_none());
        assert!(FaultPlan::parse("trunc@").is_none());
    }

    #[test]
    fn seeded_net_plans_are_deterministic_and_cover_every_frame_fault() {
        for seed in 0..64 {
            assert_eq!(FaultPlan::seeded_net(seed, 100), FaultPlan::seeded_net(seed, 100));
        }
        let kinds: std::collections::HashSet<u8> = (0..64)
            .map(|s| match FaultPlan::seeded_net(s, 100).faults()[0] {
                Fault::DropFrame { .. } => 0,
                Fault::DupFrame { .. } => 1,
                Fault::TruncFrame { .. } => 2,
                Fault::DelayFrame { .. } => 3,
                _ => u8::MAX,
            })
            .collect();
        assert_eq!(kinds.len(), 4);
        assert!(!kinds.contains(&u8::MAX), "seeded_net() emits only frame faults");
    }

    #[test]
    fn frame_faults_do_not_touch_io_adapters() {
        let plan = FaultPlan::new(vec![
            Fault::DropFrame { frame: 0 },
            Fault::TruncFrame { frame: 0 },
            Fault::DupFrame { frame: 0 },
            Fault::DelayFrame { frame: 0, millis: 1 },
        ]);
        let data = vec![9u8; 16];
        let mut out = Vec::new();
        FaultyReader::new(data.as_slice(), &plan).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        let mut w = FaultyWriter::new(Vec::new(), &plan);
        w.write_all(&data).unwrap();
        assert_eq!(w.into_inner(), data);
    }

    #[test]
    fn next_frame_fate_fires_each_scheduled_fault_once() {
        let _lock = injection_lock();
        let _guard = arm(FaultPlan::new(vec![
            Fault::DropFrame { frame: 1 },
            Fault::DelayFrame { frame: 3, millis: 25 },
        ]));
        assert_eq!(next_frame_fate(), FrameFate::Deliver); // frame 0
        assert_eq!(next_frame_fate(), FrameFate::Drop); // frame 1
        assert_eq!(next_frame_fate(), FrameFate::Deliver); // frame 2
        assert_eq!(next_frame_fate(), FrameFate::Delay(std::time::Duration::from_millis(25))); // frame 3
        assert_eq!(next_frame_fate(), FrameFate::Deliver); // frame 4
    }

    #[test]
    fn next_frame_fate_is_deliver_without_an_armed_plan() {
        let _lock = injection_lock();
        for _ in 0..4 {
            assert_eq!(next_frame_fate(), FrameFate::Deliver);
        }
    }
}
