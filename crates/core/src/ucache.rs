//! Unified-cache miss estimation under dilation (§4.3.2).
//!
//! A unified cache mixes an *undilated* data component with a *dilated*
//! instruction component, so the instruction-cache line-contraction trick
//! cannot be applied to the measured misses directly. Instead the paper
//! extrapolates: the unique-line count under dilation is approximated as
//! `u(L, d) ≈ uD(L) + uI(L/d)` (Eq. preceding 4.13), the collision counts
//! with and without dilation follow from Eqs. 4.13/4.14, and measured
//! misses scale by their ratio (Eq. 4.15).

use mhe_cache::CacheConfig;
use mhe_model::ahh::{collisions, unique_lines, UniqueLineModel};
use mhe_model::params::UnifiedParams;

/// Modeled unique lines per granule of the unified trace with the
/// instruction component dilated by `d`: `u(L, d) = uD(L) + uI(L/d)`.
///
/// # Panics
///
/// Panics if `d <= 0`.
pub fn unified_unique_lines(
    params: &UnifiedParams,
    line_words: f64,
    d: f64,
    model: UniqueLineModel,
) -> f64 {
    assert!(d > 0.0, "dilation must be positive, got {d}");
    let u_data = unique_lines(&params.data, line_words, model);
    let u_inst = unique_lines(&params.inst, line_words / d, model);
    u_data + u_inst
}

/// Estimates `M(UC(S,A,L), Pref, d)` from the misses measured on the
/// undilated reference trace (Eq. 4.15):
///
/// `M(UC, Pref, d) = Coll(TP_ref,d, UC) / Coll(TP_ref, UC) · M(UC)`.
///
/// # Panics
///
/// Panics if `d <= 0`.
pub fn estimate_ucache_misses(
    params: &UnifiedParams,
    measured_misses: u64,
    cache: CacheConfig,
    d: f64,
    model: UniqueLineModel,
) -> f64 {
    let l = f64::from(cache.line_words);
    let u_base = unified_unique_lines(params, l, 1.0, model);
    let u_dilated = unified_unique_lines(params, l, d, model);
    let coll_base = collisions(u_base, cache.sets, cache.assoc);
    let coll_dilated = collisions(u_dilated, cache.sets, cache.assoc);
    if coll_base < 1e-6 * u_base.max(1.0) {
        // The model sees essentially no steady-state collisions; the ratio
        // of two vanishing quantities is meaningless, and the only honest
        // extrapolation is "unchanged".
        return measured_misses as f64;
    }
    measured_misses as f64 * coll_dilated / coll_base
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhe_model::params::TraceParams;

    fn params() -> UnifiedParams {
        UnifiedParams {
            inst: TraceParams { u1: 30_000.0, p1: 0.05, lav: 20.0 },
            data: TraceParams { u1: 12_000.0, p1: 0.5, lav: 4.0 },
        }
    }

    #[test]
    fn unit_dilation_is_identity() {
        let cfg = CacheConfig::from_bytes(16 * 1024, 2, 64);
        let est = estimate_ucache_misses(&params(), 7000, cfg, 1.0, UniqueLineModel::RunBased);
        assert!((est - 7000.0).abs() < 1e-6);
    }

    #[test]
    fn estimates_increase_with_dilation() {
        let cfg = CacheConfig::from_bytes(16 * 1024, 2, 64);
        let mut prev = 0.0;
        for d in [1.0, 1.4, 2.0, 2.8, 3.5] {
            let est = estimate_ucache_misses(&params(), 7000, cfg, d, UniqueLineModel::RunBased);
            assert!(est >= prev, "d={d}: {est} < {prev}");
            prev = est;
        }
    }

    #[test]
    fn unified_unique_lines_decomposes() {
        let p = params();
        let l = 16.0;
        let u = unified_unique_lines(&p, l, 2.0, UniqueLineModel::RunBased);
        let ud = unique_lines(&p.data, l, UniqueLineModel::RunBased);
        let ui = unique_lines(&p.inst, l / 2.0, UniqueLineModel::RunBased);
        assert!((u - (ud + ui)).abs() < 1e-9);
    }

    #[test]
    fn only_instruction_component_responds_to_dilation() {
        let p = params();
        let l = 16.0;
        let u1 = unified_unique_lines(&p, l, 1.0, UniqueLineModel::RunBased);
        let u2 = unified_unique_lines(&p, l, 2.0, UniqueLineModel::RunBased);
        let delta = u2 - u1;
        let ui_delta = unique_lines(&p.inst, l / 2.0, UniqueLineModel::RunBased)
            - unique_lines(&p.inst, l, UniqueLineModel::RunBased);
        assert!((delta - ui_delta).abs() < 1e-9);
    }

    #[test]
    fn zero_collision_base_returns_measured() {
        // A huge cache relative to the working set: model collisions ~ 0.
        let tiny = UnifiedParams {
            inst: TraceParams { u1: 10.0, p1: 0.5, lav: 4.0 },
            data: TraceParams { u1: 10.0, p1: 0.5, lav: 4.0 },
        };
        let cfg = CacheConfig::from_bytes(1 << 20, 8, 64);
        let est = estimate_ucache_misses(&tiny, 123, cfg, 3.0, UniqueLineModel::RunBased);
        assert!((est - 123.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "dilation must be positive")]
    fn nonpositive_dilation_panics() {
        let cfg = CacheConfig::from_bytes(16 * 1024, 2, 64);
        let _ = estimate_ucache_misses(&params(), 1, cfg, 0.0, UniqueLineModel::RunBased);
    }
}
