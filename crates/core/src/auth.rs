//! Shared-token authentication for the daemon and fleet ports.
//!
//! The trust model is deliberately small: every process that may speak on
//! a port knows one shared secret (`--auth-token` / `MHE_AUTH_TOKEN`).
//! The listener sends a fresh random [`Nonce`] as a challenge; the dialer
//! answers with `HMAC-SHA256(token, nonce)`. The token itself never
//! crosses the wire, replaying a captured proof fails against the next
//! nonce, and verification uses a constant-time comparison so timing does
//! not leak how many proof bytes matched.
//!
//! Everything here is self-contained — SHA-256 (FIPS 180-4) and HMAC
//! (RFC 2104) are implemented directly so the workspace stays
//! dependency-free. Throughput is irrelevant: the daemon hashes two
//! 64-byte blocks per connection, not per request.

use std::sync::atomic::{AtomicU64, Ordering};

/// The challenge a listener sends: 16 random bytes, fresh per connection.
pub type Nonce = [u8; 16];

/// The proof a dialer answers with: `HMAC-SHA256(token, nonce)`.
pub type Proof = [u8; 32];

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 over byte slices.
#[derive(Debug, Clone)]
struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total: u64,
}

impl Sha256 {
    fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total: 0,
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = data.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 64 {
                // All input fit in the partial block; falling through
                // would clobber `buf_len` with the empty remainder.
                return;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            let mut block = [0u8; 64];
            block.copy_from_slice(chunk);
            self.compress(&block);
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    fn finish(mut self) -> [u8; 32] {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// SHA-256 of `data` (FIPS 180-4).
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// `HMAC-SHA256(key, message)` (RFC 2104).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut block = [0u8; 64];
    if key.len() > 64 {
        block[..32].copy_from_slice(&sha256(key));
    } else {
        block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_hash = inner.finish();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_hash);
    outer.finish()
}

/// Constant-time equality: the comparison touches every byte regardless
/// of where the first mismatch is, so timing does not reveal a prefix.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

/// The proof a dialer sends for a listener's challenge.
pub fn proof(token: &str, nonce: &Nonce) -> Proof {
    hmac_sha256(token.as_bytes(), nonce)
}

/// Verifies a dialer's proof against the listener's token and the nonce
/// it issued, in constant time.
pub fn verify(token: &str, nonce: &Nonce, presented: &Proof) -> bool {
    constant_time_eq(&proof(token, nonce), presented)
}

/// A fresh challenge nonce: unpredictable enough to defeat replay.
///
/// There is no OS RNG dependency in the workspace, so entropy comes from
/// hashing sources an off-box attacker cannot observe: the monotonic and
/// wall clocks at nanosecond resolution, the process id, ASLR-randomized
/// addresses, and a process-global counter (which alone already
/// guarantees per-process uniqueness).
pub fn fresh_nonce() -> Nonce {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut seed = Vec::with_capacity(64);
    seed.extend_from_slice(&COUNTER.fetch_add(1, Ordering::Relaxed).to_le_bytes());
    seed.extend_from_slice(&std::process::id().to_le_bytes());
    if let Ok(t) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        seed.extend_from_slice(&t.as_nanos().to_le_bytes());
    }
    let stack_probe = 0u8;
    seed.extend_from_slice(&((&stack_probe as *const u8) as usize).to_le_bytes());
    seed.extend_from_slice(&((fresh_nonce as fn() -> Nonce) as usize).to_le_bytes());
    let digest = sha256(&seed);
    let mut nonce = [0u8; 16];
    nonce.copy_from_slice(&digest[..16]);
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        // FIPS 180-4 / NIST example vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A million 'a's: exercises multi-block streaming.
        let mut h = Sha256::new();
        for _ in 0..1_000 {
            h.update(&[b'a'; 1_000]);
        }
        assert_eq!(
            hex(&h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hmac_matches_rfc4231_vectors() {
        // RFC 4231 test case 1.
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // RFC 4231 test case 2 ("Jefe").
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // RFC 4231 test case 6: key longer than one block.
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn proof_verifies_only_with_the_right_token() {
        let nonce = fresh_nonce();
        let p = proof("sesame", &nonce);
        assert!(verify("sesame", &nonce, &p));
        assert!(!verify("seesaw", &nonce, &p));
        let other_nonce = fresh_nonce();
        assert_ne!(nonce, other_nonce, "nonces must differ per challenge");
        assert!(!verify("sesame", &other_nonce, &p), "replay against a new nonce fails");
    }

    #[test]
    fn constant_time_eq_handles_lengths_and_content() {
        assert!(constant_time_eq(b"", b""));
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
    }
}
