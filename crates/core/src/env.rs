//! The workspace's environment knobs, each parsed in exactly one place.
//!
//! Three variables steer every binary in the workspace; this module is
//! their single documented home, with typed accessors that parse each
//! variable once per process and cache the result:
//!
//! | Variable         | Accessor            | Meaning |
//! |------------------|---------------------|---------|
//! | `MHE_THREADS`    | [`threads`]         | Worker-thread count for every parallel fan-out (`>= 1`; unset/invalid → available parallelism). Results are bit-identical for every value. |
//! | `MHE_EVENTS`     | [`events_or`]       | Dynamic window (basic-block events) for bench/demo binaries; each binary supplies its own default. |
//! | `MHE_OBS`        | [`obs`]             | Observability sink: `json`, `text`/`1`/`on`/`true`, anything else off. Parsed by `mhe-obs`, surfaced here for discoverability. |
//! | `MHE_RETRIES`    | [`retry_policy`]    | Bounded retries for panicked sweep tasks: `N` or `N:backoff_ms` (e.g. `3:10`). Unset → no retries. |
//! | `MHE_FAULT_PLAN` | [`crate::fault::FaultPlan::from_env`] | Deterministic fault-injection schedule for tests (see [`crate::fault`]). Unset → no injection. |
//! | `MHE_SERVER_INFLIGHT` | [`server_inflight_or`] | Daemon admission control: evaluation requests allowed to run concurrently (`>= 1`). Each binary supplies its own default. |
//! | `MHE_SERVER_QUEUE` | [`server_queue_or`] | Daemon backpressure: requests allowed to wait for an in-flight slot before new arrivals are rejected (`0` allowed). |
//! | `MHE_SESSION_TTL` | [`session_ttl`]   | Daemon warm-session time-to-live in seconds (`0` = evict on next touch). Unset → sessions never expire by age. |
//! | `MHE_MAX_SESSIONS` | [`max_sessions`] | Daemon warm-session count bound (`>= 1`); least-recently-used sessions beyond it are evicted. Unset → unbounded. |
//! | `MHE_AUTH_TOKEN` | [`auth_token`]     | Shared secret for daemon/fleet authentication (see `mhe_core::auth`). Unset → ports accept unauthenticated peers. |
//!
//! None of these variables affects any measured or estimated miss count —
//! they steer *how* the work runs (parallelism, workload size, reporting,
//! fault recovery), never what it computes.

use std::sync::OnceLock;
use std::time::Duration;

/// How a parallel sweep retries a task whose worker panicked.
///
/// Retries apply only to *panics* (which are how injected/transient faults
/// surface), never to typed `MheError`s — those are deterministic domain
/// failures that would fail identically on every attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per task, including the first (`>= 1`).
    pub max_attempts: u32,
    /// Sleep between attempts.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// No retries: one attempt, no backoff. The default everywhere.
    pub const NONE: RetryPolicy = RetryPolicy { max_attempts: 1, backoff: Duration::ZERO };

    /// Parses the `MHE_RETRIES` syntax: `N` (extra attempts with no
    /// backoff) or `N:backoff_ms`. Returns `None` for empty/invalid text.
    fn parse(text: &str) -> Option<RetryPolicy> {
        let (n, backoff_ms) = match text.split_once(':') {
            Some((n, ms)) => (n, ms.trim().parse::<u64>().ok()?),
            None => (text, 0),
        };
        let retries = n.trim().parse::<u32>().ok()?;
        Some(RetryPolicy {
            max_attempts: retries.saturating_add(1),
            backoff: Duration::from_millis(backoff_ms),
        })
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::NONE
    }
}

/// The retry policy selected by `MHE_RETRIES`, or [`RetryPolicy::NONE`]
/// when unset or invalid. Parsed once per process.
///
/// `MHE_RETRIES=N` grants each panicked task `N` retries (so `N + 1`
/// total attempts); `MHE_RETRIES=N:B` additionally sleeps `B`
/// milliseconds between attempts.
pub fn retry_policy() -> RetryPolicy {
    static RETRIES: OnceLock<RetryPolicy> = OnceLock::new();
    *RETRIES.get_or_init(|| {
        std::env::var("MHE_RETRIES")
            .ok()
            .and_then(|v| RetryPolicy::parse(&v))
            .unwrap_or(RetryPolicy::NONE)
    })
}

/// Worker-thread count from `MHE_THREADS`, or `None` when unset or not a
/// positive integer. Parsed once per process.
///
/// Most callers want [`crate::parallel::worker_threads`], which falls
/// back to the machine's available parallelism.
pub fn threads() -> Option<usize> {
    static THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("MHE_THREADS").ok().and_then(|v| v.parse::<usize>().ok()).filter(|&n| n >= 1)
    })
}

/// Dynamic-window size (basic-block events) from `MHE_EVENTS`, or
/// `default` when unset or not a positive integer. Parsed once per
/// process; the first caller's view of the variable wins.
pub fn events_or(default: usize) -> usize {
    static EVENTS: OnceLock<Option<usize>> = OnceLock::new();
    EVENTS
        .get_or_init(|| {
            std::env::var("MHE_EVENTS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
        })
        .unwrap_or(default)
}

/// The observability level selected by `MHE_OBS` (or a prior
/// [`mhe_obs::set_level`] override). Delegates to [`mhe_obs::level`],
/// which owns the parse.
pub fn obs() -> mhe_obs::ObsLevel {
    mhe_obs::level()
}

/// Daemon admission control from `MHE_SERVER_INFLIGHT` — how many
/// evaluation requests may run concurrently — or `default` when unset or
/// not a positive integer. Parsed once per process.
pub fn server_inflight_or(default: usize) -> usize {
    static INFLIGHT: OnceLock<Option<usize>> = OnceLock::new();
    INFLIGHT
        .get_or_init(|| {
            std::env::var("MHE_SERVER_INFLIGHT")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
        })
        .unwrap_or(default)
}

/// Daemon backpressure from `MHE_SERVER_QUEUE` — how many requests may
/// wait for an in-flight slot before new arrivals are rejected — or
/// `default` when unset or not a non-negative integer. Parsed once per
/// process (`0` is valid: reject as soon as all in-flight slots are
/// taken).
pub fn server_queue_or(default: usize) -> usize {
    static QUEUE: OnceLock<Option<usize>> = OnceLock::new();
    QUEUE
        .get_or_init(|| {
            std::env::var("MHE_SERVER_QUEUE").ok().and_then(|v| v.parse::<usize>().ok())
        })
        .unwrap_or(default)
}

/// Warm-session time-to-live from `MHE_SESSION_TTL` (whole seconds), or
/// `None` when unset or not a non-negative integer. Parsed once per
/// process. `0` is valid and means "evict on the next touch".
pub fn session_ttl() -> Option<Duration> {
    static TTL: OnceLock<Option<Duration>> = OnceLock::new();
    *TTL.get_or_init(|| {
        std::env::var("MHE_SESSION_TTL")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_secs)
    })
}

/// Warm-session count bound from `MHE_MAX_SESSIONS`, or `None` when unset
/// or not a positive integer. Parsed once per process.
pub fn max_sessions() -> Option<usize> {
    static MAX: OnceLock<Option<usize>> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::env::var("MHE_MAX_SESSIONS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// The shared authentication token from `MHE_AUTH_TOKEN`, or `None` when
/// unset or empty. Parsed once per process. When set, daemon and fleet
/// ports require the HMAC handshake of [`crate::auth`]; flags
/// (`--auth-token`) override this per process.
pub fn auth_token() -> Option<&'static str> {
    static TOKEN: OnceLock<Option<String>> = OnceLock::new();
    TOKEN.get_or_init(|| std::env::var("MHE_AUTH_TOKEN").ok().filter(|t| !t.is_empty())).as_deref()
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests only exercise the cached accessors against whatever the
    // harness environment holds; setting the variables here would race
    // sibling tests, and the parse rules themselves are covered by
    // `ObsLevel::parse` and the integration binaries.

    #[test]
    fn threads_is_stable_across_calls() {
        assert_eq!(threads(), threads());
        if let Some(n) = threads() {
            assert!(n >= 1);
        }
    }

    #[test]
    fn events_or_falls_back_to_default() {
        let a = events_or(12_345);
        assert!(a >= 1);
        // Cached: a second call with any default yields the same source.
        assert_eq!(events_or(12_345), a);
    }

    #[test]
    fn obs_matches_the_obs_crate() {
        assert_eq!(obs(), mhe_obs::level());
    }

    #[test]
    fn retry_policy_parse_rules() {
        assert_eq!(
            RetryPolicy::parse("3"),
            Some(RetryPolicy { max_attempts: 4, backoff: Duration::ZERO })
        );
        assert_eq!(
            RetryPolicy::parse("2:15"),
            Some(RetryPolicy { max_attempts: 3, backoff: Duration::from_millis(15) })
        );
        assert_eq!(
            RetryPolicy::parse("0"),
            Some(RetryPolicy { max_attempts: 1, backoff: Duration::ZERO })
        );
        assert_eq!(RetryPolicy::parse(""), None);
        assert_eq!(RetryPolicy::parse("nope"), None);
        assert_eq!(RetryPolicy::parse("3:x"), None);
        assert_eq!(RetryPolicy::default(), RetryPolicy::NONE);
    }

    #[test]
    fn retry_policy_is_stable_across_calls() {
        assert_eq!(retry_policy(), retry_policy());
        assert!(retry_policy().max_attempts >= 1);
    }

    #[test]
    fn server_knobs_fall_back_to_their_defaults() {
        let inflight = server_inflight_or(4);
        assert!(inflight >= 1);
        assert_eq!(server_inflight_or(4), inflight);
        let queue = server_queue_or(64);
        assert_eq!(server_queue_or(64), queue);
    }

    #[test]
    fn session_and_auth_knobs_are_stable_across_calls() {
        assert_eq!(session_ttl(), session_ttl());
        assert_eq!(max_sessions(), max_sessions());
        if let Some(n) = max_sessions() {
            assert!(n >= 1);
        }
        assert_eq!(auth_token(), auth_token());
        if let Some(t) = auth_token() {
            assert!(!t.is_empty());
        }
    }
}
