//! The workspace's environment knobs, each parsed in exactly one place.
//!
//! Three variables steer every binary in the workspace; this module is
//! their single documented home, with typed accessors that parse each
//! variable once per process and cache the result:
//!
//! | Variable      | Accessor            | Meaning |
//! |---------------|---------------------|---------|
//! | `MHE_THREADS` | [`threads`]         | Worker-thread count for every parallel fan-out (`>= 1`; unset/invalid → available parallelism). Results are bit-identical for every value. |
//! | `MHE_EVENTS`  | [`events_or`]       | Dynamic window (basic-block events) for bench/demo binaries; each binary supplies its own default. |
//! | `MHE_OBS`     | [`obs`]             | Observability sink: `json`, `text`/`1`/`on`/`true`, anything else off. Parsed by `mhe-obs`, surfaced here for discoverability. |
//!
//! None of these variables affects any measured or estimated miss count —
//! they steer *how* the work runs (parallelism, workload size, reporting),
//! never what it computes.

use std::sync::OnceLock;

/// Worker-thread count from `MHE_THREADS`, or `None` when unset or not a
/// positive integer. Parsed once per process.
///
/// Most callers want [`crate::parallel::worker_threads`], which falls
/// back to the machine's available parallelism.
pub fn threads() -> Option<usize> {
    static THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("MHE_THREADS").ok().and_then(|v| v.parse::<usize>().ok()).filter(|&n| n >= 1)
    })
}

/// Dynamic-window size (basic-block events) from `MHE_EVENTS`, or
/// `default` when unset or not a positive integer. Parsed once per
/// process; the first caller's view of the variable wins.
pub fn events_or(default: usize) -> usize {
    static EVENTS: OnceLock<Option<usize>> = OnceLock::new();
    EVENTS
        .get_or_init(|| {
            std::env::var("MHE_EVENTS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
        })
        .unwrap_or(default)
}

/// The observability level selected by `MHE_OBS` (or a prior
/// [`mhe_obs::set_level`] override). Delegates to [`mhe_obs::level`],
/// which owns the parse.
pub fn obs() -> mhe_obs::ObsLevel {
    mhe_obs::level()
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests only exercise the cached accessors against whatever the
    // harness environment holds; setting the variables here would race
    // sibling tests, and the parse rules themselves are covered by
    // `ObsLevel::parse` and the integration binaries.

    #[test]
    fn threads_is_stable_across_calls() {
        assert_eq!(threads(), threads());
        if let Some(n) = threads() {
            assert!(n >= 1);
        }
    }

    #[test]
    fn events_or_falls_back_to_default() {
        let a = events_or(12_345);
        assert!(a >= 1);
        // Cached: a second call with any default yields the same source.
        assert_eq!(events_or(12_345), a);
    }

    #[test]
    fn obs_matches_the_obs_crate() {
        assert_eq!(obs(), mhe_obs::level());
    }
}
