//! Hierarchical system-level evaluation: processor cycles + cache stalls.
//!
//! The paper's evaluator combines independently-obtained subsystem metrics:
//! "The overall execution time consists of the processor cycles and the
//! stall cycles from each of the caches." Processor cycles come from
//! schedule lengths weighted by dynamic execution (no trace simulation);
//! cache stalls come either from the dilation model (fast path, used during
//! design-space exploration) or from simulation (validation path).

use crate::error::MheError;
use crate::evaluator::ReferenceEvaluation;
use mhe_cache::{MemoryDesign, Penalties};
use mhe_vliw::compile::Compiled;
use mhe_vliw::Mdes;
use mhe_workload::exec::Executor;
use mhe_workload::ir::Program;

/// One complete system design point.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemDesign {
    /// The VLIW processor.
    pub processor: Mdes,
    /// The memory hierarchy.
    pub memory: MemoryDesign,
}

/// Evaluated performance of a system design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemPerformance {
    /// Compute cycles (schedule lengths over the dynamic window).
    pub processor_cycles: u64,
    /// Estimated instruction-cache misses.
    pub icache_misses: f64,
    /// Estimated data-cache misses.
    pub dcache_misses: f64,
    /// Estimated unified-cache misses.
    pub ucache_misses: f64,
    /// Total estimated execution cycles.
    pub total_cycles: f64,
}

impl SystemPerformance {
    /// Stall cycles implied by the miss counts and `penalties`.
    pub fn stall_cycles(&self, penalties: Penalties) -> f64 {
        (self.icache_misses + self.dcache_misses) * penalties.l1_miss as f64
            + self.ucache_misses * penalties.l2_miss as f64
    }
}

/// Dynamic processor cycles: schedule lengths summed over the executed
/// block window (no cache effects).
///
/// # Examples
///
/// ```
/// use mhe_core::system::processor_cycles;
/// use mhe_vliw::{compile::Compiled, mdes::ProcessorKind};
/// use mhe_workload::Benchmark;
/// let program = Benchmark::Unepic.generate();
/// let narrow = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
/// let wide = Compiled::build(&program, &ProcessorKind::P6332.mdes(), None);
/// let events = 10_000;
/// assert!(processor_cycles(&program, &wide, 1, events)
///     < processor_cycles(&program, &narrow, 1, events));
/// ```
pub fn processor_cycles(program: &Program, compiled: &Compiled, seed: u64, events: usize) -> u64 {
    Executor::new(program, seed)
        .take(events)
        .map(|ev| u64::from(compiled.sched.block(ev.proc, ev.block).len_cycles()))
        .sum()
}

/// Evaluates a complete system design using the dilation model — the fast
/// path the spacewalker calls per design point. The only per-design work is
/// compiling for the target processor (for its cycles and dilation);
/// all cache numbers are produced analytically from the reference
/// evaluation.
///
/// # Errors
///
/// Returns [`MheError::MissingSimulation`] if any cache configuration is
/// outside the evaluated space.
pub fn evaluate_system(
    eval: &ReferenceEvaluation,
    design: &SystemDesign,
    penalties: Penalties,
) -> Result<SystemPerformance, MheError> {
    let program = eval.program();
    let cfg = eval.config();
    let target = eval.compile_target(&design.processor);
    let d = target.text_words() as f64 / eval.reference().text_words() as f64;
    let processor = processor_cycles(program, &target, cfg.seed, cfg.events);
    let icache = eval.estimate_icache_misses(design.memory.icache, d)?;
    let dcache = eval.dcache_misses(design.memory.dcache)? as f64;
    let ucache = eval.estimate_ucache_misses(design.memory.ucache, d)?;
    let perf = SystemPerformance {
        processor_cycles: processor,
        icache_misses: icache,
        dcache_misses: dcache,
        ucache_misses: ucache,
        total_cycles: processor as f64
            + (icache + dcache) * penalties.l1_miss as f64
            + ucache * penalties.l2_miss as f64,
    };
    Ok(perf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::EvalConfig;
    use mhe_cache::CacheConfig;
    use mhe_vliw::mdes::ProcessorKind;
    use mhe_workload::Benchmark;

    fn eval() -> ReferenceEvaluation {
        ReferenceEvaluation::for_benchmark(
            Benchmark::Unepic,
            &ProcessorKind::P1111.mdes(),
            EvalConfig { events: 50_000, ..EvalConfig::default() },
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(1024, 1, 32)],
            &[CacheConfig::from_bytes(16 * 1024, 2, 64)],
        )
    }

    fn design(kind: ProcessorKind) -> SystemDesign {
        SystemDesign {
            processor: kind.mdes(),
            memory: MemoryDesign {
                icache: CacheConfig::from_bytes(1024, 1, 32),
                dcache: CacheConfig::from_bytes(1024, 1, 32),
                ucache: CacheConfig::from_bytes(16 * 1024, 2, 64),
            },
        }
    }

    #[test]
    fn wider_processor_fewer_compute_cycles_more_icache_misses() {
        let e = eval();
        let narrow =
            evaluate_system(&e, &design(ProcessorKind::P1111), Penalties::default()).unwrap();
        let wide =
            evaluate_system(&e, &design(ProcessorKind::P6332), Penalties::default()).unwrap();
        assert!(wide.processor_cycles < narrow.processor_cycles);
        assert!(wide.icache_misses > narrow.icache_misses);
        assert!(wide.ucache_misses >= narrow.ucache_misses);
        // Data misses are dilation-independent by assumption (Eq. 4.1).
        assert!((wide.dcache_misses - narrow.dcache_misses).abs() < 1e-9);
    }

    #[test]
    fn total_cycles_decompose() {
        let e = eval();
        let p = Penalties::default();
        let perf = evaluate_system(&e, &design(ProcessorKind::P2111), p).unwrap();
        let expect = perf.processor_cycles as f64 + perf.stall_cycles(p);
        assert!((perf.total_cycles - expect).abs() < 1e-6);
    }

    #[test]
    fn bad_cache_config_is_error() {
        let e = eval();
        let mut d = design(ProcessorKind::P2111);
        d.memory.ucache = CacheConfig::from_bytes(64 * 1024, 4, 64);
        assert!(evaluate_system(&e, &d, Penalties::default()).is_err());
    }
}
