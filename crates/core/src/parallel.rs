//! Deterministic fan-out of independent evaluation work across threads.
//!
//! The paper's efficiency story is throughput: hierarchical evaluation
//! plus single-pass simulation already collapse the *number* of
//! simulations, and this module makes the remaining independent passes run
//! concurrently. Two invariants keep parallelism invisible to results:
//!
//! * work items are independent (no shared mutable state), and
//! * results are returned in **input order**, so every consumer sees
//!   exactly the sequence a serial loop would have produced.
//!
//! Together these make the engine bit-deterministic: miss counts and
//! estimates are identical for any worker count, including one.
//!
//! Thread-count control: [`worker_threads`] honours the `MHE_THREADS`
//! environment variable and falls back to the machine's available
//! parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default worker count: `MHE_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism. The variable is parsed
/// once, in [`crate::env::threads`].
pub fn worker_threads() -> usize {
    match crate::env::threads() {
        Some(n) => n,
        None => std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1),
    }
}

/// Wall-clock accounting for one [`ParallelSweep`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepMetrics {
    /// Number of work items processed.
    pub jobs: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall time of the whole fan-out.
    pub wall: Duration,
}

impl SweepMetrics {
    /// Completed jobs per wall-clock second.
    pub fn jobs_per_second(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.jobs as f64 / self.wall.as_secs_f64()
        }
    }
}

impl std::fmt::Display for SweepMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} jobs on {} threads in {:.3}s ({:.2} jobs/s)",
            self.jobs,
            self.threads,
            self.wall.as_secs_f64(),
            self.jobs_per_second()
        )
    }
}

/// A scoped-thread worker pool over independent work items.
///
/// # Examples
///
/// ```
/// use mhe_core::parallel::ParallelSweep;
/// let squares = ParallelSweep::with_threads(4).map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParallelSweep {
    threads: usize,
}

impl Default for ParallelSweep {
    fn default() -> Self {
        Self::new()
    }
}

impl ParallelSweep {
    /// A sweep using [`worker_threads`] workers.
    pub fn new() -> Self {
        Self { threads: worker_threads() }
    }

    /// A sweep with an explicit worker count (`0` means [`worker_threads`]).
    pub fn with_threads(threads: usize) -> Self {
        if threads == 0 {
            Self::new()
        } else {
            Self { threads }
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, concurrently, returning results in input
    /// order.
    ///
    /// Work is claimed dynamically (an atomic cursor), so uneven item costs
    /// balance across workers; a panicking item propagates the panic to the
    /// caller once the scope joins.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.map_in(None, items, f)
    }

    /// Like [`ParallelSweep::map`], attributing the fan-out to an
    /// observability phase: the round's wall time plus each worker's busy
    /// time are recorded, so a [`mhe_obs::RunReport`] can derive the
    /// phase's parallel efficiency. With observability off (the default)
    /// this costs one relaxed atomic load over `map`.
    pub fn map_in<T, R, F>(&self, phase: Option<mhe_obs::Phase>, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let probe = phase.filter(|_| mhe_obs::enabled());
        let _wall = probe.map(mhe_obs::wall_span);
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let busy_start = probe.map(|_| Instant::now());
            let out: Vec<R> = items.into_iter().map(f).collect();
            if let (Some(p), Some(start)) = (probe, busy_start) {
                mhe_obs::add_busy(p, start.elapsed());
            }
            return out;
        }
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut busy = Duration::ZERO;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i].lock().unwrap().take().expect("item claimed once");
                        let item_start = probe.map(|_| Instant::now());
                        let r = f(item);
                        if let Some(start) = item_start {
                            busy += start.elapsed();
                        }
                        *results[i].lock().unwrap() = Some(r);
                    }
                    if let Some(p) = probe {
                        mhe_obs::add_busy(p, busy);
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("worker completed item"))
            .collect()
    }

    /// Applies `f` to every item **in place**, concurrently.
    ///
    /// The streaming-replay counterpart of [`ParallelSweep::map`]: the
    /// items stay owned by the caller, so stateful workers (simulators,
    /// modelers) can be fed one trace chunk per call across many calls
    /// without moving in and out of the pool. Work is claimed dynamically;
    /// each item is visited exactly once per call.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        self.for_each_mut_in(None, items, f)
    }

    /// Like [`ParallelSweep::for_each_mut`], attributing the round to an
    /// observability phase (wall time + per-worker busy time), as
    /// [`ParallelSweep::map_in`] does for `map`.
    pub fn for_each_mut_in<T, F>(&self, phase: Option<mhe_obs::Phase>, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        let probe = phase.filter(|_| mhe_obs::enabled());
        let _wall = probe.map(mhe_obs::wall_span);
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let busy_start = probe.map(|_| Instant::now());
            for item in items {
                f(item);
            }
            if let (Some(p), Some(start)) = (probe, busy_start) {
                mhe_obs::add_busy(p, start.elapsed());
            }
            return;
        }
        let slots: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut busy = Duration::ZERO;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let mut guard = slots[i].lock().unwrap();
                        let item_start = probe.map(|_| Instant::now());
                        f(&mut **guard);
                        if let Some(start) = item_start {
                            busy += start.elapsed();
                        }
                    }
                    if let Some(p) = probe {
                        mhe_obs::add_busy(p, busy);
                    }
                });
            }
        });
    }

    /// Like [`ParallelSweep::map`], also reporting the fan-out's wall time.
    pub fn map_timed<T, R, F>(&self, items: Vec<T>, f: F) -> (Vec<R>, SweepMetrics)
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let jobs = items.len();
        let start = Instant::now();
        let out = self.map(items, f);
        (out, SweepMetrics { jobs, threads: self.threads.min(jobs).max(1), wall: start.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let out = ParallelSweep::with_threads(threads).map(items.clone(), |x| x * 2 + 1);
            assert_eq!(out, items.iter().map(|x| x * 2 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let sweep = ParallelSweep::with_threads(4);
        assert_eq!(sweep.map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(sweep.map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // The determinism contract at the pool level: any worker count
        // produces the same output sequence.
        let items: Vec<u64> = (0..100).map(|i| i * 37 % 91).collect();
        let f = |x: u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let one = ParallelSweep::with_threads(1).map(items.clone(), f);
        for threads in [2, 5, 16] {
            assert_eq!(ParallelSweep::with_threads(threads).map(items.clone(), f), one);
        }
    }

    #[test]
    fn with_threads_zero_falls_back_to_auto() {
        assert!(ParallelSweep::with_threads(0).threads() >= 1);
    }

    #[test]
    fn for_each_mut_visits_every_item_once() {
        for threads in [1, 2, 3, 8] {
            let mut items: Vec<u64> = (0..97).collect();
            ParallelSweep::with_threads(threads).for_each_mut(&mut items, |x| *x += 1000);
            assert_eq!(items, (1000..1097).collect::<Vec<u64>>(), "{threads} threads");
        }
    }

    #[test]
    fn for_each_mut_accumulates_state_across_calls() {
        // The chunked-replay shape: stateful items fed repeatedly.
        let mut sums = vec![0u64; 16];
        let sweep = ParallelSweep::with_threads(4);
        for chunk in 1..=10u64 {
            sweep.for_each_mut(&mut sums, |s| *s += chunk);
        }
        assert_eq!(sums, vec![55u64; 16]);
        sweep.for_each_mut(&mut [], |_: &mut u64| unreachable!("empty slice has no items"));
    }

    #[test]
    fn map_timed_reports_jobs() {
        let (out, m) = ParallelSweep::with_threads(2).map_timed(vec![1, 2, 3], |x| x);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(m.jobs, 3);
        assert!(m.threads >= 1);
        assert!(format!("{m}").contains("3 jobs"));
    }

    #[test]
    fn uneven_work_completes() {
        // Items with wildly different costs still all complete and land in
        // their own slots.
        let items: Vec<u64> = vec![200_000, 1, 1, 120_000, 1, 80_000, 1, 1];
        let out = ParallelSweep::with_threads(4).map(items.clone(), |n| {
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(i ^ (acc >> 3));
            }
            (n, acc)
        });
        for (i, (n, _)) in out.iter().enumerate() {
            assert_eq!(*n, items[i]);
        }
    }
}
