//! Deterministic fan-out of independent evaluation work across threads.
//!
//! The paper's efficiency story is throughput: hierarchical evaluation
//! plus single-pass simulation already collapse the *number* of
//! simulations, and this module makes the remaining independent passes run
//! concurrently. Two invariants keep parallelism invisible to results:
//!
//! * work items are independent (no shared mutable state), and
//! * results are returned in **input order**, so every consumer sees
//!   exactly the sequence a serial loop would have produced.
//!
//! Together these make the engine bit-deterministic: miss counts and
//! estimates are identical for any worker count, including one.
//!
//! Thread-count control: [`worker_threads`] honours the `MHE_THREADS`
//! environment variable and falls back to the machine's available
//! parallelism.
//!
//! # Fault tolerance
//!
//! Worker panics are caught at the task boundary (`catch_unwind`), so a
//! poisoned task can never deadlock or abort a sweep mid-join:
//!
//! * the fallible entry points ([`ParallelSweep::try_map`],
//!   [`ParallelSweep::try_for_each_mut`]) convert the panic into
//!   [`MheError::WorkerFailed`] carrying the task label and panic
//!   message, cancel remaining queued work, and surface the partial
//!   [`SweepMetrics`] in a [`SweepError`];
//! * the infallible entry points ([`ParallelSweep::map`],
//!   [`ParallelSweep::for_each_mut`]) cancel remaining work, join every
//!   worker cleanly, and then re-raise the first panicking task's payload
//!   (lowest index wins) — deterministic, but still a panic, because the
//!   signature cannot express failure;
//! * a [`RetryPolicy`] (default: [`crate::env::retry_policy`], i.e.
//!   `MHE_RETRIES`) re-runs *panicked* tasks a bounded number of times in
//!   the fallible paths. Typed `MheError` returns are never retried —
//!   they are deterministic domain failures.
//!
//! The fallible paths also consult [`crate::fault::maybe_panic_task`], so
//! a [`crate::fault::FaultPlan`] can kill chosen tasks on demand.

use crate::cancel::CancelToken;
use crate::env::RetryPolicy;
use crate::error::MheError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default worker count: `MHE_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism. The variable is parsed
/// once, in [`crate::env::threads`].
pub fn worker_threads() -> usize {
    match crate::env::threads() {
        Some(n) => n,
        None => std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1),
    }
}

/// Wall-clock accounting for one [`ParallelSweep`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepMetrics {
    /// Number of work items submitted.
    pub jobs: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall time of the whole fan-out.
    pub wall: Duration,
    /// Work items that finished successfully (equals `jobs` unless the
    /// sweep failed and cancelled its remaining queue).
    pub completed: usize,
    /// Task attempts re-run after an isolated worker panic.
    pub retries: u64,
}

impl SweepMetrics {
    /// Completed jobs per wall-clock second.
    pub fn jobs_per_second(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.wall.as_secs_f64()
        }
    }
}

impl std::fmt::Display for SweepMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} jobs on {} threads in {:.3}s ({:.2} jobs/s)",
            self.completed,
            self.jobs,
            self.threads,
            self.wall.as_secs_f64(),
            self.jobs_per_second()
        )?;
        if self.retries > 0 {
            write!(f, ", {} retries", self.retries)?;
        }
        Ok(())
    }
}

/// A failed sweep: the first task failure (by input index) plus the
/// partial [`SweepMetrics`] — how much work *did* finish before the
/// queue was cancelled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Why the sweep failed (the lowest-index failing task wins).
    pub error: MheError,
    /// Accounting for the partial run.
    pub metrics: SweepMetrics,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} after {}", self.error, self.metrics)
    }
}

impl std::error::Error for SweepError {}

impl From<SweepError> for MheError {
    fn from(e: SweepError) -> MheError {
        e.error
    }
}

/// Renders a caught panic payload for [`MheError::WorkerFailed`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// A scoped-thread worker pool over independent work items.
///
/// # Examples
///
/// ```
/// use mhe_core::parallel::ParallelSweep;
/// let squares = ParallelSweep::with_threads(4).map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelSweep {
    threads: usize,
    retry: RetryPolicy,
    label: &'static str,
    cancel: Option<CancelToken>,
}

impl Default for ParallelSweep {
    fn default() -> Self {
        Self::new()
    }
}

impl ParallelSweep {
    /// A sweep using [`worker_threads`] workers and the process retry
    /// policy (`MHE_RETRIES`, default none).
    pub fn new() -> Self {
        Self {
            threads: worker_threads(),
            retry: crate::env::retry_policy(),
            label: "sweep",
            cancel: None,
        }
    }

    /// A sweep with an explicit worker count (`0` means [`worker_threads`]).
    pub fn with_threads(threads: usize) -> Self {
        if threads == 0 {
            Self::new()
        } else {
            Self { threads, ..Self::new() }
        }
    }

    /// Overrides the retry policy for panicked tasks in the fallible
    /// paths ([`ParallelSweep::try_map`] and friends).
    pub fn with_retry(self, retry: RetryPolicy) -> Self {
        Self { retry, ..self }
    }

    /// Names this sweep's tasks in [`MheError::WorkerFailed`] (e.g.
    /// `"icache walk"` → `"icache walk task 17"`). Default `"sweep"`.
    pub fn with_label(self, label: &'static str) -> Self {
        Self { label, ..self }
    }

    /// Attaches a cooperative [`CancelToken`], checked before every task
    /// in the fallible paths ([`ParallelSweep::try_map`] and friends). A
    /// cancelled sweep stops claiming work at the next task boundary and
    /// surfaces [`MheError::Cancelled`] with partial [`SweepMetrics`];
    /// already-completed work (cache insertions in particular) stays
    /// valid. The infallible paths ignore the token — their signatures
    /// cannot express early exit.
    pub fn with_cancel(self, cancel: CancelToken) -> Self {
        Self { cancel: Some(cancel), ..self }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The retry policy applied to panicked tasks in the fallible paths.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Applies `f` to every item, concurrently, returning results in input
    /// order.
    ///
    /// Work is claimed dynamically (an atomic cursor), so uneven item costs
    /// balance across workers; a panicking item propagates the panic to the
    /// caller once the scope joins.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.map_in(None, items, f)
    }

    /// Like [`ParallelSweep::map`], attributing the fan-out to an
    /// observability phase: the round's wall time plus each worker's busy
    /// time are recorded, so a [`mhe_obs::RunReport`] can derive the
    /// phase's parallel efficiency. With observability off (the default)
    /// this costs one relaxed atomic load over `map`.
    pub fn map_in<T, R, F>(&self, phase: Option<mhe_obs::Phase>, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let probe = phase.filter(|_| mhe_obs::enabled());
        let _wall = probe.map(mhe_obs::wall_span);
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let busy_start = probe.map(|_| Instant::now());
            let out: Vec<R> = items.into_iter().map(f).collect();
            if let (Some(p), Some(start)) = (probe, busy_start) {
                mhe_obs::add_busy(p, start.elapsed());
            }
            return out;
        }
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let first_panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut busy = Duration::ZERO;
                    loop {
                        if cancelled.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i].lock().unwrap().take().expect("item claimed once");
                        let item_start = probe.map(|_| Instant::now());
                        // Isolate the task: a panic cancels the queue and
                        // joins every worker cleanly instead of tearing
                        // down the scope mid-flight.
                        match catch_unwind(AssertUnwindSafe(|| f(item))) {
                            Ok(r) => {
                                *results[i].lock().unwrap() = Some(r);
                            }
                            Err(payload) => {
                                mhe_obs::count(mhe_obs::Counter::WorkerPanic, 1);
                                cancelled.store(true, Ordering::Relaxed);
                                let mut slot = first_panic.lock().unwrap();
                                match &*slot {
                                    Some((j, _)) if *j <= i => {}
                                    _ => *slot = Some((i, payload)),
                                }
                                break;
                            }
                        }
                        if let Some(start) = item_start {
                            busy += start.elapsed();
                        }
                    }
                    if let Some(p) = probe {
                        mhe_obs::add_busy(p, busy);
                    }
                });
            }
        });
        if let Some((_, payload)) = first_panic.into_inner().unwrap() {
            // Deterministic re-raise: the lowest-index panicking task's
            // payload, after every worker has joined.
            std::panic::resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("worker completed item"))
            .collect()
    }

    /// Applies `f` to every item **in place**, concurrently.
    ///
    /// The streaming-replay counterpart of [`ParallelSweep::map`]: the
    /// items stay owned by the caller, so stateful workers (simulators,
    /// modelers) can be fed one trace chunk per call across many calls
    /// without moving in and out of the pool. Work is claimed dynamically;
    /// each item is visited exactly once per call.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        self.for_each_mut_in(None, items, f)
    }

    /// Like [`ParallelSweep::for_each_mut`], attributing the round to an
    /// observability phase (wall time + per-worker busy time), as
    /// [`ParallelSweep::map_in`] does for `map`.
    pub fn for_each_mut_in<T, F>(&self, phase: Option<mhe_obs::Phase>, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        let probe = phase.filter(|_| mhe_obs::enabled());
        let _wall = probe.map(mhe_obs::wall_span);
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let busy_start = probe.map(|_| Instant::now());
            for item in items {
                f(item);
            }
            if let (Some(p), Some(start)) = (probe, busy_start) {
                mhe_obs::add_busy(p, start.elapsed());
            }
            return;
        }
        let slots: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
        let cursor = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let first_panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut busy = Duration::ZERO;
                    loop {
                        if cancelled.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let mut guard = slots[i].lock().unwrap();
                        let item_start = probe.map(|_| Instant::now());
                        // catch_unwind stops the unwind before the slot
                        // guard drops, so the lock is never poisoned.
                        let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut **guard)));
                        drop(guard);
                        if let Err(payload) = outcome {
                            mhe_obs::count(mhe_obs::Counter::WorkerPanic, 1);
                            cancelled.store(true, Ordering::Relaxed);
                            let mut slot = first_panic.lock().unwrap();
                            match &*slot {
                                Some((j, _)) if *j <= i => {}
                                _ => *slot = Some((i, payload)),
                            }
                            break;
                        }
                        if let Some(start) = item_start {
                            busy += start.elapsed();
                        }
                    }
                    if let Some(p) = probe {
                        mhe_obs::add_busy(p, busy);
                    }
                });
            }
        });
        if let Some((_, payload)) = first_panic.into_inner().unwrap() {
            std::panic::resume_unwind(payload);
        }
    }

    /// Like [`ParallelSweep::map`], also reporting the fan-out's wall time.
    pub fn map_timed<T, R, F>(&self, items: Vec<T>, f: F) -> (Vec<R>, SweepMetrics)
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let jobs = items.len();
        let start = Instant::now();
        let out = self.map(items, f);
        (
            out,
            SweepMetrics {
                jobs,
                threads: self.threads.min(jobs).max(1),
                wall: start.elapsed(),
                completed: jobs,
                retries: 0,
            },
        )
    }

    /// Applies a fallible `f` to every item, concurrently, returning
    /// results in input order.
    ///
    /// Unlike [`ParallelSweep::map`], nothing panics out of this method:
    ///
    /// * a task returning `Err` cancels remaining queued work and
    ///   surfaces as the sweep's error (lowest input index wins, so the
    ///   reported failure is deterministic);
    /// * a task that *panics* is caught at the task boundary, retried per
    ///   the sweep's [`RetryPolicy`], and — if it keeps panicking —
    ///   converted into [`MheError::WorkerFailed`] with the task label
    ///   and panic message;
    /// * the returned [`SweepError`] carries partial [`SweepMetrics`], so
    ///   callers know how much work completed before cancellation.
    ///
    /// Items are taken by reference (retries may re-run a task), which is
    /// why `f` borrows rather than consumes.
    pub fn try_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, SweepError>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> Result<R, MheError> + Sync,
    {
        self.try_map_in(None, items, f)
    }

    /// Like [`ParallelSweep::try_map`], attributing the fan-out to an
    /// observability phase (as [`ParallelSweep::map_in`] does).
    pub fn try_map_in<T, R, F>(
        &self,
        phase: Option<mhe_obs::Phase>,
        items: &[T],
        f: F,
    ) -> Result<Vec<R>, SweepError>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> Result<R, MheError> + Sync,
    {
        let start = Instant::now();
        let probe = phase.filter(|_| mhe_obs::enabled());
        let _wall = probe.map(mhe_obs::wall_span);
        let n = items.len();
        let workers = self.threads.min(n).max(1);
        let retries = AtomicU64::new(0);
        let completed = AtomicUsize::new(0);

        let run_one = |i: usize, item: &T| -> Result<R, MheError> {
            let mut attempt = 0u32;
            loop {
                if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    return Err(MheError::Cancelled);
                }
                attempt += 1;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    crate::fault::maybe_panic_task(i as u64);
                    f(item)
                }));
                match outcome {
                    Ok(result) => return result,
                    Err(payload) => {
                        mhe_obs::count(mhe_obs::Counter::WorkerPanic, 1);
                        if attempt < self.retry.max_attempts {
                            retries.fetch_add(1, Ordering::Relaxed);
                            mhe_obs::count(mhe_obs::Counter::TaskRetry, 1);
                            if !self.retry.backoff.is_zero() {
                                std::thread::sleep(self.retry.backoff);
                            }
                            continue;
                        }
                        return Err(MheError::worker_failed(
                            format!("{} task {i}", self.label),
                            panic_message(payload.as_ref()),
                        ));
                    }
                }
            }
        };

        let metrics = |completed: usize, retries: u64, wall: Duration| SweepMetrics {
            jobs: n,
            threads: workers,
            wall,
            completed,
            retries,
        };

        if workers <= 1 {
            let busy_start = probe.map(|_| Instant::now());
            let mut out = Vec::with_capacity(n);
            for (i, item) in items.iter().enumerate() {
                match run_one(i, item) {
                    Ok(r) => out.push(r),
                    Err(error) => {
                        if let (Some(p), Some(bs)) = (probe, busy_start) {
                            mhe_obs::add_busy(p, bs.elapsed());
                        }
                        return Err(SweepError {
                            error,
                            metrics: metrics(i, retries.load(Ordering::Relaxed), start.elapsed()),
                        });
                    }
                }
            }
            if let (Some(p), Some(bs)) = (probe, busy_start) {
                mhe_obs::add_busy(p, bs.elapsed());
            }
            return Ok(out);
        }

        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let first_error: Mutex<Option<(usize, MheError)>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut busy = Duration::ZERO;
                    loop {
                        if cancelled.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item_start = probe.map(|_| Instant::now());
                        match run_one(i, &items[i]) {
                            Ok(r) => {
                                completed.fetch_add(1, Ordering::Relaxed);
                                *results[i].lock().unwrap() = Some(r);
                            }
                            Err(error) => {
                                cancelled.store(true, Ordering::Relaxed);
                                let mut slot = first_error.lock().unwrap();
                                match &*slot {
                                    Some((j, _)) if *j <= i => {}
                                    _ => *slot = Some((i, error)),
                                }
                                break;
                            }
                        }
                        if let Some(s) = item_start {
                            busy += s.elapsed();
                        }
                    }
                    if let Some(p) = probe {
                        mhe_obs::add_busy(p, busy);
                    }
                });
            }
        });
        if let Some((_, error)) = first_error.into_inner().unwrap() {
            return Err(SweepError {
                error,
                metrics: metrics(
                    completed.load(Ordering::Relaxed),
                    retries.load(Ordering::Relaxed),
                    start.elapsed(),
                ),
            });
        }
        Ok(results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("worker completed item"))
            .collect())
    }

    /// The fallible, panic-isolated counterpart of
    /// [`ParallelSweep::for_each_mut`]: applies `f` to every item in
    /// place; `Err` and caught panics behave as in
    /// [`ParallelSweep::try_map`]. A retried task re-runs `f` on the same
    /// item, so `f` must either be restartable or panic before mutating.
    pub fn try_for_each_mut<T, F>(&self, items: &mut [T], f: F) -> Result<(), SweepError>
    where
        T: Send,
        F: Fn(&mut T) -> Result<(), MheError> + Sync,
    {
        self.try_for_each_mut_in(None, items, f)
    }

    /// Like [`ParallelSweep::try_for_each_mut`], attributing the round to
    /// an observability phase.
    pub fn try_for_each_mut_in<T, F>(
        &self,
        phase: Option<mhe_obs::Phase>,
        items: &mut [T],
        f: F,
    ) -> Result<(), SweepError>
    where
        T: Send,
        F: Fn(&mut T) -> Result<(), MheError> + Sync,
    {
        let start = Instant::now();
        let probe = phase.filter(|_| mhe_obs::enabled());
        let _wall = probe.map(mhe_obs::wall_span);
        let n = items.len();
        let workers = self.threads.min(n).max(1);
        let retries = AtomicU64::new(0);
        let completed = AtomicUsize::new(0);

        let run_one = |i: usize, item: &mut T| -> Result<(), MheError> {
            let mut attempt = 0u32;
            loop {
                if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    return Err(MheError::Cancelled);
                }
                attempt += 1;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    crate::fault::maybe_panic_task(i as u64);
                    f(item)
                }));
                match outcome {
                    Ok(result) => return result,
                    Err(payload) => {
                        mhe_obs::count(mhe_obs::Counter::WorkerPanic, 1);
                        if attempt < self.retry.max_attempts {
                            retries.fetch_add(1, Ordering::Relaxed);
                            mhe_obs::count(mhe_obs::Counter::TaskRetry, 1);
                            if !self.retry.backoff.is_zero() {
                                std::thread::sleep(self.retry.backoff);
                            }
                            continue;
                        }
                        return Err(MheError::worker_failed(
                            format!("{} task {i}", self.label),
                            panic_message(payload.as_ref()),
                        ));
                    }
                }
            }
        };

        let metrics = |completed: usize, retries: u64, wall: Duration| SweepMetrics {
            jobs: n,
            threads: workers,
            wall,
            completed,
            retries,
        };

        if workers <= 1 {
            let busy_start = probe.map(|_| Instant::now());
            for (i, item) in items.iter_mut().enumerate() {
                if let Err(error) = run_one(i, item) {
                    if let (Some(p), Some(bs)) = (probe, busy_start) {
                        mhe_obs::add_busy(p, bs.elapsed());
                    }
                    return Err(SweepError {
                        error,
                        metrics: metrics(i, retries.load(Ordering::Relaxed), start.elapsed()),
                    });
                }
            }
            if let (Some(p), Some(bs)) = (probe, busy_start) {
                mhe_obs::add_busy(p, bs.elapsed());
            }
            return Ok(());
        }

        let slots: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
        let cursor = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let first_error: Mutex<Option<(usize, MheError)>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut busy = Duration::ZERO;
                    loop {
                        if cancelled.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let mut guard = slots[i].lock().unwrap();
                        let item_start = probe.map(|_| Instant::now());
                        let outcome = run_one(i, &mut guard);
                        drop(guard);
                        match outcome {
                            Ok(()) => {
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(error) => {
                                cancelled.store(true, Ordering::Relaxed);
                                let mut slot = first_error.lock().unwrap();
                                match &*slot {
                                    Some((j, _)) if *j <= i => {}
                                    _ => *slot = Some((i, error)),
                                }
                                break;
                            }
                        }
                        if let Some(s) = item_start {
                            busy += s.elapsed();
                        }
                    }
                    if let Some(p) = probe {
                        mhe_obs::add_busy(p, busy);
                    }
                });
            }
        });
        if let Some((_, error)) = first_error.into_inner().unwrap() {
            return Err(SweepError {
                error,
                metrics: metrics(
                    completed.load(Ordering::Relaxed),
                    retries.load(Ordering::Relaxed),
                    start.elapsed(),
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let out = ParallelSweep::with_threads(threads).map(items.clone(), |x| x * 2 + 1);
            assert_eq!(out, items.iter().map(|x| x * 2 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let sweep = ParallelSweep::with_threads(4);
        assert_eq!(sweep.map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(sweep.map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // The determinism contract at the pool level: any worker count
        // produces the same output sequence.
        let items: Vec<u64> = (0..100).map(|i| i * 37 % 91).collect();
        let f = |x: u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let one = ParallelSweep::with_threads(1).map(items.clone(), f);
        for threads in [2, 5, 16] {
            assert_eq!(ParallelSweep::with_threads(threads).map(items.clone(), f), one);
        }
    }

    #[test]
    fn with_threads_zero_falls_back_to_auto() {
        assert!(ParallelSweep::with_threads(0).threads() >= 1);
    }

    #[test]
    fn for_each_mut_visits_every_item_once() {
        for threads in [1, 2, 3, 8] {
            let mut items: Vec<u64> = (0..97).collect();
            ParallelSweep::with_threads(threads).for_each_mut(&mut items, |x| *x += 1000);
            assert_eq!(items, (1000..1097).collect::<Vec<u64>>(), "{threads} threads");
        }
    }

    #[test]
    fn for_each_mut_accumulates_state_across_calls() {
        // The chunked-replay shape: stateful items fed repeatedly.
        let mut sums = vec![0u64; 16];
        let sweep = ParallelSweep::with_threads(4);
        for chunk in 1..=10u64 {
            sweep.for_each_mut(&mut sums, |s| *s += chunk);
        }
        assert_eq!(sums, vec![55u64; 16]);
        sweep.for_each_mut(&mut [], |_: &mut u64| unreachable!("empty slice has no items"));
    }

    #[test]
    fn map_timed_reports_jobs() {
        let (out, m) = ParallelSweep::with_threads(2).map_timed(vec![1, 2, 3], |x| x);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(m.jobs, 3);
        assert!(m.threads >= 1);
        assert!(format!("{m}").contains("3 jobs"));
    }

    #[test]
    fn try_map_matches_map_on_success() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 8] {
            let sweep = ParallelSweep::with_threads(threads);
            let out = sweep.try_map(&items, |x| Ok(x * 3)).unwrap();
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_map_surfaces_the_lowest_index_error() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 4] {
            let err = ParallelSweep::with_threads(threads)
                .try_map(&items, |&x| {
                    if x == 7 || x == 40 {
                        Err(MheError::InvalidConfig { field: "x", requirement: "!= 7" })
                    } else {
                        Ok(x)
                    }
                })
                .unwrap_err();
            assert_eq!(
                err.error,
                MheError::InvalidConfig { field: "x", requirement: "!= 7" },
                "{threads} threads"
            );
            assert!(err.metrics.completed < items.len(), "queue was cancelled");
            assert_eq!(err.metrics.jobs, items.len());
        }
    }

    #[test]
    fn try_map_converts_panics_into_worker_failed() {
        let items: Vec<u64> = (0..32).collect();
        for threads in [1, 8] {
            let err = ParallelSweep::with_threads(threads)
                .with_retry(RetryPolicy::NONE)
                .with_label("unit")
                .try_map(&items, |&x| {
                    if x == 5 {
                        panic!("boom at {x}");
                    }
                    Ok(x)
                })
                .unwrap_err();
            match &err.error {
                MheError::WorkerFailed { task, cause } => {
                    assert_eq!(&**task, "unit task 5", "{threads} threads");
                    assert_eq!(&**cause, "boom at 5");
                }
                other => panic!("expected WorkerFailed, got {other:?}"),
            }
            assert_eq!(err.error.exit_code(), 4);
        }
    }

    #[test]
    fn try_map_retries_transient_panics() {
        use std::sync::atomic::AtomicU32;
        let attempts = AtomicU32::new(0);
        let items: Vec<u64> = (0..8).collect();
        let out = ParallelSweep::with_threads(4)
            .with_retry(RetryPolicy { max_attempts: 3, backoff: Duration::ZERO })
            .try_map(&items, |&x| {
                if x == 3 && attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                    panic!("transient");
                }
                Ok(x)
            })
            .unwrap();
        assert_eq!(out, items);
        assert_eq!(attempts.load(Ordering::Relaxed), 3, "two failures, then success");
    }

    #[test]
    fn try_map_does_not_retry_typed_errors() {
        use std::sync::atomic::AtomicU32;
        let calls = AtomicU32::new(0);
        let items = [1u64];
        let err = ParallelSweep::with_threads(1)
            .with_retry(RetryPolicy { max_attempts: 5, backoff: Duration::ZERO })
            .try_map(&items, |_| -> Result<u64, MheError> {
                calls.fetch_add(1, Ordering::Relaxed);
                Err(MheError::InvalidConfig { field: "f", requirement: "r" })
            })
            .unwrap_err();
        assert_eq!(calls.load(Ordering::Relaxed), 1, "typed errors are deterministic");
        assert_eq!(err.error.exit_code(), 2);
    }

    #[test]
    fn try_for_each_mut_isolates_panics_and_reports_partial_metrics() {
        for threads in [1, 8] {
            let mut items: Vec<u64> = (0..40).collect();
            let err = ParallelSweep::with_threads(threads)
                .try_for_each_mut(&mut items, |x| {
                    if *x == 11 {
                        panic!("poisoned item");
                    }
                    *x += 100;
                    Ok(())
                })
                .unwrap_err();
            assert!(matches!(err.error, MheError::WorkerFailed { .. }), "{threads} threads");
            assert!(err.metrics.completed < 40);
        }
        // Success path mutates every item exactly once.
        let mut items: Vec<u64> = (0..40).collect();
        ParallelSweep::with_threads(8)
            .try_for_each_mut(&mut items, |x| {
                *x += 100;
                Ok(())
            })
            .unwrap();
        assert_eq!(items, (100..140).collect::<Vec<u64>>());
    }

    #[test]
    fn map_panic_is_reraised_after_clean_join() {
        // The infallible path cannot express failure, but the panic must
        // arrive via a clean join (no worker left running), carrying the
        // original payload.
        let items: Vec<u64> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            ParallelSweep::with_threads(4).map(items, |x| {
                if x == 9 {
                    panic!("original payload");
                }
                x
            })
        });
        let payload = result.unwrap_err();
        assert_eq!(panic_message(payload.as_ref()), "original payload");
    }

    #[test]
    fn fault_plan_panics_surface_as_worker_failed() {
        let _lock = crate::fault::injection_lock().lock().unwrap();
        let _guard =
            crate::fault::arm(crate::fault::FaultPlan::new(vec![crate::fault::Fault::PanicTask {
                task: 2,
            }]));
        let items: Vec<u64> = (0..16).collect();
        let err = ParallelSweep::with_threads(4)
            .with_retry(RetryPolicy::NONE)
            .try_map(&items, |&x| Ok(x))
            .unwrap_err();
        match &err.error {
            MheError::WorkerFailed { task, cause } => {
                assert!(task.contains("task 2"), "{task}");
                assert!(cause.contains("injected fault"), "{cause}");
            }
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
    }

    #[test]
    fn fault_plan_panic_recovers_with_one_retry() {
        let _lock = crate::fault::injection_lock().lock().unwrap();
        let _guard =
            crate::fault::arm(crate::fault::FaultPlan::new(vec![crate::fault::Fault::PanicTask {
                task: 5,
            }]));
        let items: Vec<u64> = (0..16).collect();
        let out = ParallelSweep::with_threads(4)
            .with_retry(RetryPolicy { max_attempts: 2, backoff: Duration::ZERO })
            .try_map(&items, |&x| Ok(x * 2))
            .unwrap();
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_sweep_stops_at_a_task_boundary_with_partial_metrics() {
        for threads in [1, 4] {
            let token = CancelToken::new();
            let observer = token.clone();
            let items: Vec<u64> = (0..64).collect();
            let err = ParallelSweep::with_threads(threads)
                .with_cancel(token)
                .try_map(&items, |&x| {
                    if x == 3 {
                        observer.cancel();
                    }
                    Ok(x)
                })
                .unwrap_err();
            assert_eq!(err.error, MheError::Cancelled, "{threads} threads");
            assert_eq!(err.error.exit_code(), 7);
            assert!(err.metrics.completed < items.len(), "{threads} threads: queue cancelled");
        }
    }

    #[test]
    fn pre_cancelled_sweep_does_no_work() {
        let token = CancelToken::new();
        token.cancel();
        let calls = std::sync::atomic::AtomicU32::new(0);
        let items: Vec<u64> = (0..16).collect();
        let err = ParallelSweep::with_threads(4)
            .with_cancel(token)
            .try_map(&items, |&x| {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(x)
            })
            .unwrap_err();
        assert_eq!(err.error, MheError::Cancelled);
        assert_eq!(calls.load(Ordering::Relaxed), 0, "no task may start after cancellation");
    }

    #[test]
    fn uneven_work_completes() {
        // Items with wildly different costs still all complete and land in
        // their own slots.
        let items: Vec<u64> = vec![200_000, 1, 1, 120_000, 1, 80_000, 1, 1];
        let out = ParallelSweep::with_threads(4).map(items.clone(), |n| {
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(i ^ (acc >> 3));
            }
            (n, acc)
        });
        for (i, (n, _)) in out.iter().enumerate() {
            assert_eq!(*n, items[i]);
        }
    }
}
