//! Dilation coefficients and per-block dilation distributions.
//!
//! The model's step-2 assumption is that every basic block dilates by the
//! *text* dilation `d` (the ratio of whole-program text sizes). Figure 5 of
//! the paper examines how well that holds by plotting the cumulative
//! distribution of per-block dilations, both unweighted ("static") and
//! weighted by execution frequency ("dynamic"). [`DilationDistribution`]
//! reproduces those curves.

use mhe_vliw::compile::Compiled;
use mhe_workload::exec::BlockFrequencies;
use mhe_workload::ir::{BlockId, ProcId};

pub use mhe_vliw::compile::text_dilation;

/// Per-block dilation samples of one (reference, target) processor pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DilationDistribution {
    /// `(dilation, dynamic_weight)` per block, sorted by dilation.
    samples: Vec<(f64, u64)>,
    /// Total dynamic weight.
    dyn_total: u64,
    /// Whole-program text dilation.
    text_dilation: f64,
}

impl DilationDistribution {
    /// Computes per-block dilations of `target` relative to `reference`.
    ///
    /// `freq` supplies the dynamic weights (blocks never executed get
    /// weight 0 dynamically but still count statically).
    ///
    /// # Panics
    ///
    /// Panics if the two compilations are for different programs (block
    /// table shapes differ).
    pub fn new(reference: &Compiled, target: &Compiled, freq: &BlockFrequencies) -> Self {
        assert_eq!(
            reference.binary.blocks.len(),
            target.binary.blocks.len(),
            "compilations must be of the same program"
        );
        let mut samples = Vec::new();
        let mut dyn_total = 0u64;
        for (pi, rblocks) in reference.binary.blocks.iter().enumerate() {
            assert_eq!(rblocks.len(), target.binary.blocks[pi].len());
            for (bi, rb) in rblocks.iter().enumerate() {
                let tb = target.binary.blocks[pi][bi];
                let d = f64::from(tb.words) / f64::from(rb.words.max(1));
                let w = freq.count(ProcId(pi as u32), BlockId(bi as u32));
                samples.push((d, w));
                dyn_total += w;
            }
        }
        samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        Self { samples, dyn_total, text_dilation: text_dilation(reference, target) }
    }

    /// The whole-program text dilation `d` (Table 3's quantity).
    pub fn text_dilation(&self) -> f64 {
        self.text_dilation
    }

    /// Static CDF: fraction of blocks with dilation `<= x` (Figure 5's
    /// "Static" curves).
    pub fn static_cdf(&self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let n = self.samples.partition_point(|&(d, _)| d <= x);
        n as f64 / self.samples.len() as f64
    }

    /// Dynamic CDF: execution-weighted fraction of blocks with dilation
    /// `<= x` (Figure 5's "Dynamic" curves).
    pub fn dynamic_cdf(&self, x: f64) -> f64 {
        if self.dyn_total == 0 {
            return 0.0;
        }
        let n = self.samples.partition_point(|&(d, _)| d <= x);
        let w: u64 = self.samples[..n].iter().map(|&(_, w)| w).sum();
        w as f64 / self.dyn_total as f64
    }

    /// Number of blocks sampled.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Static quantile: smallest dilation `x` with `static_cdf(x) >= q`.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty or `q` outside `[0, 1]`.
    pub fn static_quantile(&self, q: f64) -> f64 {
        assert!(!self.samples.is_empty(), "empty distribution");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        let idx = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[idx - 1].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhe_vliw::mdes::ProcessorKind;
    use mhe_workload::Benchmark;

    fn dist(target: ProcessorKind) -> DilationDistribution {
        let p = Benchmark::Unepic.generate();
        let r = Compiled::build(&p, &ProcessorKind::P1111.mdes(), None);
        let t = Compiled::build(&p, &target.mdes(), None);
        let f = BlockFrequencies::profile(&p, 11, 100_000);
        DilationDistribution::new(&r, &t, &f)
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let d = dist(ProcessorKind::P3221);
        let mut prev = 0.0;
        for x in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 5.0, 10.0] {
            let s = d.static_cdf(x);
            let y = d.dynamic_cdf(x);
            assert!((0.0..=1.0).contains(&s));
            assert!((0.0..=1.0).contains(&y));
            assert!(s >= prev);
            prev = s;
        }
        assert!(d.static_cdf(100.0) > 0.999);
    }

    #[test]
    fn text_dilation_sits_inside_the_distribution() {
        // The paper: "text dilations typically fall in the middle of the
        // range where the static and dynamic dilation distributions rise
        // from 0 to 1".
        let d = dist(ProcessorKind::P6332);
        let td = d.text_dilation();
        let below = d.static_cdf(td);
        assert!((0.05..=0.95).contains(&below), "text dilation {td} at CDF {below}");
    }

    #[test]
    fn wider_target_shifts_distribution_right() {
        let d2 = dist(ProcessorKind::P2111);
        let d6 = dist(ProcessorKind::P6332);
        assert!(d6.static_quantile(0.5) > d2.static_quantile(0.5));
        assert!(d6.text_dilation() > d2.text_dilation());
    }

    #[test]
    fn quantiles_are_consistent_with_cdf() {
        let d = dist(ProcessorKind::P4221);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let x = d.static_quantile(q);
            assert!(d.static_cdf(x) >= q - 1e-9);
        }
    }

    #[test]
    fn sample_count_matches_block_count() {
        let p = Benchmark::Unepic.generate();
        let d = dist(ProcessorKind::P2111);
        assert_eq!(d.len(), p.block_count());
        assert!(!d.is_empty());
    }
}
