//! Multiple reference processors for feature-diverse design spaces.
//!
//! The dilation model's step-1 assumption requires the reference and target
//! processors to share data-speculation and predication features, "because
//! these features have a large impact on address traces. When the design
//! space covers machines with differing predication/speculation features,
//! we use several `Pref` processors, one for each unique combination of
//! predication and speculation." [`ReferenceBank`] manages that set and
//! routes each target machine to its feature-matched reference evaluation.

use crate::error::MheError;
use crate::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_cache::CacheConfig;
use mhe_vliw::Mdes;
use mhe_workload::ir::Program;
use std::collections::HashMap;

/// The feature combination that selects a reference processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeatureKey {
    /// Load speculation supported.
    pub speculation: bool,
    /// Predicated execution supported.
    pub predication: bool,
}

impl FeatureKey {
    /// The feature key of a machine.
    pub fn of(mdes: &Mdes) -> Self {
        Self { speculation: mdes.speculation, predication: mdes.predication }
    }
}

/// A set of reference evaluations, one per feature combination present in
/// the design space.
#[derive(Debug)]
pub struct ReferenceBank {
    evaluations: HashMap<FeatureKey, ReferenceEvaluation>,
}

impl ReferenceBank {
    /// Builds one reference evaluation per distinct feature combination
    /// among `targets`.
    ///
    /// Every reference machine is the narrow `1111` datapath with the
    /// target combination's features — the paper's choice of a narrow-issue
    /// `Pref` per feature class.
    pub fn build(
        program: &Program,
        targets: &[Mdes],
        config: EvalConfig,
        icaches: &[CacheConfig],
        dcaches: &[CacheConfig],
        ucaches: &[CacheConfig],
    ) -> Self {
        let mut evaluations = HashMap::new();
        for t in targets {
            let key = FeatureKey::of(t);
            if evaluations.contains_key(&key) {
                continue;
            }
            let reference = Mdes::builder(format!(
                "1111{}{}",
                if key.speculation { "+spec" } else { "" },
                if key.predication { "+pred" } else { "" },
            ))
            .units(1, 1, 1, 1)
            .regs(32, 32)
            .speculation(key.speculation)
            .predication(key.predication)
            .build();
            let eval = ReferenceEvaluation::build(
                program.clone(),
                &reference,
                config,
                icaches,
                dcaches,
                ucaches,
            );
            evaluations.insert(key, eval);
        }
        Self { evaluations }
    }

    /// The reference evaluation matching a target machine's features.
    pub fn for_target(&self, target: &Mdes) -> Option<&ReferenceEvaluation> {
        self.evaluations.get(&FeatureKey::of(target))
    }

    /// Number of distinct reference processors.
    pub fn len(&self) -> usize {
        self.evaluations.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.evaluations.is_empty()
    }

    /// Estimated instruction-cache misses for `target`, using its
    /// feature-matched reference.
    ///
    /// # Errors
    ///
    /// Returns [`MheError::MissingReference`] when no reference matches the
    /// target's features, or [`MheError::MissingSimulation`] when the cache
    /// configuration was not simulated.
    pub fn estimate_icache_misses(
        &self,
        target: &Mdes,
        config: CacheConfig,
    ) -> Result<f64, MheError> {
        let key = FeatureKey::of(target);
        let eval = self.for_target(target).ok_or(MheError::MissingReference {
            speculation: key.speculation,
            predication: key.predication,
        })?;
        let d = eval.dilation_of(target);
        eval.estimate_icache_misses(config, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhe_vliw::ProcessorKind;
    use mhe_workload::Benchmark;

    fn targets() -> Vec<Mdes> {
        vec![
            ProcessorKind::P2111.mdes(),
            ProcessorKind::P3221.mdes(),
            Mdes::builder("3221p").units(3, 2, 2, 1).regs(64, 48).predication(true).build(),
            Mdes::builder("2111n").units(2, 1, 1, 1).speculation(false).build(),
        ]
    }

    fn bank() -> ReferenceBank {
        let ic = CacheConfig::from_bytes(1024, 1, 32);
        ReferenceBank::build(
            &Benchmark::Unepic.generate(),
            &targets(),
            EvalConfig { events: 30_000, ..EvalConfig::default() },
            &[ic],
            &[],
            &[],
        )
    }

    #[test]
    fn one_reference_per_feature_combination() {
        let b = bank();
        // spec+nopred, spec+pred, nospec+nopred -> 3 references.
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn targets_route_to_matching_reference() {
        let b = bank();
        for t in targets() {
            let eval = b.for_target(&t).expect("reference exists");
            assert_eq!(eval.reference().mdes.speculation, t.speculation);
            assert_eq!(eval.reference().mdes.predication, t.predication);
        }
    }

    #[test]
    fn estimates_work_for_every_target() {
        let b = bank();
        let ic = CacheConfig::from_bytes(1024, 1, 32);
        for t in targets() {
            let m = b.estimate_icache_misses(&t, ic).unwrap();
            assert!(m > 0.0, "{}: no misses estimated", t.name);
        }
    }

    #[test]
    fn unknown_features_are_an_error() {
        let b = bank();
        let exotic =
            Mdes::builder("x").units(2, 2, 2, 2).speculation(false).predication(true).build();
        assert!(b.for_target(&exotic).is_none());
        assert!(b.estimate_icache_misses(&exotic, CacheConfig::from_bytes(1024, 1, 32)).is_err());
    }
}
