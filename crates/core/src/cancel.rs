//! Cooperative cancellation for long-running sweeps.
//!
//! A [`CancelToken`] is a cheap, cloneable flag threaded from whoever can
//! observe a reason to stop (a connection reader noticing a disconnect, a
//! `Cancel` protocol frame) down into [`crate::parallel::ParallelSweep`],
//! which checks it at every task boundary. Cancellation is *cooperative*:
//! the running task finishes, nothing is torn down mid-computation, and
//! the sweep surfaces [`crate::MheError::Cancelled`] with partial
//! metrics. Work already completed — warmed cache entries in particular —
//! stays valid, which is what makes a cancelled-then-rerun request
//! bit-identical to an uninterrupted one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag.
///
/// ```
/// use mhe_core::cancel::CancelToken;
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (one relaxed atomic load).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag_and_cancel_is_idempotent() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn tokens_cross_threads() {
        let token = CancelToken::new();
        let observer = token.clone();
        let h = std::thread::spawn(move || {
            while !observer.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(h.join().unwrap());
    }
}
