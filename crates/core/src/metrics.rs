//! Observability for the evaluation engine: where the time goes and how
//! fast addresses move through the simulators.
//!
//! [`ReferenceEvaluation::build`](crate::evaluator::ReferenceEvaluation::build)
//! fills an [`EvalMetrics`] as it runs; the bench binaries print it so the
//! effect of `MHE_THREADS` is visible (sims/second, parallel efficiency).
//!
//! These structs are the evaluator's *local* accounting; the
//! workspace-wide story is `mhe-obs`'s [`RunReport`], and
//! [`EvalMetrics::run_report`] folds an evaluation's numbers into that
//! one schema so every surface (bench bins, the spacewalker CLI, this
//! evaluator) reports the same way.

use mhe_obs::{PhaseStats, RunReport};
use mhe_trace::StreamKind;
use std::time::Duration;

/// Cost of one single-pass simulation over one stream at one line size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassMetrics {
    /// Which stream the pass simulated.
    pub stream: StreamKind,
    /// The pass's common line size in words.
    pub line_words: u32,
    /// Number of cache configurations covered by the pass.
    pub configs: usize,
    /// Addresses simulated.
    pub addresses: u64,
    /// Wall time of the pass on its worker thread.
    pub wall: Duration,
}

impl PassMetrics {
    /// Addresses simulated per second within this pass.
    pub fn addresses_per_second(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.addresses as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Accounting of a trace replayed from disk (the `.mtr`/`.din` path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayMetrics {
    /// Encoded bytes consumed from the trace file (including headers).
    pub bytes_read: u64,
    /// Accesses decoded from the file.
    pub accesses: u64,
    /// Size of the same access stream as `din` text, for the compression
    /// ratio.
    pub din_bytes: u64,
    /// Chunks the stream was replayed in.
    pub chunks: u64,
    /// Wall time spent reading and decoding (excludes simulation).
    pub decode_wall: Duration,
}

impl ReplayMetrics {
    /// How many times smaller the file is than the equivalent `din` text;
    /// 0 when nothing was read.
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes_read == 0 {
            0.0
        } else {
            self.din_bytes as f64 / self.bytes_read as f64
        }
    }

    /// Accesses decoded per second; 0 for an instantaneous decode.
    pub fn decode_accesses_per_second(&self) -> f64 {
        if self.decode_wall.is_zero() {
            0.0
        } else {
            self.accesses as f64 / self.decode_wall.as_secs_f64()
        }
    }

    /// Encoded megabytes decoded per second; 0 for an instantaneous
    /// decode.
    pub fn decode_mb_per_second(&self) -> f64 {
        if self.decode_wall.is_zero() {
            0.0
        } else {
            self.bytes_read as f64 / 1e6 / self.decode_wall.as_secs_f64()
        }
    }
}

impl std::fmt::Display for ReplayMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay {} accs from {} B in {} chunks ({:.2}x smaller than din, \
             {:.2} Maddr/s / {:.1} MB/s decode)",
            self.accesses,
            self.bytes_read,
            self.chunks,
            self.compression_ratio(),
            self.decode_accesses_per_second() / 1e6,
            self.decode_mb_per_second(),
        )
    }
}

/// Accounting of a sampled measurement (present when
/// `EvalConfig::sampling` routed the build through interval sampling).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SamplingMetrics {
    /// Intervals the trace was split into.
    pub intervals: u64,
    /// Clusters (= representative intervals simulated).
    pub clusters: u64,
    /// Accesses actually fed to engines: warm-up plus representative
    /// bodies, unified stream.
    pub representative_accesses: u64,
    /// Exact unified trace length (every access was *seen* by pass A;
    /// only representatives were *simulated*).
    pub total_accesses: u64,
    /// Clustering-dispersion error heuristic (`SamplePlan::error_bound`):
    /// 0 means every interval is represented exactly; larger values mean
    /// the clusters are more heterogeneous. The accuracy harness pins
    /// the measured error — this field only ranks plans.
    pub error_bound: f64,
}

impl SamplingMetrics {
    /// Fraction of the trace simulated; the replay-speedup story is its
    /// reciprocal.
    pub fn coverage(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.representative_accesses as f64 / self.total_accesses as f64
        }
    }
}

impl std::fmt::Display for SamplingMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sampled {} of {} accs ({:.1}% coverage, {} intervals -> {} clusters, \
             error bound {:.4})",
            self.representative_accesses,
            self.total_accesses,
            self.coverage() * 100.0,
            self.intervals,
            self.clusters,
            self.error_bound,
        )
    }
}

/// End-to-end accounting of one [`ReferenceEvaluation::build`] call.
///
/// [`ReferenceEvaluation::build`]: crate::evaluator::ReferenceEvaluation::build
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EvalMetrics {
    /// Worker threads the measurement fan-out used.
    pub threads: usize,
    /// Length of the materialised unified reference trace.
    pub trace_len: u64,
    /// Wall time to generate and materialise the reference trace.
    pub trace_wall: Duration,
    /// Wall time of the two trace-parameter modeler passes.
    pub model_wall: Duration,
    /// Wall time of the whole simulation fan-out (not the per-pass sum).
    pub sim_wall: Duration,
    /// Wall time of the whole build.
    pub build_wall: Duration,
    /// One entry per single-pass simulation.
    pub passes: Vec<PassMetrics>,
    /// Present when the trace was replayed from a captured file instead
    /// of generated in memory.
    pub replay: Option<ReplayMetrics>,
    /// Present when the measurement ran through interval sampling.
    pub sampling: Option<SamplingMetrics>,
}

impl EvalMetrics {
    /// Total addresses pushed through single-pass simulators.
    pub fn simulated_addresses(&self) -> u64 {
        self.passes.iter().map(|p| p.addresses).sum()
    }

    /// Total cache configurations measured.
    pub fn simulated_configs(&self) -> usize {
        self.passes.iter().map(|p| p.configs).sum()
    }

    /// Sum of per-pass wall times — the serial cost of the same work.
    pub fn cpu_sim_time(&self) -> Duration {
        self.passes.iter().map(|p| p.wall).sum()
    }

    /// Single-pass simulations completed per wall-clock second.
    pub fn sims_per_second(&self) -> f64 {
        if self.sim_wall.is_zero() {
            0.0
        } else {
            self.passes.len() as f64 / self.sim_wall.as_secs_f64()
        }
    }

    /// Addresses simulated per wall-clock second across all passes.
    pub fn addresses_per_second(&self) -> f64 {
        if self.sim_wall.is_zero() {
            0.0
        } else {
            self.simulated_addresses() as f64 / self.sim_wall.as_secs_f64()
        }
    }

    /// Ratio of the serial cost of all fan-out tasks (modeler + simulation
    /// passes) to the fan-out's wall time (1.0 = no overlap).
    pub fn parallel_speedup(&self) -> f64 {
        if self.sim_wall.is_zero() {
            1.0
        } else {
            (self.cpu_sim_time() + self.model_wall).as_secs_f64() / self.sim_wall.as_secs_f64()
        }
    }

    /// Folds this evaluation's accounting into the workspace-wide
    /// [`RunReport`] schema: trace generation (or file decode, when the
    /// trace was replayed), the modeler passes, and the simulation
    /// fan-out each become one phase, so `EvalMetrics` renders exactly
    /// like the live `mhe-obs` registry does.
    pub fn run_report(&self, label: impl Into<String>) -> RunReport {
        let ns = |d: Duration| d.as_nanos() as u64;
        let mut phases = Vec::new();
        if self.replay.is_none() && (self.trace_len > 0 || !self.trace_wall.is_zero()) {
            phases.push(PhaseStats {
                phase: mhe_obs::Phase::TraceGen.name(),
                spans: 1,
                busy_ns: ns(self.trace_wall),
                wall_ns: 0,
                events: self.trace_len,
                bytes: 0,
            });
        }
        if let Some(replay) = &self.replay {
            phases.push(PhaseStats {
                phase: mhe_obs::Phase::Decode.name(),
                spans: replay.chunks,
                busy_ns: ns(replay.decode_wall),
                wall_ns: 0,
                events: replay.accesses,
                bytes: replay.bytes_read,
            });
        }
        if !self.passes.is_empty() || !self.sim_wall.is_zero() {
            phases.push(PhaseStats {
                phase: mhe_obs::Phase::Simulate.name(),
                spans: self.passes.len() as u64,
                busy_ns: ns(self.cpu_sim_time() + self.model_wall),
                wall_ns: ns(self.sim_wall),
                events: self.simulated_addresses(),
                bytes: 0,
            });
        }
        if !self.model_wall.is_zero() {
            phases.push(PhaseStats {
                phase: mhe_obs::Phase::Model.name(),
                spans: 2,
                busy_ns: ns(self.model_wall),
                wall_ns: 0,
                events: 0,
                bytes: 0,
            });
        }
        RunReport { label: label.into(), threads: self.threads, phases, counters: Vec::new() }
    }
}

impl std::fmt::Display for EvalMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace {} refs in {:.3}s; {} passes / {} configs / {} addrs in {:.3}s wall \
             ({:.2} Maddr/s, {:.1} sims/s, {} threads, overlap {:.2}x); build {:.3}s",
            self.trace_len,
            self.trace_wall.as_secs_f64(),
            self.passes.len(),
            self.simulated_configs(),
            self.simulated_addresses(),
            self.sim_wall.as_secs_f64(),
            self.addresses_per_second() / 1e6,
            self.sims_per_second(),
            self.threads,
            self.parallel_speedup(),
            self.build_wall.as_secs_f64(),
        )?;
        if let Some(replay) = &self.replay {
            write!(f, "; {replay}")?;
        }
        if let Some(sampling) = &self.sampling {
            write!(f, "; {sampling}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(stream: StreamKind, line: u32, configs: usize, addrs: u64, ms: u64) -> PassMetrics {
        PassMetrics {
            stream,
            line_words: line,
            configs,
            addresses: addrs,
            wall: Duration::from_millis(ms),
        }
    }

    #[test]
    fn aggregates_sum_over_passes() {
        let m = EvalMetrics {
            threads: 4,
            trace_len: 1000,
            sim_wall: Duration::from_millis(100),
            passes: vec![
                pass(StreamKind::Instruction, 8, 3, 600, 80),
                pass(StreamKind::Data, 8, 1, 400, 40),
            ],
            ..EvalMetrics::default()
        };
        assert_eq!(m.simulated_addresses(), 1000);
        assert_eq!(m.simulated_configs(), 4);
        assert_eq!(m.cpu_sim_time(), Duration::from_millis(120));
        assert!((m.parallel_speedup() - 1.2).abs() < 1e-9);
        assert!((m.sims_per_second() - 20.0).abs() < 1e-9);
        assert!((m.addresses_per_second() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_times_do_not_divide_by_zero() {
        let m = EvalMetrics::default();
        assert_eq!(m.sims_per_second(), 0.0);
        assert_eq!(m.addresses_per_second(), 0.0);
        assert_eq!(m.parallel_speedup(), 1.0);
        let p = pass(StreamKind::Unified, 16, 2, 0, 0);
        assert_eq!(p.addresses_per_second(), 0.0);
    }

    #[test]
    fn display_mentions_threads_and_passes() {
        let m = EvalMetrics {
            threads: 8,
            passes: vec![pass(StreamKind::Instruction, 4, 2, 100, 10)],
            ..EvalMetrics::default()
        };
        let s = format!("{m}");
        assert!(s.contains("8 threads"), "{s}");
        assert!(s.contains("1 passes"), "{s}");
        assert!(!s.contains("replay"), "generated traces must not report replay: {s}");
    }

    #[test]
    fn replay_metrics_ratios_and_throughput() {
        let r = ReplayMetrics {
            bytes_read: 1_000,
            accesses: 500,
            din_bytes: 8_000,
            chunks: 4,
            decode_wall: Duration::from_millis(100),
        };
        assert!((r.compression_ratio() - 8.0).abs() < 1e-9);
        assert!((r.decode_accesses_per_second() - 5_000.0).abs() < 1e-6);
        assert!((r.decode_mb_per_second() - 0.01).abs() < 1e-9);
        let zero = ReplayMetrics::default();
        assert_eq!(zero.compression_ratio(), 0.0);
        assert_eq!(zero.decode_accesses_per_second(), 0.0);
        assert_eq!(zero.decode_mb_per_second(), 0.0);
    }

    #[test]
    fn run_report_folds_phases() {
        let m = EvalMetrics {
            threads: 4,
            trace_len: 1000,
            trace_wall: Duration::from_millis(5),
            model_wall: Duration::from_millis(3),
            sim_wall: Duration::from_millis(100),
            passes: vec![pass(StreamKind::Instruction, 8, 3, 600, 80)],
            ..EvalMetrics::default()
        };
        let r = m.run_report("eval");
        assert_eq!(r.threads, 4);
        let names: Vec<&str> = r.phases.iter().map(|p| p.phase).collect();
        assert_eq!(names, vec!["trace_gen", "simulate", "model"]);
        let sim = &r.phases[1];
        assert_eq!(sim.events, 600);
        assert_eq!(sim.spans, 1);
        assert!(sim.parallel_efficiency(4).is_some());
        assert!(r.to_json_line().contains("\"phase\":\"simulate\""));

        let replayed = EvalMetrics {
            replay: Some(ReplayMetrics {
                bytes_read: 10,
                accesses: 2,
                chunks: 1,
                decode_wall: Duration::from_millis(1),
                ..Default::default()
            }),
            ..m
        };
        let r = replayed.run_report("replay");
        let names: Vec<&str> = r.phases.iter().map(|p| p.phase).collect();
        assert_eq!(names, vec!["decode", "simulate", "model"]);
    }

    #[test]
    fn display_appends_replay_when_present() {
        let m = EvalMetrics {
            replay: Some(ReplayMetrics { bytes_read: 10, accesses: 2, ..Default::default() }),
            ..EvalMetrics::default()
        };
        let s = format!("{m}");
        assert!(s.contains("replay 2 accs from 10 B"), "{s}");
    }
}
