//! Observability for the evaluation engine: where the time goes and how
//! fast addresses move through the simulators.
//!
//! [`ReferenceEvaluation::build`](crate::evaluator::ReferenceEvaluation::build)
//! fills an [`EvalMetrics`] as it runs; the bench binaries print it so the
//! effect of `MHE_THREADS` is visible (sims/second, parallel efficiency).

use mhe_trace::StreamKind;
use std::time::Duration;

/// Cost of one single-pass simulation over one stream at one line size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassMetrics {
    /// Which stream the pass simulated.
    pub stream: StreamKind,
    /// The pass's common line size in words.
    pub line_words: u32,
    /// Number of cache configurations covered by the pass.
    pub configs: usize,
    /// Addresses simulated.
    pub addresses: u64,
    /// Wall time of the pass on its worker thread.
    pub wall: Duration,
}

impl PassMetrics {
    /// Addresses simulated per second within this pass.
    pub fn addresses_per_second(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.addresses as f64 / self.wall.as_secs_f64()
        }
    }
}

/// End-to-end accounting of one [`ReferenceEvaluation::build`] call.
///
/// [`ReferenceEvaluation::build`]: crate::evaluator::ReferenceEvaluation::build
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EvalMetrics {
    /// Worker threads the measurement fan-out used.
    pub threads: usize,
    /// Length of the materialised unified reference trace.
    pub trace_len: u64,
    /// Wall time to generate and materialise the reference trace.
    pub trace_wall: Duration,
    /// Wall time of the two trace-parameter modeler passes.
    pub model_wall: Duration,
    /// Wall time of the whole simulation fan-out (not the per-pass sum).
    pub sim_wall: Duration,
    /// Wall time of the whole build.
    pub build_wall: Duration,
    /// One entry per single-pass simulation.
    pub passes: Vec<PassMetrics>,
}

impl EvalMetrics {
    /// Total addresses pushed through single-pass simulators.
    pub fn simulated_addresses(&self) -> u64 {
        self.passes.iter().map(|p| p.addresses).sum()
    }

    /// Total cache configurations measured.
    pub fn simulated_configs(&self) -> usize {
        self.passes.iter().map(|p| p.configs).sum()
    }

    /// Sum of per-pass wall times — the serial cost of the same work.
    pub fn cpu_sim_time(&self) -> Duration {
        self.passes.iter().map(|p| p.wall).sum()
    }

    /// Single-pass simulations completed per wall-clock second.
    pub fn sims_per_second(&self) -> f64 {
        if self.sim_wall.is_zero() {
            0.0
        } else {
            self.passes.len() as f64 / self.sim_wall.as_secs_f64()
        }
    }

    /// Addresses simulated per wall-clock second across all passes.
    pub fn addresses_per_second(&self) -> f64 {
        if self.sim_wall.is_zero() {
            0.0
        } else {
            self.simulated_addresses() as f64 / self.sim_wall.as_secs_f64()
        }
    }

    /// Ratio of the serial cost of all fan-out tasks (modeler + simulation
    /// passes) to the fan-out's wall time (1.0 = no overlap).
    pub fn parallel_speedup(&self) -> f64 {
        if self.sim_wall.is_zero() {
            1.0
        } else {
            (self.cpu_sim_time() + self.model_wall).as_secs_f64() / self.sim_wall.as_secs_f64()
        }
    }
}

impl std::fmt::Display for EvalMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace {} refs in {:.3}s; {} passes / {} configs / {} addrs in {:.3}s wall \
             ({:.2} Maddr/s, {:.1} sims/s, {} threads, overlap {:.2}x); build {:.3}s",
            self.trace_len,
            self.trace_wall.as_secs_f64(),
            self.passes.len(),
            self.simulated_configs(),
            self.simulated_addresses(),
            self.sim_wall.as_secs_f64(),
            self.addresses_per_second() / 1e6,
            self.sims_per_second(),
            self.threads,
            self.parallel_speedup(),
            self.build_wall.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(stream: StreamKind, line: u32, configs: usize, addrs: u64, ms: u64) -> PassMetrics {
        PassMetrics {
            stream,
            line_words: line,
            configs,
            addresses: addrs,
            wall: Duration::from_millis(ms),
        }
    }

    #[test]
    fn aggregates_sum_over_passes() {
        let m = EvalMetrics {
            threads: 4,
            trace_len: 1000,
            sim_wall: Duration::from_millis(100),
            passes: vec![
                pass(StreamKind::Instruction, 8, 3, 600, 80),
                pass(StreamKind::Data, 8, 1, 400, 40),
            ],
            ..EvalMetrics::default()
        };
        assert_eq!(m.simulated_addresses(), 1000);
        assert_eq!(m.simulated_configs(), 4);
        assert_eq!(m.cpu_sim_time(), Duration::from_millis(120));
        assert!((m.parallel_speedup() - 1.2).abs() < 1e-9);
        assert!((m.sims_per_second() - 20.0).abs() < 1e-9);
        assert!((m.addresses_per_second() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_times_do_not_divide_by_zero() {
        let m = EvalMetrics::default();
        assert_eq!(m.sims_per_second(), 0.0);
        assert_eq!(m.addresses_per_second(), 0.0);
        assert_eq!(m.parallel_speedup(), 1.0);
        let p = pass(StreamKind::Unified, 16, 2, 0, 0);
        assert_eq!(p.addresses_per_second(), 0.0);
    }

    #[test]
    fn display_mentions_threads_and_passes() {
        let m = EvalMetrics {
            threads: 8,
            passes: vec![pass(StreamKind::Instruction, 4, 2, 100, 10)],
            ..EvalMetrics::default()
        };
        let s = format!("{m}");
        assert!(s.contains("8 threads"), "{s}");
        assert!(s.contains("1 passes"), "{s}");
    }
}
