//! Single-pass multi-configuration cache simulation (the Cheetah role).
//!
//! For a fixed line size and replacement policy, one pass over the address
//! trace yields exact miss counts for *every* cache `C(S, A, L)` with `S`
//! in a set of power-of-two set counts and `A` up to a maximum
//! associativity. Three engines implement the pass:
//!
//! * **LRU** — Mattson stack inclusion: within a set, a reference at stack
//!   depth `p` hits every cache of associativity `> p`, so one truncated
//!   stack per set covers the whole associativity axis.
//! * **FIFO** — a DEW-style insertion *wavetable* (after Haque et al.):
//!   FIFO has no stack inclusion, but because hits never reorder the
//!   queue, a block is resident in the associativity-`a` cache iff its
//!   latest insertion was among the last `a` insertions into its set.
//!   Per-`(set, assoc)` insertion-epoch counters plus a per-block record
//!   of latest insertion epochs answer residency for every associativity
//!   in O(max_assoc) per reference.
//! * **Fallback** (PLRU, random) — no single-pass formulation exists, so
//!   the same pass feeds one direct [`crate::policy::SetEngine`] grid per
//!   covered configuration. Costs scale with the number of configurations
//!   rather than line sizes, but the API — and the evaluator above it —
//!   stays uniform.
//!
//! This is the paper's first efficiency pillar: "the number of simulations
//! is reduced from the total number of caches in the design space to the
//! number of distinct cache line sizes".

use crate::config::CacheConfig;
use crate::policy::{Policy, ReplacementPolicy, SetEngine};
use crate::sim::MissStats;
use mhe_trace::{Access, StreamKind};
use std::collections::HashMap;

/// Single-pass simulator for a family of configurations sharing a line
/// size and replacement policy.
///
/// # Examples
///
/// ```
/// use mhe_cache::single_pass::SinglePassSim;
/// let mut sim = SinglePassSim::new(8, &[16, 32, 64], 4);
/// for addr in (0..10_000u64).map(|i| (i * 17) % 4096) {
///     sim.access(addr);
/// }
/// // Misses for any covered (sets, assoc) pair are now available:
/// let m_dm = sim.misses(32, 1);
/// let m_2w = sim.misses(32, 2);
/// assert!(m_2w <= m_dm);
/// ```
#[derive(Debug, Clone)]
pub struct SinglePassSim {
    line_words: u32,
    max_assoc: u32,
    set_counts: Vec<u32>,
    policy: Policy,
    engine: Engine,
    accesses: u64,
}

/// One engine per policy family; each variant holds one table per set
/// count (parallel to `set_counts`).
#[derive(Debug, Clone)]
enum Engine {
    /// LRU stack inclusion.
    Stack(Vec<StackTable>),
    /// FIFO insertion wavetable.
    Wave(Vec<WaveTable>),
    /// Per-configuration direct simulation (PLRU, random).
    Direct(Vec<DirectTable>),
}

#[derive(Debug, Clone)]
struct StackTable {
    sets: u32,
    /// Per-set LRU stack of block ids, MRU first, truncated at `max_assoc`.
    stacks: Vec<Vec<u64>>,
    /// `hits_at_depth[d]` = hits at stack depth `d` (so a cache with
    /// associativity `A` hits `sum(hits_at_depth[..A])`).
    hits_at_depth: Vec<u64>,
}

/// FIFO wavetable: the associativity-`a` FIFO set holds exactly the blocks
/// whose latest insertion was among the last `a` insertions to that set's
/// lane `a` queue (insertions happen per lane, on that lane's misses).
#[derive(Debug, Clone)]
struct WaveTable {
    sets: u32,
    /// Insertion counts, row-major `[set][lane]` where lane `l` models
    /// associativity `l + 1`.
    epochs: Vec<u64>,
    /// Latest insertion epoch of each block per lane; `u64::MAX` = never
    /// inserted (or evicted long ago — staleness is harmless because the
    /// residency window test rejects old epochs).
    waves: HashMap<u64, Box<[u64]>>,
    /// `hits[l]` = hits of the associativity-`l + 1` cache.
    hits: Vec<u64>,
}

/// Fallback: a full grid of direct per-set engines for one set count.
#[derive(Debug, Clone)]
struct DirectTable {
    sets: u32,
    /// `lanes[a - 1]` simulates associativity `a`.
    lanes: Vec<DirectLane>,
}

#[derive(Debug, Clone)]
struct DirectLane {
    engines: Vec<SetEngine>,
    misses: u64,
}

impl SinglePassSim {
    /// Creates an LRU simulator covering every `(sets, assoc)` with
    /// `sets ∈ set_counts` and `1 <= assoc <= max_assoc`, for the given line
    /// size in words.
    ///
    /// # Panics
    ///
    /// Panics if `line_words` or any set count is not a power of two, if
    /// `set_counts` is empty, or if `max_assoc == 0`.
    pub fn new(line_words: u32, set_counts: &[u32], max_assoc: u32) -> Self {
        Self::new_with_policy(Policy::Lru, line_words, set_counts, max_assoc)
    }

    /// Creates a simulator for the given replacement policy.
    ///
    /// LRU and FIFO use native single-pass engines; PLRU and random fall
    /// back to per-configuration direct simulation behind the same API
    /// (see [`Policy::single_pass_native`]).
    ///
    /// # Panics
    ///
    /// Panics as for [`SinglePassSim::new`].
    pub fn new_with_policy(
        policy: Policy,
        line_words: u32,
        set_counts: &[u32],
        max_assoc: u32,
    ) -> Self {
        assert!(line_words.is_power_of_two(), "line size must be a power of two");
        assert!(!set_counts.is_empty(), "need at least one set count");
        assert!(max_assoc >= 1, "max associativity must be at least 1");
        let mut counts = set_counts.to_vec();
        counts.sort_unstable();
        counts.dedup();
        for &s in &counts {
            assert!(s.is_power_of_two(), "set count {s} must be a power of two");
        }
        let engine = match policy {
            Policy::Lru => Engine::Stack(
                counts
                    .iter()
                    .map(|&s| StackTable {
                        sets: s,
                        stacks: vec![Vec::with_capacity(max_assoc as usize); s as usize],
                        hits_at_depth: vec![0; max_assoc as usize],
                    })
                    .collect(),
            ),
            Policy::Fifo => Engine::Wave(
                counts
                    .iter()
                    .map(|&s| WaveTable {
                        sets: s,
                        epochs: vec![0; s as usize * max_assoc as usize],
                        waves: HashMap::new(),
                        hits: vec![0; max_assoc as usize],
                    })
                    .collect(),
            ),
            Policy::PlruTree | Policy::Random(_) => Engine::Direct(
                counts
                    .iter()
                    .map(|&s| DirectTable {
                        sets: s,
                        lanes: (1..=max_assoc)
                            .map(|a| DirectLane {
                                engines: (0..u64::from(s)).map(|i| policy.new_set(a, i)).collect(),
                                misses: 0,
                            })
                            .collect(),
                    })
                    .collect(),
            ),
        };
        Self { line_words, max_assoc, set_counts: counts, policy, engine, accesses: 0 }
    }

    /// Convenience: a simulator covering a whole [`CacheConfig`] family.
    ///
    /// All `configs` must share `line_words` and `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or the line sizes or policies disagree.
    pub fn for_configs(configs: &[CacheConfig]) -> Self {
        assert!(!configs.is_empty(), "need at least one configuration");
        let line = configs[0].line_words;
        assert!(
            configs.iter().all(|c| c.line_words == line),
            "single-pass simulation requires a common line size"
        );
        let policy = configs[0].policy;
        assert!(
            configs.iter().all(|c| c.policy == policy),
            "single-pass simulation requires a common replacement policy"
        );
        let sets: Vec<u32> = configs.iter().map(|c| c.sets).collect();
        let max_assoc = configs.iter().map(|c| c.assoc).max().unwrap();
        Self::new_with_policy(policy, line, &sets, max_assoc)
    }

    /// References a word address in every covered configuration.
    pub fn access(&mut self, addr: u64) {
        self.accesses += 1;
        let block = addr / u64::from(self.line_words);
        let max_assoc = self.max_assoc as usize;
        match &mut self.engine {
            Engine::Stack(tables) => {
                for table in tables {
                    let set = &mut table.stacks[(block % u64::from(table.sets)) as usize];
                    match set.iter().position(|&b| b == block) {
                        Some(pos) => {
                            table.hits_at_depth[pos] += 1;
                            set[..=pos].rotate_right(1);
                        }
                        None => {
                            if set.len() == max_assoc {
                                set.pop();
                            }
                            set.insert(0, block);
                        }
                    }
                }
            }
            Engine::Wave(tables) => {
                for table in tables {
                    let row = (block % u64::from(table.sets)) as usize * max_assoc;
                    let waves = table
                        .waves
                        .entry(block)
                        .or_insert_with(|| vec![u64::MAX; max_assoc].into_boxed_slice());
                    for lane in 0..max_assoc {
                        let epoch = table.epochs[row + lane];
                        let w = waves[lane];
                        // Resident iff the block's latest insertion is
                        // within the last `lane + 1` insertions.
                        if w != u64::MAX && epoch - w <= lane as u64 + 1 {
                            table.hits[lane] += 1;
                        } else {
                            waves[lane] = epoch;
                            table.epochs[row + lane] = epoch + 1;
                        }
                    }
                }
            }
            Engine::Direct(tables) => {
                for table in tables {
                    let si = (block % u64::from(table.sets)) as usize;
                    for lane in &mut table.lanes {
                        let set = &mut lane.engines[si];
                        if !set.lookup(block) {
                            lane.misses += 1;
                            set.insert(block);
                        }
                    }
                }
            }
        }
    }

    /// Runs a whole trace.
    pub fn run(&mut self, trace: impl IntoIterator<Item = u64>) {
        // Events only: busy/wall time for the simulate phase is recorded
        // by the fan-out that drives the simulators (`mhe-core`'s
        // parallel sweep), so nesting never double-counts time.
        let before = self.accesses;
        for addr in trace {
            self.access(addr);
        }
        mhe_obs::add_events(mhe_obs::Phase::Simulate, self.accesses - before);
    }

    /// Feeds a chunk of an access stream, admitting only the references
    /// that belong to `stream`.
    ///
    /// The simulator is stateful across calls, so an arbitrarily long
    /// trace can be replayed chunk by chunk in bounded memory; feeding
    /// the same accesses in the same order yields bit-identical miss
    /// counts no matter how the stream is chunked.
    pub fn run_stream(&mut self, stream: StreamKind, chunk: impl IntoIterator<Item = Access>) {
        // Events only, as in `run`: the driving fan-out owns the timing.
        let before = self.accesses;
        for a in chunk {
            if stream.admits(a.kind) {
                self.access(a.addr);
            }
        }
        mhe_obs::add_events(mhe_obs::Phase::Simulate, self.accesses - before);
    }

    /// Total references seen.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Line size in words.
    pub fn line_words(&self) -> u32 {
        self.line_words
    }

    /// Covered set counts (sorted).
    pub fn set_counts(&self) -> &[u32] {
        &self.set_counts
    }

    /// Maximum covered associativity.
    pub fn max_assoc(&self) -> u32 {
        self.max_assoc
    }

    /// The replacement policy every covered configuration runs.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Whether this simulator uses a native single-pass engine (LRU
    /// stacks, FIFO wavetable) rather than the per-configuration direct
    /// fallback.
    pub fn single_pass_native(&self) -> bool {
        self.policy.single_pass_native()
    }

    /// Miss count for `C(sets, assoc, line)` under this policy.
    ///
    /// # Panics
    ///
    /// Panics if `sets` was not covered or `assoc > max_assoc`.
    pub fn misses(&self, sets: u32, assoc: u32) -> u64 {
        assert!(assoc >= 1 && assoc <= self.max_assoc, "assoc {assoc} not covered");
        let ti = self
            .set_counts
            .iter()
            .position(|&s| s == sets)
            .unwrap_or_else(|| panic!("set count {sets} not covered"));
        match &self.engine {
            Engine::Stack(tables) => {
                let hits: u64 = tables[ti].hits_at_depth[..assoc as usize].iter().sum();
                self.accesses - hits
            }
            Engine::Wave(tables) => self.accesses - tables[ti].hits[assoc as usize - 1],
            Engine::Direct(tables) => tables[ti].lanes[assoc as usize - 1].misses,
        }
    }

    /// Statistics for `C(sets, assoc, line)`.
    ///
    /// # Panics
    ///
    /// Panics as for [`SinglePassSim::misses`].
    pub fn stats(&self, sets: u32, assoc: u32) -> MissStats {
        MissStats { accesses: self.accesses, misses: self.misses(sets, assoc) }
    }

    /// Enumerates all covered `(config, stats)` pairs (configs carry the
    /// simulator's policy).
    pub fn all_results(&self) -> Vec<(CacheConfig, MissStats)> {
        let mut out = Vec::new();
        for &s in &self.set_counts {
            for a in 1..=self.max_assoc {
                out.push((
                    CacheConfig::new(s, a, self.line_words).with_policy(self.policy),
                    self.stats(s, a),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;

    fn pseudo_trace(n: usize, seed: u64) -> Vec<u64> {
        // Mix of streaming and hot-set accesses.
        let mut x = seed;
        (0..n)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if x.is_multiple_of(3) {
                    (i as u64) % 2048
                } else {
                    (x >> 33) % 1024
                }
            })
            .collect()
    }

    #[test]
    fn matches_direct_simulation_exactly() {
        let trace = pseudo_trace(50_000, 42);
        let mut sp = SinglePassSim::new(4, &[8, 16, 32, 64], 4);
        sp.run(trace.iter().copied());
        for &sets in &[8u32, 16, 32, 64] {
            for assoc in 1..=4 {
                let direct = simulate(CacheConfig::new(sets, assoc, 4), trace.iter().copied());
                assert_eq!(sp.misses(sets, assoc), direct.misses, "mismatch at S={sets} A={assoc}");
            }
        }
    }

    #[test]
    fn misses_monotone_in_associativity() {
        let trace = pseudo_trace(20_000, 7);
        let mut sp = SinglePassSim::new(8, &[16, 64], 8);
        sp.run(trace.iter().copied());
        for &s in &[16u32, 64] {
            for a in 1..8 {
                assert!(sp.misses(s, a + 1) <= sp.misses(s, a));
            }
        }
    }

    #[test]
    fn all_results_covers_grid() {
        let mut sp = SinglePassSim::new(4, &[8, 16], 3);
        sp.run(0..1000u64);
        let results = sp.all_results();
        assert_eq!(results.len(), 2 * 3);
        for (cfg, st) in results {
            assert_eq!(st.accesses, 1000);
            assert_eq!(cfg.line_words, 4);
        }
    }

    #[test]
    fn for_configs_requires_common_line() {
        let a = CacheConfig::new(8, 1, 4);
        let b = CacheConfig::new(16, 2, 4);
        let sp = SinglePassSim::for_configs(&[a, b]);
        assert_eq!(sp.set_counts(), &[8, 16]);
        assert_eq!(sp.max_assoc(), 2);
    }

    #[test]
    #[should_panic(expected = "common line size")]
    fn for_configs_rejects_mixed_lines() {
        let a = CacheConfig::new(8, 1, 4);
        let b = CacheConfig::new(8, 1, 8);
        let _ = SinglePassSim::for_configs(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "common replacement policy")]
    fn for_configs_rejects_mixed_policies() {
        let a = CacheConfig::new(8, 1, 4);
        let b = CacheConfig::new(16, 1, 4).with_policy(Policy::Fifo);
        let _ = SinglePassSim::for_configs(&[a, b]);
    }

    #[test]
    fn every_policy_matches_direct_simulation_exactly() {
        let trace = pseudo_trace(30_000, 1234);
        for p in Policy::all() {
            let mut sp = SinglePassSim::new_with_policy(p, 4, &[8, 16, 64], 4);
            sp.run(trace.iter().copied());
            assert_eq!(sp.policy(), p);
            for &sets in &[8u32, 16, 64] {
                for assoc in 1..=4 {
                    let cfg = CacheConfig::new(sets, assoc, 4).with_policy(p);
                    let direct = simulate(cfg, trace.iter().copied());
                    assert_eq!(sp.misses(sets, assoc), direct.misses, "{p} S={sets} A={assoc}");
                }
            }
        }
    }

    #[test]
    fn fifo_wavetable_shows_belady_anomaly_capability() {
        // The classic Belady sequence: FIFO with 4 frames misses MORE
        // than with 3. The wavetable must reproduce non-monotone
        // associativity behaviour exactly (stacks could not).
        let trace: Vec<u64> = [1u64, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5].to_vec();
        let mut sp = SinglePassSim::new_with_policy(Policy::Fifo, 1, &[1], 4);
        sp.run(trace.iter().copied());
        assert_eq!(sp.misses(1, 3), 9);
        assert_eq!(sp.misses(1, 4), 10, "Belady's anomaly");
    }

    #[test]
    fn policy_run_stream_is_chunk_invariant() {
        let trace: Vec<Access> = pseudo_trace(10_000, 77)
            .into_iter()
            .enumerate()
            .map(|(i, a)| if i % 2 == 0 { Access::inst(a) } else { Access::load(a) })
            .collect();
        for p in Policy::all() {
            let mut whole = SinglePassSim::new_with_policy(p, 4, &[16, 64], 4);
            whole.run_stream(StreamKind::Instruction, trace.iter().copied());
            let mut chunked = SinglePassSim::new_with_policy(p, 4, &[16, 64], 4);
            for chunk in trace.chunks(97) {
                chunked.run_stream(StreamKind::Instruction, chunk.iter().copied());
            }
            for &s in &[16u32, 64] {
                for a in 1..=4 {
                    assert_eq!(chunked.misses(s, a), whole.misses(s, a), "{p} S={s} A={a}");
                }
            }
        }
    }

    #[test]
    fn all_results_carry_the_policy() {
        let mut sp = SinglePassSim::new_with_policy(Policy::PlruTree, 4, &[8], 2);
        sp.run(0..500u64);
        assert!(!sp.single_pass_native());
        for (cfg, _) in sp.all_results() {
            assert_eq!(cfg.policy, Policy::PlruTree);
        }
    }

    #[test]
    fn sequential_trace_miss_count_is_line_count() {
        // Streaming 4096 words with 8-word lines: 512 compulsory misses,
        // regardless of cache size, when nothing is revisited.
        let mut sp = SinglePassSim::new(8, &[32, 256], 2);
        sp.run(0..4096u64);
        assert_eq!(sp.misses(32, 1), 512);
        assert_eq!(sp.misses(256, 2), 512);
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn querying_uncovered_sets_panics() {
        let sp = SinglePassSim::new(4, &[8], 2);
        let _ = sp.misses(16, 1);
    }

    #[test]
    fn run_stream_filters_and_is_chunk_invariant() {
        let trace: Vec<Access> = pseudo_trace(30_000, 11)
            .into_iter()
            .enumerate()
            .map(|(i, a)| match i % 3 {
                0 => Access::inst(a),
                1 => Access::load(a),
                _ => Access::store(a),
            })
            .collect();
        for stream in [StreamKind::Instruction, StreamKind::Data, StreamKind::Unified] {
            let mut whole = SinglePassSim::new(4, &[16, 64], 4);
            whole.run_stream(stream, trace.iter().copied());
            for chunk_size in [1usize, 7, 1024, 30_000] {
                let mut chunked = SinglePassSim::new(4, &[16, 64], 4);
                for chunk in trace.chunks(chunk_size) {
                    chunked.run_stream(stream, chunk.iter().copied());
                }
                assert_eq!(chunked.accesses(), whole.accesses());
                for &s in &[16u32, 64] {
                    for a in 1..=4 {
                        assert_eq!(
                            chunked.misses(s, a),
                            whole.misses(s, a),
                            "{stream:?} S={s} A={a} chunk={chunk_size}"
                        );
                    }
                }
            }
        }
    }
}
