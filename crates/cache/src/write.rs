//! Write-policy-aware data-cache simulation.
//!
//! The paper's §6.1 validation found its miss counts differed slightly
//! from IMPACT's "more detailed simulation […] involving slightly
//! different handling of writes and write-buffer issues". This module
//! makes those effects first-class so the difference can be studied:
//! write-allocate vs no-write-allocate stores, write-back dirty-eviction
//! traffic, and a draining write buffer with stall accounting.

use crate::config::CacheConfig;
use crate::policy::{ReplacementPolicy, SetEngine};

/// What a store does on a cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMissPolicy {
    /// Fetch the line and write into it (the main simulator's implicit
    /// behaviour).
    #[default]
    WriteAllocate,
    /// Send the store around the cache to the write buffer.
    NoWriteAllocate,
}

/// Write-path configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteConfig {
    /// Store-miss policy.
    pub policy: WriteMissPolicy,
    /// Write buffer depth in entries (0 = no buffer: every write-through
    /// or write-back stalls).
    pub buffer_entries: u32,
    /// The buffer retires one entry every `drain_interval` cache accesses.
    pub drain_interval: u32,
}

impl Default for WriteConfig {
    fn default() -> Self {
        Self { policy: WriteMissPolicy::WriteAllocate, buffer_entries: 4, drain_interval: 4 }
    }
}

/// Statistics of a write-aware simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteStats {
    /// Total references.
    pub accesses: u64,
    /// Load misses.
    pub load_misses: u64,
    /// Store misses (fills under write-allocate; buffer posts otherwise).
    pub store_misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Accesses stalled on a full write buffer.
    pub buffer_stalls: u64,
}

impl WriteStats {
    /// All demand misses.
    pub fn misses(&self) -> u64 {
        self.load_misses + self.store_misses
    }
}

/// One set: the replacement engine plus which resident blocks are dirty.
///
/// Dirtiness lives *beside* the engine (a small unordered list) rather
/// than inside it, so any [`crate::Policy`] gains write-back accounting
/// for free: the engine's `insert` reports the victim and we check it
/// against the dirty list.
#[derive(Debug, Clone)]
struct WriteSet {
    engine: SetEngine,
    dirty: Vec<u64>,
}

/// A write-back data cache (any [`crate::Policy`]) with a draining write
/// buffer.
///
/// # Examples
///
/// ```
/// use mhe_cache::{write::{WriteCache, WriteConfig}, CacheConfig};
/// let mut c = WriteCache::new(CacheConfig::new(4, 1, 4), WriteConfig::default());
/// c.store(0);            // miss, allocate, dirty
/// c.load(16);            // miss, maps to set 0, evicts dirty line 0
/// assert_eq!(c.stats().writebacks, 1);
/// ```
#[derive(Debug, Clone)]
pub struct WriteCache {
    config: CacheConfig,
    write: WriteConfig,
    sets: Vec<WriteSet>,
    buffer_used: u32,
    since_drain: u32,
    stats: WriteStats,
}

impl WriteCache {
    /// Creates an empty cache running `config.policy`.
    pub fn new(config: CacheConfig, write: WriteConfig) -> Self {
        Self {
            sets: (0..u64::from(config.sets))
                .map(|i| WriteSet {
                    engine: config.policy.new_set(config.assoc, i),
                    dirty: Vec::new(),
                })
                .collect(),
            config,
            write,
            buffer_used: 0,
            since_drain: 0,
            stats: WriteStats::default(),
        }
    }

    /// Simulation statistics so far.
    pub fn stats(&self) -> WriteStats {
        self.stats
    }

    /// Processes a load; returns whether it hit.
    pub fn load(&mut self, addr: u64) -> bool {
        self.tick();
        self.stats.accesses += 1;
        let block = self.config.block_of(addr);
        if self.touch(block, false) {
            true
        } else {
            self.stats.load_misses += 1;
            self.fill(block, false);
            false
        }
    }

    /// Processes a store; returns whether it hit.
    pub fn store(&mut self, addr: u64) -> bool {
        self.tick();
        self.stats.accesses += 1;
        let block = self.config.block_of(addr);
        if self.touch(block, true) {
            return true;
        }
        self.stats.store_misses += 1;
        match self.write.policy {
            WriteMissPolicy::WriteAllocate => self.fill(block, true),
            WriteMissPolicy::NoWriteAllocate => self.post_write(),
        }
        false
    }

    /// Runs a trace of `(addr, is_store)` pairs.
    pub fn run(&mut self, trace: impl IntoIterator<Item = (u64, bool)>) -> WriteStats {
        for (addr, is_store) in trace {
            if is_store {
                self.store(addr);
            } else {
                self.load(addr);
            }
        }
        self.stats
    }

    fn tick(&mut self) {
        self.since_drain += 1;
        if self.since_drain >= self.write.drain_interval.max(1) {
            self.since_drain = 0;
            self.buffer_used = self.buffer_used.saturating_sub(1);
        }
    }

    /// Looks a block up; on hit updates recency state and optionally
    /// dirties it.
    fn touch(&mut self, block: u64, dirty: bool) -> bool {
        let set = &mut self.sets[(block % u64::from(self.config.sets)) as usize];
        if set.engine.lookup(block) {
            if dirty && !set.dirty.contains(&block) {
                set.dirty.push(block);
            }
            true
        } else {
            false
        }
    }

    fn fill(&mut self, block: u64, dirty: bool) {
        let idx = (block % u64::from(self.config.sets)) as usize;
        let mut dirty_victim = false;
        {
            let set = &mut self.sets[idx];
            if let Some(victim) = set.engine.insert(block) {
                if let Some(pos) = set.dirty.iter().position(|&b| b == victim) {
                    set.dirty.swap_remove(pos);
                    dirty_victim = true;
                }
            }
            if dirty {
                set.dirty.push(block);
            }
        }
        if dirty_victim {
            self.stats.writebacks += 1;
            self.post_write();
        }
    }

    /// Posts one entry to the write buffer, stalling if full.
    fn post_write(&mut self) {
        if self.buffer_used >= self.write.buffer_entries {
            self.stats.buffer_stalls += 1;
            // The stall drains one entry synchronously.
        } else {
            self.buffer_used += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::new(4, 1, 4)
    }

    #[test]
    fn clean_evictions_cost_nothing() {
        let mut c = WriteCache::new(cfg(), WriteConfig::default());
        c.load(0);
        c.load(16); // evicts clean line 0 (set 0)
        assert_eq!(c.stats().writebacks, 0);
        assert_eq!(c.stats().load_misses, 2);
    }

    #[test]
    fn dirty_evictions_write_back() {
        let mut c = WriteCache::new(cfg(), WriteConfig::default());
        c.store(0);
        c.load(16);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn load_after_store_hit_keeps_dirty() {
        let mut c = WriteCache::new(cfg(), WriteConfig::default());
        c.store(0);
        c.load(1); // same line: hit
        assert_eq!(c.stats().misses(), 1);
        c.load(16); // evict: still dirty
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn no_write_allocate_bypasses_the_cache() {
        let w = WriteConfig { policy: WriteMissPolicy::NoWriteAllocate, ..Default::default() };
        let mut c = WriteCache::new(cfg(), w);
        c.store(0); // miss: buffered, NOT allocated
        assert!(!c.load(0)); // still a miss
        assert_eq!(c.stats().store_misses, 1);
        assert_eq!(c.stats().load_misses, 1);
    }

    #[test]
    fn write_allocate_captures_subsequent_loads() {
        let mut c = WriteCache::new(cfg(), WriteConfig::default());
        c.store(0);
        assert!(c.load(0));
    }

    #[test]
    fn full_buffer_stalls_and_drains() {
        let w = WriteConfig {
            policy: WriteMissPolicy::NoWriteAllocate,
            buffer_entries: 1,
            drain_interval: 100, // effectively no draining within the test
        };
        let mut c = WriteCache::new(cfg(), w);
        c.store(0); // fills the single buffer entry
        c.store(64); // buffer full: stall
        assert_eq!(c.stats().buffer_stalls, 1);
    }

    #[test]
    fn draining_prevents_stalls_at_low_store_rates() {
        let w = WriteConfig {
            policy: WriteMissPolicy::NoWriteAllocate,
            buffer_entries: 2,
            drain_interval: 1,
        };
        let mut c = WriteCache::new(cfg(), w);
        // One store every 4 accesses: the buffer always drains in time.
        for i in 0..100u64 {
            if i % 4 == 0 {
                c.store(i * 64);
            } else {
                c.load(i % 8);
            }
        }
        assert_eq!(c.stats().buffer_stalls, 0);
    }

    #[test]
    fn replacement_policy_governs_writeback_victims() {
        use crate::policy::Policy;
        // 1 set x 2 ways: store A, load B, touch A, load C.
        // LRU evicts B (clean): no writeback. FIFO evicts A (dirty): one.
        let run = |p: Policy| {
            let mut c =
                WriteCache::new(CacheConfig::new(1, 2, 4).with_policy(p), WriteConfig::default());
            c.store(0); // A, dirty
            c.load(4); // B
            c.load(0); // refresh A under LRU; FIFO unmoved
            c.load(8); // C: evict
            c.stats().writebacks
        };
        assert_eq!(run(Policy::Lru), 0);
        assert_eq!(run(Policy::Fifo), 1);
    }

    #[test]
    fn loads_only_match_oracle_for_every_policy() {
        use crate::policy::Policy;
        use crate::sim::simulate;
        let addrs: Vec<u64> =
            (0..8000u64).map(|i| (i.wrapping_mul(2654435761) >> 13) % 2048).collect();
        for p in Policy::all() {
            let cfg = CacheConfig::new(8, 2, 4).with_policy(p);
            let w =
                WriteCache::new(cfg, WriteConfig::default()).run(addrs.iter().map(|&a| (a, false)));
            let direct = simulate(cfg, addrs.iter().copied());
            assert_eq!(w.misses(), direct.misses, "{p}");
            assert_eq!(w.writebacks, 0, "{p}: loads never dirty lines");
        }
    }

    #[test]
    fn policies_agree_on_loads_only() {
        let trace: Vec<(u64, bool)> =
            (0..5000u64).map(|i| ((i.wrapping_mul(2654435761) >> 16) % 256, false)).collect();
        let a = WriteCache::new(cfg(), WriteConfig::default()).run(trace.iter().copied());
        let w = WriteConfig { policy: WriteMissPolicy::NoWriteAllocate, ..Default::default() };
        let b = WriteCache::new(cfg(), w).run(trace.iter().copied());
        assert_eq!(a.misses(), b.misses());
        assert_eq!(a.writebacks, 0);
        assert_eq!(b.writebacks, 0);
    }
}
