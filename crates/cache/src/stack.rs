//! Fully-associative LRU stack simulation: every capacity in one pass.
//!
//! The other half of the Cheetah simulator's repertoire (Sugumar &
//! Abraham): Mattson's stack algorithm. One pass over the trace builds the
//! LRU stack-distance histogram, from which the exact miss count of a
//! fully-associative LRU cache of *any* capacity follows — the classic way
//! to read off capacity-miss curves and the basis for classifying misses
//! (see [`crate::classify`]).

use std::collections::HashMap;

/// Single-pass fully-associative LRU simulator for all capacities.
///
/// # Examples
///
/// ```
/// use mhe_cache::stack::StackSim;
/// let mut sim = StackSim::new(4); // 4-word lines
/// // Touch lines 0,1,2 then re-touch line 0 (stack distance 3).
/// for addr in [0u64, 4, 8, 0] {
///     sim.access(addr);
/// }
/// assert_eq!(sim.misses(2), 4); // capacity 2 lines: distance 3 misses
/// assert_eq!(sim.misses(3), 3); // capacity 3 lines: it hits
/// ```
#[derive(Debug, Clone)]
pub struct StackSim {
    line_words: u32,
    /// LRU stack of line ids, most recent first.
    stack: Vec<u64>,
    /// `position[line]` is maintained lazily via linear search; the map
    /// only tracks membership to cut search cost on misses.
    member: HashMap<u64, ()>,
    /// `hist[d]` = accesses with stack distance exactly `d + 1`.
    hist: Vec<u64>,
    /// Accesses to lines never seen before (infinite distance).
    cold: u64,
    accesses: u64,
}

impl StackSim {
    /// Creates a simulator for the given line size in words.
    ///
    /// # Panics
    ///
    /// Panics if `line_words` is not a power of two.
    pub fn new(line_words: u32) -> Self {
        assert!(line_words.is_power_of_two(), "line size must be a power of two");
        Self {
            line_words,
            stack: Vec::new(),
            member: HashMap::new(),
            hist: Vec::new(),
            cold: 0,
            accesses: 0,
        }
    }

    /// Processes one word address.
    pub fn access(&mut self, addr: u64) {
        self.accesses += 1;
        let line = addr / u64::from(self.line_words);
        if self.member.contains_key(&line) {
            let pos =
                self.stack.iter().position(|&l| l == line).expect("member map and stack agree");
            if self.hist.len() <= pos {
                self.hist.resize(pos + 1, 0);
            }
            self.hist[pos] += 1;
            self.stack[..=pos].rotate_right(1);
        } else {
            self.cold += 1;
            self.member.insert(line, ());
            self.stack.insert(0, line);
        }
    }

    /// Runs a whole trace.
    pub fn run(&mut self, trace: impl IntoIterator<Item = u64>) {
        for a in trace {
            self.access(a);
        }
    }

    /// Total accesses processed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Compulsory (first-touch) misses — missed at any capacity.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Exact miss count of a fully-associative LRU cache holding
    /// `capacity_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines == 0`.
    pub fn misses(&self, capacity_lines: u32) -> u64 {
        assert!(capacity_lines >= 1, "capacity must be positive");
        let cap = capacity_lines as usize;
        let hits: u64 = self.hist.iter().take(cap).sum();
        self.accesses - hits
    }

    /// The stack-distance histogram: entry `d` counts re-references at
    /// distance `d + 1` (so they hit in caches of at least `d + 1` lines).
    pub fn histogram(&self) -> &[u64] {
        &self.hist
    }

    /// The smallest capacity (in lines) achieving a miss rate at most
    /// `target`, if any capacity does (compulsory misses set the floor).
    pub fn capacity_for_miss_rate(&self, target: f64) -> Option<u32> {
        if self.accesses == 0 {
            return Some(1);
        }
        let mut hits = 0u64;
        for (d, &h) in self.hist.iter().enumerate() {
            hits += h;
            let miss_rate = (self.accesses - hits) as f64 / self.accesses as f64;
            if miss_rate <= target {
                return Some((d + 1) as u32);
            }
        }
        let floor = self.cold as f64 / self.accesses as f64;
        if floor <= target {
            Some(self.hist.len().max(1) as u32)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use crate::CacheConfig;

    fn mixed_trace(n: usize) -> Vec<u64> {
        let mut x = 0x12345u64;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x.is_multiple_of(3) {
                    (i as u64) % 512
                } else {
                    (x >> 30) % 2048
                }
            })
            .collect()
    }

    #[test]
    fn matches_direct_fully_associative_simulation() {
        let trace = mixed_trace(20_000);
        let mut sim = StackSim::new(4);
        sim.run(trace.iter().copied());
        for cap in [1u32, 2, 8, 32, 128, 512] {
            let direct = simulate(CacheConfig::new(1, cap, 4), trace.iter().copied());
            assert_eq!(sim.misses(cap), direct.misses, "capacity {cap}");
        }
    }

    #[test]
    fn misses_monotone_in_capacity() {
        let mut sim = StackSim::new(1);
        sim.run(mixed_trace(10_000));
        let mut prev = u64::MAX;
        for cap in 1..200 {
            let m = sim.misses(cap);
            assert!(m <= prev);
            prev = m;
        }
    }

    #[test]
    fn cold_misses_are_the_floor() {
        let mut sim = StackSim::new(1);
        sim.run(mixed_trace(10_000));
        assert_eq!(sim.misses(u32::MAX), sim.cold_misses());
    }

    #[test]
    fn histogram_accounts_for_every_access() {
        let mut sim = StackSim::new(2);
        sim.run(mixed_trace(5_000));
        let total: u64 = sim.histogram().iter().sum::<u64>() + sim.cold_misses();
        assert_eq!(total, sim.accesses());
    }

    #[test]
    fn capacity_for_miss_rate_is_consistent() {
        let mut sim = StackSim::new(1);
        sim.run(mixed_trace(20_000));
        for target in [0.5, 0.2, 0.1] {
            if let Some(cap) = sim.capacity_for_miss_rate(target) {
                let rate = sim.misses(cap) as f64 / sim.accesses() as f64;
                assert!(rate <= target + 1e-12, "cap {cap}: rate {rate} > {target}");
                if cap > 1 {
                    let before = sim.misses(cap - 1) as f64 / sim.accesses() as f64;
                    assert!(before > target, "cap {cap} not minimal");
                }
            }
        }
    }

    #[test]
    fn impossible_targets_return_none() {
        let mut sim = StackSim::new(1);
        // Pure streaming: every access cold.
        sim.run(0..1000u64);
        assert_eq!(sim.capacity_for_miss_rate(0.5), None);
        assert_eq!(sim.cold_misses(), 1000);
    }
}
