//! Cache geometry.

use crate::policy::Policy;
use std::fmt;

/// Geometry of one cache: `C(S, A, L)` in the paper's notation, plus its
/// replacement policy.
///
/// `sets` and the line size must be powers of two ("a cache is feasible if
/// its line size and number of sets are powers of two, and its associativity
/// is an integer").
///
/// The policy participates in `Eq`/`Hash`/`Ord` (as the least-significant
/// ordering key), so measured-miss tables and the on-disk evaluation cache
/// automatically keep per-policy entries apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in 4-byte words (power of two).
    pub line_words: u32,
    /// Replacement policy (defaults to LRU everywhere a policy isn't
    /// stated explicitly).
    pub policy: Policy,
}

impl CacheConfig {
    /// Creates a configuration, validating feasibility.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_words` is not a power of two, or if
    /// `assoc == 0`.
    pub fn new(sets: u32, assoc: u32, line_words: u32) -> Self {
        assert!(sets.is_power_of_two(), "sets {sets} must be a power of two");
        assert!(
            line_words.is_power_of_two(),
            "line size {line_words} words must be a power of two"
        );
        assert!(assoc >= 1, "associativity must be at least 1");
        Self { sets, assoc, line_words, policy: Policy::Lru }
    }

    /// The same geometry under a different replacement policy.
    ///
    /// # Examples
    ///
    /// ```
    /// use mhe_cache::{CacheConfig, Policy};
    /// let c = CacheConfig::new(32, 2, 8).with_policy(Policy::Fifo);
    /// assert_eq!(c.policy, Policy::Fifo);
    /// assert_ne!(c, CacheConfig::new(32, 2, 8)); // policy is part of identity
    /// ```
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// The same configuration with a different (power-of-two) line size,
    /// preserving the policy. Used by the evaluator when it expands the
    /// contracted-line family for Lemma 1.
    ///
    /// # Panics
    ///
    /// Panics if `line_words` is not a power of two.
    pub fn with_line_words(mut self, line_words: u32) -> Self {
        assert!(
            line_words.is_power_of_two(),
            "line size {line_words} words must be a power of two"
        );
        self.line_words = line_words;
        self
    }

    /// Creates a configuration from a total size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the size is not divisible into `assoc` power-of-two sets of
    /// `line_bytes` lines, or if `line_bytes < 4`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mhe_cache::CacheConfig;
    /// // The paper's small config: 1 KB direct-mapped, 32-byte lines.
    /// let c = CacheConfig::from_bytes(1024, 1, 32);
    /// assert_eq!(c.sets, 32);
    /// assert_eq!(c.line_words, 8);
    /// assert_eq!(c.size_bytes(), 1024);
    /// ```
    pub fn from_bytes(size_bytes: u64, assoc: u32, line_bytes: u32) -> Self {
        assert!(line_bytes >= 4, "line must be at least one word");
        assert_eq!(line_bytes % 4, 0, "line must be whole words");
        let line_words = line_bytes / 4;
        let denom = u64::from(assoc) * u64::from(line_bytes);
        assert_eq!(size_bytes % denom, 0, "size {size_bytes} not divisible by assoc*line {denom}");
        let sets = (size_bytes / denom) as u32;
        Self::new(sets, assoc, line_words)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.assoc) * u64::from(self.line_words) * 4
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_words * 4
    }

    /// Memory block index of a word address.
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / u64::from(self.line_words)
    }

    /// Set index of a word address.
    pub fn set_of(&self, addr: u64) -> u32 {
        (self.block_of(addr) % u64::from(self.sets)) as u32
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C(S={}, A={}, L={}B", self.sets, self.assoc, self.line_bytes())?;
        // LRU is the unmarked default; only annotate departures from it.
        if self.policy != Policy::Lru {
            write!(f, ", {}", self.policy)?;
        }
        write!(f, ") [{} B]", self.size_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations_decompose_correctly() {
        // Small: 1KB DM 32B-line I/D, 16KB 2-way 64B-line unified.
        let d1 = CacheConfig::from_bytes(1024, 1, 32);
        assert_eq!((d1.sets, d1.assoc, d1.line_words), (32, 1, 8));
        let u16 = CacheConfig::from_bytes(16 * 1024, 2, 64);
        assert_eq!((u16.sets, u16.assoc, u16.line_words), (128, 2, 16));
        // Large: 16KB 2-way 32B-line I/D, 128KB 4-way 64B-line unified.
        let d16 = CacheConfig::from_bytes(16 * 1024, 2, 32);
        assert_eq!((d16.sets, d16.assoc, d16.line_words), (256, 2, 8));
        let u128 = CacheConfig::from_bytes(128 * 1024, 4, 64);
        assert_eq!((u128.sets, u128.assoc, u128.line_words), (512, 4, 16));
    }

    #[test]
    fn size_roundtrips() {
        for (size, assoc, line) in [(1024u64, 1u32, 32u32), (8192, 4, 16), (65536, 8, 64)] {
            let c = CacheConfig::from_bytes(size, assoc, line);
            assert_eq!(c.size_bytes(), size);
            assert_eq!(c.line_bytes(), line);
        }
    }

    #[test]
    fn set_mapping_wraps() {
        let c = CacheConfig::new(4, 1, 8);
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(8), 1);
        assert_eq!(c.set_of(8 * 4), 0);
        assert_eq!(c.set_of(7), 0); // same line
    }

    #[test]
    fn display_marks_non_lru_policies_only() {
        let c = CacheConfig::from_bytes(1024, 1, 32);
        assert_eq!(c.to_string(), "C(S=32, A=1, L=32B) [1024 B]");
        assert_eq!(c.with_policy(Policy::Fifo).to_string(), "C(S=32, A=1, L=32B, fifo) [1024 B]");
    }

    #[test]
    fn policy_distinguishes_configs() {
        use std::collections::HashSet;
        let base = CacheConfig::new(32, 2, 8);
        let set: HashSet<CacheConfig> =
            Policy::all().iter().map(|&p| base.with_policy(p)).collect();
        assert_eq!(set.len(), Policy::all().len());
        // Ordering: policy is the tie-breaker after geometry.
        assert!(base < base.with_policy(Policy::Fifo));
        assert!(base.with_policy(Policy::Fifo) < CacheConfig::new(64, 2, 8));
    }

    #[test]
    fn with_line_words_preserves_policy() {
        let c = CacheConfig::new(32, 2, 8).with_policy(Policy::PlruTree).with_line_words(4);
        assert_eq!((c.sets, c.assoc, c.line_words), (32, 2, 4));
        assert_eq!(c.policy, Policy::PlruTree);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheConfig::new(3, 1, 8);
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn zero_assoc_rejected() {
        let _ = CacheConfig::new(4, 0, 8);
    }
}
