//! Miss classification: compulsory / capacity / conflict.
//!
//! The AHH model "characterizes cache misses into start-up, non-stationary
//! and intrinsic interference misses" and the paper keeps only the
//! steady-state interference term. This module measures that decomposition
//! directly (the classic three-C taxonomy), which is how we check where
//! the steady-state assumption is justified:
//!
//! * **compulsory** — first touch of a line (the start-up term);
//! * **capacity** — missed even by a fully-associative LRU cache of the
//!   same total size;
//! * **conflict** — the remainder: present under full associativity but
//!   evicted by set conflicts (the interference the `Coll` model targets).

use crate::config::CacheConfig;
use crate::sim::Cache;
use std::collections::HashSet;

/// A miss decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissBreakdown {
    /// Total references.
    pub accesses: u64,
    /// First-touch misses.
    pub compulsory: u64,
    /// Misses shared with the equal-size fully-associative cache.
    pub capacity: u64,
    /// Misses only the set-associative cache suffers.
    pub conflict: u64,
}

impl MissBreakdown {
    /// Total misses.
    pub fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Fraction of misses that are steady-state interference (conflict) —
    /// the share the paper's model assumes dominates.
    pub fn conflict_share(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.conflict as f64 / t as f64
        }
    }
}

/// Classifies every miss of `config` on `trace`.
///
/// Conflict misses can be *negative* in pathological traces (a
/// set-associative cache can beat full LRU); following convention they are
/// clamped at the access level: a miss that hits in the fully-associative
/// twin counts as conflict, otherwise as capacity.
///
/// The decomposition is *policy-relative*: the fully-associative twin runs
/// the same replacement policy as `config`, so "capacity" means "missed
/// even without set conflicts **under this policy**". The classic 3C
/// taxonomy (and the AHH model the paper builds on) is defined against
/// fully-associative LRU; for a non-LRU `config` the policy-matched twin
/// is the decomposition that still satisfies
/// `compulsory + capacity + conflict == total misses` access-by-access.
/// Callers wanting the classic LRU-relative baseline can classify
/// `config.with_policy(Policy::Lru)` alongside.
///
/// # Examples
///
/// ```
/// use mhe_cache::{classify::classify_misses, CacheConfig};
/// // Two lines ping-ponging in one set of a 2-set direct-mapped cache.
/// let trace = [0u64, 2, 0, 2, 0, 2];
/// let b = classify_misses(CacheConfig::new(2, 1, 1), trace);
/// assert_eq!(b.compulsory, 2);
/// assert_eq!(b.conflict, 4); // a 2-line fully-associative cache would hit
/// assert_eq!(b.capacity, 0);
/// ```
pub fn classify_misses(config: CacheConfig, trace: impl IntoIterator<Item = u64>) -> MissBreakdown {
    let mut cache = Cache::new(config);
    // Equal-capacity fully-associative twin under the same policy.
    let twin_cfg = CacheConfig::new(1, config.sets * config.assoc, config.line_words)
        .with_policy(config.policy);
    let mut twin = Cache::new(twin_cfg);
    let mut seen: HashSet<u64> = HashSet::new();
    let mut out = MissBreakdown::default();
    for addr in trace {
        out.accesses += 1;
        let hit = cache.access(addr);
        let twin_hit = twin.access(addr);
        if hit {
            continue;
        }
        let line = config.block_of(addr);
        if seen.insert(line) {
            out.compulsory += 1;
        } else if twin_hit {
            out.conflict += 1;
        } else {
            out.capacity += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_is_all_compulsory() {
        let b = classify_misses(CacheConfig::new(8, 2, 4), 0..4096u64);
        assert_eq!(b.capacity, 0);
        assert_eq!(b.conflict, 0);
        assert_eq!(b.compulsory, 1024); // 4096 words / 4-word lines
    }

    #[test]
    fn working_set_larger_than_cache_is_capacity() {
        // Loop over 64 lines through a 16-line fully-associative-equal cache
        // with LRU: everything misses; after warmup they are capacity.
        let trace: Vec<u64> = (0..10u64).flat_map(|_| 0..64).collect();
        let b = classify_misses(CacheConfig::new(16, 1, 1), trace);
        assert_eq!(b.compulsory, 64);
        assert!(b.capacity > 0);
        assert!(b.capacity > b.conflict, "LRU loop thrashing should be mostly capacity: {b:?}");
    }

    #[test]
    fn ping_pong_in_one_set_is_conflict() {
        let trace: Vec<u64> = (0..50u64).flat_map(|_| [0u64, 64]).collect();
        // 64 lines map: line 0 and line 64 both to set 0 of 64 sets.
        let b = classify_misses(CacheConfig::new(64, 1, 1), trace);
        assert_eq!(b.compulsory, 2);
        assert_eq!(b.capacity, 0);
        assert_eq!(b.conflict, 98);
        assert!(b.conflict_share() > 0.9);
    }

    #[test]
    fn breakdown_sums_to_simulator_misses() {
        let trace: Vec<u64> =
            (0..20_000u64).map(|i| (i.wrapping_mul(2654435761) >> 16) % 4096).collect();
        let cfg = CacheConfig::new(32, 2, 2);
        let b = classify_misses(cfg, trace.iter().copied());
        let direct = crate::sim::simulate(cfg, trace.iter().copied());
        assert_eq!(b.total(), direct.misses);
        assert_eq!(b.accesses, direct.accesses);
    }

    #[test]
    fn breakdown_sums_hold_for_every_policy() {
        // The decomposition is exhaustive and exclusive under any
        // policy because it is computed per access against the
        // policy-matched fully-associative twin.
        let trace: Vec<u64> =
            (0..15_000u64).map(|i| (i.wrapping_mul(2654435761) >> 16) % 4096).collect();
        for p in crate::Policy::all() {
            let cfg = CacheConfig::new(32, 2, 2).with_policy(p);
            let b = classify_misses(cfg, trace.iter().copied());
            let direct = crate::sim::simulate(cfg, trace.iter().copied());
            assert_eq!(b.total(), direct.misses, "{p}");
            assert_eq!(b.accesses, direct.accesses, "{p}");
        }
    }

    #[test]
    fn empty_trace_is_empty_breakdown() {
        let b = classify_misses(CacheConfig::new(4, 1, 1), std::iter::empty());
        assert_eq!(b, MissBreakdown::default());
        assert_eq!(b.conflict_share(), 0.0);
    }
}
