//! Multi-level memory hierarchy: L1 instruction + L1 data + L2 unified.
//!
//! The paper requires inclusion between the L1 caches and the unified L2,
//! which "decouples the behavior of the unified cache from the
//! data/instruction caches in the sense that the unified cache misses will
//! not be affected by the presence of the data/instruction caches.
//! Therefore, the unified cache misses may be obtained independently […] by
//! simulating the entire address trace." [`Hierarchy`] implements exactly
//! that evaluation model: the L2 observes the *full* reference stream, and
//! stall cycles combine per-level miss penalties.

use crate::config::CacheConfig;
use crate::sim::{Cache, MissStats};
use mhe_trace::{Access, AccessKind};

/// Miss penalties in processor cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Penalties {
    /// Cycles to fill an L1 miss that hits in L2.
    pub l1_miss: u64,
    /// Additional cycles when the reference also misses in L2.
    pub l2_miss: u64,
}

impl Default for Penalties {
    fn default() -> Self {
        // Late-1990s embedded-system flavored defaults.
        Self { l1_miss: 10, l2_miss: 50 }
    }
}

/// Geometry of a whole memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryDesign {
    /// L1 instruction cache.
    pub icache: CacheConfig,
    /// L1 data cache.
    pub dcache: CacheConfig,
    /// L2 unified cache.
    pub ucache: CacheConfig,
}

impl MemoryDesign {
    /// Whether L2 capacity can uphold inclusion over both L1s (necessary
    /// condition: L2 at least as large as each L1, with line size no
    /// smaller).
    pub fn satisfies_inclusion(&self) -> bool {
        self.ucache.size_bytes() >= self.icache.size_bytes()
            && self.ucache.size_bytes() >= self.dcache.size_bytes()
            && self.ucache.line_words >= self.icache.line_words
            && self.ucache.line_words >= self.dcache.line_words
    }
}

/// Simulates an L1I/L1D/L2 system over a joint trace.
///
/// # Examples
///
/// ```
/// use mhe_cache::{hierarchy::{Hierarchy, MemoryDesign, Penalties}, CacheConfig};
/// use mhe_trace::Access;
/// let design = MemoryDesign {
///     icache: CacheConfig::from_bytes(1024, 1, 32),
///     dcache: CacheConfig::from_bytes(1024, 1, 32),
///     ucache: CacheConfig::from_bytes(16 * 1024, 2, 64),
/// };
/// let mut h = Hierarchy::new(design, Penalties::default());
/// h.run([Access::inst(0), Access::inst(1), Access::load(0x900_0000)]);
/// assert_eq!(h.icache_stats().accesses, 2);
/// assert_eq!(h.dcache_stats().accesses, 1);
/// assert_eq!(h.ucache_stats().accesses, 3);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    icache: Cache,
    dcache: Cache,
    ucache: Cache,
    penalties: Penalties,
    stall_cycles: u64,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the design violates the inclusion precondition.
    pub fn new(design: MemoryDesign, penalties: Penalties) -> Self {
        assert!(design.satisfies_inclusion(), "memory design violates inclusion: {design:?}");
        Self {
            icache: Cache::new(design.icache),
            dcache: Cache::new(design.dcache),
            ucache: Cache::new(design.ucache),
            penalties,
            stall_cycles: 0,
        }
    }

    /// Processes one reference.
    pub fn access(&mut self, access: Access) {
        let l1_hit = match access.kind {
            AccessKind::Inst => self.icache.access(access.addr),
            AccessKind::Load | AccessKind::Store => self.dcache.access(access.addr),
        };
        // Inclusion decouples L2 behaviour from the L1s: the unified cache
        // observes the entire stream.
        let l2_hit = self.ucache.access(access.addr);
        if !l1_hit {
            self.stall_cycles += self.penalties.l1_miss;
            if !l2_hit {
                self.stall_cycles += self.penalties.l2_miss;
            }
        }
    }

    /// Processes a whole trace.
    pub fn run(&mut self, trace: impl IntoIterator<Item = Access>) {
        for a in trace {
            self.access(a);
        }
    }

    /// Accumulated stall cycles from cache misses.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Instruction-cache statistics.
    pub fn icache_stats(&self) -> MissStats {
        self.icache.stats()
    }

    /// Data-cache statistics.
    pub fn dcache_stats(&self) -> MissStats {
        self.dcache.stats()
    }

    /// Unified-cache statistics.
    pub fn ucache_stats(&self) -> MissStats {
        self.ucache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_design() -> MemoryDesign {
        MemoryDesign {
            icache: CacheConfig::from_bytes(1024, 1, 32),
            dcache: CacheConfig::from_bytes(1024, 1, 32),
            ucache: CacheConfig::from_bytes(16 * 1024, 2, 64),
        }
    }

    #[test]
    fn references_route_by_kind() {
        let mut h = Hierarchy::new(small_design(), Penalties::default());
        h.run([Access::inst(0), Access::load(1000), Access::store(1001), Access::inst(1)]);
        assert_eq!(h.icache_stats().accesses, 2);
        assert_eq!(h.dcache_stats().accesses, 2);
        assert_eq!(h.ucache_stats().accesses, 4);
    }

    #[test]
    fn stall_cycles_reflect_miss_penalties() {
        let p = Penalties { l1_miss: 10, l2_miss: 50 };
        let mut h = Hierarchy::new(small_design(), p);
        // One cold access: L1 miss + L2 miss.
        h.access(Access::inst(0));
        assert_eq!(h.stall_cycles(), 60);
        // Same line again: all hits.
        h.access(Access::inst(1));
        assert_eq!(h.stall_cycles(), 60);
    }

    #[test]
    fn l1_miss_l2_hit_costs_only_l1_penalty() {
        let p = Penalties { l1_miss: 10, l2_miss: 50 };
        let mut h = Hierarchy::new(small_design(), p);
        h.access(Access::inst(0)); // both miss: 60
                                   // Evict line 0 from the direct-mapped 1KB L1 (wraps every 256
                                   // words) with addresses that map to *different* L2 sets, so the
                                   // 16KB L2 retains it.
        for i in 1..4u64 {
            h.access(Access::inst(i * 256));
        }
        let before = h.stall_cycles();
        h.access(Access::inst(0)); // L1 conflict miss, L2 hit
        assert_eq!(h.stall_cycles() - before, 10);
    }

    #[test]
    #[should_panic(expected = "inclusion")]
    fn inclusion_violation_rejected() {
        let bad = MemoryDesign {
            icache: CacheConfig::from_bytes(16 * 1024, 2, 32),
            dcache: CacheConfig::from_bytes(1024, 1, 32),
            ucache: CacheConfig::from_bytes(8 * 1024, 2, 64),
        };
        let _ = Hierarchy::new(bad, Penalties::default());
    }

    #[test]
    fn inclusion_check_considers_line_sizes() {
        let bad = MemoryDesign {
            icache: CacheConfig::from_bytes(1024, 1, 64),
            dcache: CacheConfig::from_bytes(1024, 1, 32),
            ucache: CacheConfig::from_bytes(16 * 1024, 2, 32),
        };
        assert!(!bad.satisfies_inclusion());
        assert!(small_design().satisfies_inclusion());
    }
}
