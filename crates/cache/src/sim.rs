//! Direct set-associative cache simulation under any replacement policy.
//!
//! [`Cache`] is the plain, one-configuration-at-a-time simulator: it serves
//! as the correctness oracle for the single-pass simulator and as the
//! building block of the multi-level hierarchy. The replacement policy is
//! taken from [`CacheConfig::policy`]; each set runs its own
//! [`crate::policy::SetEngine`].

use crate::config::CacheConfig;
use crate::policy::{ReplacementPolicy, SetEngine};
use mhe_trace::{Access, StreamKind};

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissStats {
    /// Total references.
    pub accesses: u64,
    /// References that missed.
    pub misses: u64,
}

impl MissStats {
    /// Miss rate in `[0, 1]`; 0 for an empty trace.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hits.
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }
}

/// A set-associative cache simulator (any [`crate::Policy`]).
///
/// # Examples
///
/// ```
/// use mhe_cache::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::new(2, 1, 1));
/// assert!(!c.access(0)); // cold miss
/// assert!(c.access(0));  // hit
/// assert!(!c.access(2)); // maps to set 0, evicts line 0
/// assert!(!c.access(0)); // conflict miss
/// assert_eq!(c.stats().misses, 3);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per-set replacement engines, indexed by set.
    sets: Vec<SetEngine>,
    stats: MissStats,
}

impl Cache {
    /// Creates an empty cache running `config.policy`.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            sets: (0..u64::from(config.sets))
                .map(|i| config.policy.new_set(config.assoc, i))
                .collect(),
            config,
            stats: MissStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// References a word address; returns whether it hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let block = self.config.block_of(addr);
        let set = &mut self.sets[(block % u64::from(self.config.sets)) as usize];
        if set.lookup(block) {
            true
        } else {
            self.stats.misses += 1;
            set.insert(block);
            false
        }
    }

    /// Runs a whole trace through the cache.
    pub fn run(&mut self, trace: impl IntoIterator<Item = u64>) -> MissStats {
        for addr in trace {
            self.access(addr);
        }
        self.stats
    }

    /// Feeds a chunk of an access stream, admitting only the references
    /// that belong to `stream`.
    ///
    /// State carries across calls, so captured traces can be replayed
    /// chunk by chunk; chunking never changes the resulting statistics.
    pub fn run_stream(
        &mut self,
        stream: StreamKind,
        chunk: impl IntoIterator<Item = Access>,
    ) -> MissStats {
        for a in chunk {
            if stream.admits(a.kind) {
                self.access(a.addr);
            }
        }
        self.stats
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MissStats {
        self.stats
    }

    /// Whether a word's line is currently resident.
    pub fn contains(&self, addr: u64) -> bool {
        let block = self.config.block_of(addr);
        self.sets[(block % u64::from(self.config.sets)) as usize].contains(block)
    }

    /// Clears contents and statistics; a random policy's victim stream
    /// rewinds, so a reset cache replays a trace identically.
    pub fn reset(&mut self) {
        self.sets.iter_mut().for_each(ReplacementPolicy::clear);
        self.stats = MissStats::default();
    }
}

/// Simulates one configuration over a trace, starting cold.
///
/// Convenience for experiments; equivalent to `Cache::new(cfg).run(trace)`.
pub fn simulate(config: CacheConfig, trace: impl IntoIterator<Item = u64>) -> MissStats {
    Cache::new(config).run(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_all_misses() {
        let mut c = Cache::new(CacheConfig::new(4, 2, 4));
        let misses = (0..32).map(|i| c.access(i * 4)).filter(|h| !h).count();
        assert_eq!(misses, 32);
    }

    #[test]
    fn spatial_locality_within_line_hits() {
        let mut c = Cache::new(CacheConfig::new(4, 1, 8));
        assert!(!c.access(16)); // miss loads words 16..24
        for w in 17..24 {
            assert!(c.access(w), "word {w} should hit");
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(CacheConfig::new(1, 2, 1));
        c.access(0);
        c.access(1);
        c.access(0); // 0 now MRU; LRU is 1
        assert!(!c.access(2)); // evicts 1
        assert!(c.access(0));
        assert!(!c.access(1));
    }

    #[test]
    fn full_associativity_has_no_conflicts() {
        // 1 set x 8 ways: 8 distinct lines all fit.
        let mut c = Cache::new(CacheConfig::new(1, 8, 1));
        for i in 0..8 {
            c.access(i);
        }
        for i in 0..8 {
            assert!(c.access(i), "line {i} should be resident");
        }
        assert_eq!(c.stats().misses, 8);
    }

    #[test]
    fn full_associativity_is_policy_independent_below_capacity() {
        // Until capacity is exceeded no policy ever evicts, so a fully
        // associative cache shows compulsory misses only — identically
        // for LRU, FIFO, PLRU, and random.
        for policy in crate::Policy::all() {
            let mut c = Cache::new(CacheConfig::new(1, 8, 1).with_policy(policy));
            for round in 0..3 {
                for i in 0..8 {
                    assert_eq!(c.access(i), round > 0, "{policy}: line {i} round {round}");
                }
            }
            assert_eq!(c.stats().misses, 8, "{policy}: compulsory misses only");
        }
    }

    #[test]
    fn higher_associativity_never_more_misses_on_loops() {
        // LRU inclusion property: for the same sets/line, misses are
        // monotonically non-increasing in associativity.
        let trace: Vec<u64> = (0..10_000u64).map(|i| (i * 37) % 512).collect();
        let mut prev = u64::MAX;
        for assoc in [1, 2, 4, 8] {
            let s = simulate(CacheConfig::new(16, assoc, 2), trace.iter().copied());
            assert!(s.misses <= prev, "assoc {assoc}: {} > {prev}", s.misses);
            prev = s.misses;
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = Cache::new(CacheConfig::new(2, 1, 1));
        c.access(0);
        c.access(1);
        c.reset();
        assert_eq!(c.stats(), MissStats::default());
        assert!(!c.contains(0));
    }

    #[test]
    fn run_stream_matches_filtered_run() {
        let accesses: Vec<Access> = (0..5_000u64)
            .map(|i| match i % 3 {
                0 => Access::inst((i * 37) % 512),
                1 => Access::load((i * 13) % 900),
                _ => Access::store((i * 7) % 300),
            })
            .collect();
        for stream in [StreamKind::Instruction, StreamKind::Data, StreamKind::Unified] {
            let direct = simulate(
                CacheConfig::new(8, 2, 4),
                accesses.iter().filter(|a| stream.admits(a.kind)).map(|a| a.addr),
            );
            let mut chunked = Cache::new(CacheConfig::new(8, 2, 4));
            for chunk in accesses.chunks(123) {
                chunked.run_stream(stream, chunk.iter().copied());
            }
            assert_eq!(chunked.stats(), direct, "{stream:?}");
        }
    }

    #[test]
    fn zero_length_trace_is_identity_for_every_policy() {
        for p in crate::Policy::all() {
            let s = simulate(CacheConfig::new(4, 2, 2).with_policy(p), std::iter::empty());
            assert_eq!(s, MissStats::default(), "{p}");
        }
    }

    #[test]
    fn random_policy_reset_replays_identically() {
        let trace: Vec<u64> = (0..20_000u64).map(|i| (i.wrapping_mul(48271)) % 4096).collect();
        let cfg = CacheConfig::new(8, 4, 2).with_policy(crate::Policy::Random(99));
        let mut c = Cache::new(cfg);
        let first = c.run(trace.iter().copied());
        c.reset();
        let second = c.run(trace.iter().copied());
        assert_eq!(first, second, "reset must rewind the victim stream");
        // And a fresh instance agrees too (no hidden global state).
        assert_eq!(simulate(cfg, trace.iter().copied()), first);
    }

    #[test]
    fn single_set_cache_works_for_every_policy() {
        // One set, 4 ways: a working set of 4 lines fits under any
        // policy, so only the 4 compulsory misses remain.
        let trace: Vec<u64> = (0..50u64).map(|i| i % 4).collect();
        for p in crate::Policy::all() {
            let s = simulate(CacheConfig::new(1, 4, 1).with_policy(p), trace.iter().copied());
            assert_eq!(s.misses, 4, "{p}");
        }
    }

    #[test]
    fn miss_rate_bounds() {
        let s = MissStats { accesses: 10, misses: 3 };
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert_eq!(s.hits(), 7);
        assert_eq!(MissStats::default().miss_rate(), 0.0);
    }
}
