//! Cache simulation substrate: direct, single-pass, and hierarchical.
//!
//! Three simulators reproduce the paper's memory-simulation toolchain:
//!
//! * [`sim::Cache`] — a plain set-associative simulator (the oracle),
//!   generic over the replacement [`Policy`];
//! * [`single_pass::SinglePassSim`] — the Cheetah role: every configuration
//!   sharing a line size and policy in one pass over the trace (LRU stack
//!   distances, a FIFO wavetable, or a direct fallback grid);
//! * [`hierarchy::Hierarchy`] — an inclusion-respecting L1I/L1D/L2 system
//!   with a stall-cycle model.
//!
//! All addresses are 4-byte-word addresses; line sizes are powers of two.
//!
//! # Quick start
//!
//! ```
//! use mhe_cache::single_pass::SinglePassSim;
//! // Simulate every (sets, assoc) combination with 32-byte lines at once.
//! let mut sim = SinglePassSim::new(8, &[32, 64, 128, 256], 4);
//! sim.run((0..100_000u64).map(|i| (i * 3) % 8192));
//! let m = sim.stats(64, 2);
//! assert!(m.miss_rate() < 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod classify;
pub mod config;
pub mod hierarchy;
pub mod policy;
pub mod sim;
pub mod single_pass;
pub mod stack;
pub mod write;

pub use classify::{classify_misses, MissBreakdown};
pub use config::CacheConfig;
pub use hierarchy::{Hierarchy, MemoryDesign, Penalties};
pub use policy::{Policy, ReplacementPolicy, SetEngine};
pub use sim::{simulate, Cache, MissStats};
pub use single_pass::SinglePassSim;
pub use stack::StackSim;

// The parallel evaluation engine (mhe-core) moves simulator state across
// scoped worker threads; keep that guarantee explicit so a future field
// (an Rc, a raw pointer) can't silently break the fan-out.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SinglePassSim>();
    assert_send_sync::<Cache>();
    assert_send_sync::<Hierarchy>();
    assert_send_sync::<CacheConfig>();
    assert_send_sync::<MissStats>();
    assert_send_sync::<Policy>();
    assert_send_sync::<SetEngine>();
};
