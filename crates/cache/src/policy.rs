//! Replacement policies and the per-set engines that implement them.
//!
//! A [`Policy`] names *which* line a set evicts on a miss; a
//! [`ReplacementPolicy`] engine is the stateful per-set machine that
//! answers lookups and picks victims. Every simulator in this crate —
//! the direct oracle [`crate::sim::Cache`], the write-aware
//! [`crate::write::WriteCache`], and the fallback path of
//! [`crate::single_pass::SinglePassSim`] — drives the *same* engines via
//! [`Policy::new_set`], so a policy cannot mean different things in
//! different simulators.
//!
//! Four policies are provided:
//!
//! * [`Policy::Lru`] — true least-recently-used (the paper's baseline);
//! * [`Policy::Fifo`] — first-in-first-out: hits do not refresh a line;
//! * [`Policy::PlruTree`] — tree pseudo-LRU, the common hardware
//!   approximation (one bit per internal tree node);
//! * [`Policy::Random(seed)`] — uniformly random victim from a seeded
//!   per-set generator, deterministic across runs and threads.
//!
//! Determinism contract: an engine's behaviour is a pure function of the
//! policy, the set geometry, the set index, and the access sequence.
//! Nothing depends on wall-clock, global RNG state, or thread identity,
//! which is what lets the evaluator fan simulations out across threads
//! and still produce bit-identical results.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

/// Seed used when a random policy is requested without an explicit seed
/// (e.g. `--policy random`).
pub const DEFAULT_RANDOM_SEED: u64 = 0x5EED_CAFE;

/// A cache replacement policy.
///
/// `Policy` is `Copy` and rides inside [`crate::CacheConfig`], so two
/// configurations with the same geometry but different policies compare
/// unequal, hash differently, and key distinct entries in measured-miss
/// tables and the on-disk evaluation cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Policy {
    /// Least-recently-used: a hit moves the line to MRU.
    #[default]
    Lru,
    /// First-in-first-out: victims leave in insertion order; hits do not
    /// change the queue.
    Fifo,
    /// Tree pseudo-LRU: one direction bit per internal node of a binary
    /// tree over the ways. For non-power-of-two associativity the victim
    /// leaf is clamped to the last real way (deterministic, documented
    /// in DESIGN.md §13).
    PlruTree,
    /// Random victim selection from a per-set deterministic generator
    /// seeded with this value.
    Random(u64),
}

impl Policy {
    /// Whether the single-pass simulator has a native (one-structure)
    /// formulation for this policy: LRU via Mattson stacks, FIFO via a
    /// DEW-style insertion wavetable. Other policies fall back to
    /// per-configuration direct simulation inside the same pass.
    pub fn single_pass_native(self) -> bool {
        matches!(self, Policy::Lru | Policy::Fifo)
    }

    /// Builds the per-set replacement engine for a set of `assoc` ways.
    ///
    /// `set_index` individualizes the random stream per set so striped
    /// address patterns don't see correlated victims.
    pub fn new_set(self, assoc: u32, set_index: u64) -> SetEngine {
        match self {
            Policy::Lru => SetEngine::Lru(LruSet::new(assoc)),
            Policy::Fifo => SetEngine::Fifo(FifoSet::new(assoc)),
            Policy::PlruTree => SetEngine::Plru(PlruSet::new(assoc)),
            Policy::Random(seed) => SetEngine::Random(RandomSet::new(assoc, seed, set_index)),
        }
    }

    /// All stock policies, with the default random seed — handy for
    /// differential tests that must cover every variant.
    pub fn all() -> [Policy; 4] {
        [Policy::Lru, Policy::Fifo, Policy::PlruTree, Policy::Random(DEFAULT_RANDOM_SEED)]
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Lru => write!(f, "lru"),
            Policy::Fifo => write!(f, "fifo"),
            Policy::PlruTree => write!(f, "plru"),
            Policy::Random(seed) => write!(f, "random:{seed:#x}"),
        }
    }
}

impl FromStr for Policy {
    type Err = String;

    /// Parses `lru`, `fifo`, `plru`, `random`, or `random:SEED` where
    /// `SEED` is decimal or `0x`-prefixed hex.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "lru" => Ok(Policy::Lru),
            "fifo" => Ok(Policy::Fifo),
            "plru" => Ok(Policy::PlruTree),
            "random" => Ok(Policy::Random(DEFAULT_RANDOM_SEED)),
            other => match other.strip_prefix("random:") {
                Some(seed) => {
                    let parsed = match seed.strip_prefix("0x") {
                        Some(hex) => u64::from_str_radix(hex, 16),
                        None => seed.parse(),
                    };
                    parsed
                        .map(Policy::Random)
                        .map_err(|_| format!("bad random seed {seed:?} in policy {other:?}"))
                }
                None => Err(format!(
                    "unknown policy {other:?} (expected lru, fifo, plru, random[:SEED])"
                )),
            },
        }
    }
}

/// The per-set state machine behind one cache set.
///
/// `lookup` answers a reference (updating recency state on a hit);
/// `insert` admits a missed block and returns the evicted one, which is
/// how write-back simulation learns about dirty victims.
pub trait ReplacementPolicy {
    /// References `block`; returns whether it was resident. A hit may
    /// update replacement state (LRU recency, PLRU direction bits).
    fn lookup(&mut self, block: u64) -> bool;

    /// Inserts `block` after a miss, evicting a victim if the set is
    /// full; returns the victim. Callers must only insert blocks that
    /// just missed.
    fn insert(&mut self, block: u64) -> Option<u64>;

    /// Residency probe that never perturbs replacement state.
    fn contains(&self, block: u64) -> bool;

    /// Number of resident lines.
    fn resident(&self) -> usize;

    /// Empties the set and rewinds internal state (the random stream
    /// restarts, so a cleared engine replays identically).
    fn clear(&mut self);
}

/// True-LRU set: a recency-ordered vector, MRU first.
#[derive(Debug, Clone)]
pub struct LruSet {
    cap: usize,
    ways: Vec<u64>,
}

impl LruSet {
    fn new(assoc: u32) -> Self {
        assert!(assoc >= 1, "associativity must be at least 1");
        Self { cap: assoc as usize, ways: Vec::with_capacity(assoc as usize) }
    }
}

impl ReplacementPolicy for LruSet {
    fn lookup(&mut self, block: u64) -> bool {
        if let Some(pos) = self.ways.iter().position(|&b| b == block) {
            self.ways[..=pos].rotate_right(1);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, block: u64) -> Option<u64> {
        let evicted = if self.ways.len() == self.cap { self.ways.pop() } else { None };
        self.ways.insert(0, block);
        evicted
    }

    fn contains(&self, block: u64) -> bool {
        self.ways.contains(&block)
    }

    fn resident(&self) -> usize {
        self.ways.len()
    }

    fn clear(&mut self) {
        self.ways.clear();
    }
}

/// FIFO set: a queue in insertion order; hits don't touch it.
#[derive(Debug, Clone)]
pub struct FifoSet {
    cap: usize,
    ways: VecDeque<u64>,
}

impl FifoSet {
    fn new(assoc: u32) -> Self {
        assert!(assoc >= 1, "associativity must be at least 1");
        Self { cap: assoc as usize, ways: VecDeque::with_capacity(assoc as usize) }
    }
}

impl ReplacementPolicy for FifoSet {
    fn lookup(&mut self, block: u64) -> bool {
        self.ways.contains(&block)
    }

    fn insert(&mut self, block: u64) -> Option<u64> {
        let evicted = if self.ways.len() == self.cap { self.ways.pop_front() } else { None };
        self.ways.push_back(block);
        evicted
    }

    fn contains(&self, block: u64) -> bool {
        self.ways.contains(&block)
    }

    fn resident(&self) -> usize {
        self.ways.len()
    }

    fn clear(&mut self) {
        self.ways.clear();
    }
}

/// Tree pseudo-LRU set.
///
/// One direction bit per internal node of a binary tree whose leaves are
/// the ways (padded to the next power of two). An access flips every
/// node on its path to point *away* from the accessed way; the victim is
/// found by following the bits from the root. Ways fill in index order
/// before any eviction happens; with a non-power-of-two way count the
/// victim leaf is clamped to the last real way.
#[derive(Debug, Clone)]
pub struct PlruSet {
    cap: usize,
    /// Leaf count: `cap` rounded up to a power of two.
    leaves: usize,
    /// Direction bits, heap-indexed from 1 (bit set = victim on the
    /// right). Bit 0 is unused.
    bits: u64,
    /// `ways[i]` is the block in way `i`; ways fill front to back.
    ways: Vec<u64>,
}

impl PlruSet {
    fn new(assoc: u32) -> Self {
        assert!(assoc >= 1, "associativity must be at least 1");
        assert!(assoc <= 64, "tree PLRU supports at most 64 ways");
        let cap = assoc as usize;
        Self { cap, leaves: cap.next_power_of_two(), bits: 0, ways: Vec::with_capacity(cap) }
    }

    /// Points every node on `way`'s root path away from it.
    fn touch(&mut self, way: usize) {
        let (mut lo, mut hi, mut node) = (0usize, self.leaves, 1usize);
        while hi - lo > 1 {
            let mid = usize::midpoint(lo, hi);
            let right = way >= mid;
            if right {
                self.bits &= !(1u64 << node); // protect right: victim left
                lo = mid;
            } else {
                self.bits |= 1u64 << node; // protect left: victim right
                hi = mid;
            }
            node = 2 * node + usize::from(right);
        }
    }

    /// Follows the direction bits from the root to the victim way.
    fn victim(&self) -> usize {
        let (mut lo, mut hi, mut node) = (0usize, self.leaves, 1usize);
        while hi - lo > 1 {
            let mid = usize::midpoint(lo, hi);
            let right = (self.bits >> node) & 1 == 1;
            if right {
                lo = mid;
            } else {
                hi = mid;
            }
            node = 2 * node + usize::from(right);
        }
        // Padding leaves (non-power-of-two associativity) clamp to the
        // last real way.
        lo.min(self.cap - 1)
    }
}

impl ReplacementPolicy for PlruSet {
    fn lookup(&mut self, block: u64) -> bool {
        if let Some(way) = self.ways.iter().position(|&b| b == block) {
            self.touch(way);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, block: u64) -> Option<u64> {
        if self.ways.len() < self.cap {
            let way = self.ways.len();
            self.ways.push(block);
            self.touch(way);
            None
        } else {
            let way = self.victim();
            let evicted = std::mem::replace(&mut self.ways[way], block);
            self.touch(way);
            Some(evicted)
        }
    }

    fn contains(&self, block: u64) -> bool {
        self.ways.contains(&block)
    }

    fn resident(&self) -> usize {
        self.ways.len()
    }

    fn clear(&mut self) {
        self.ways.clear();
        self.bits = 0;
    }
}

/// Random-replacement set with a private SplitMix64 stream.
///
/// The stream is seeded from `(policy seed, set index)`, so every
/// instance of the same configuration — on any thread, in any process —
/// draws the same victim sequence. [`ReplacementPolicy::clear`] rewinds
/// the stream to its initial state.
#[derive(Debug, Clone)]
pub struct RandomSet {
    cap: usize,
    ways: Vec<u64>,
    /// Initial stream state, restored by `clear`.
    seed_state: u64,
    state: u64,
}

impl RandomSet {
    fn new(assoc: u32, seed: u64, set_index: u64) -> Self {
        assert!(assoc >= 1, "associativity must be at least 1");
        // Decorrelate per-set streams: finalize (seed, set) through one
        // SplitMix64 round.
        let mut s = seed ^ (set_index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        s = splitmix64(&mut s);
        Self {
            cap: assoc as usize,
            ways: Vec::with_capacity(assoc as usize),
            seed_state: s,
            state: s,
        }
    }
}

/// One SplitMix64 step: advances `state` and returns the output word.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ReplacementPolicy for RandomSet {
    fn lookup(&mut self, block: u64) -> bool {
        self.ways.contains(&block)
    }

    fn insert(&mut self, block: u64) -> Option<u64> {
        if self.ways.len() < self.cap {
            self.ways.push(block);
            None
        } else {
            // Draw only on evictions so hit-heavy traces don't desync
            // the stream between otherwise-identical runs.
            let way = (splitmix64(&mut self.state) % self.cap as u64) as usize;
            Some(std::mem::replace(&mut self.ways[way], block))
        }
    }

    fn contains(&self, block: u64) -> bool {
        self.ways.contains(&block)
    }

    fn resident(&self) -> usize {
        self.ways.len()
    }

    fn clear(&mut self) {
        self.ways.clear();
        self.state = self.seed_state;
    }
}

/// Enum dispatch over the concrete set engines.
///
/// An enum (rather than `Box<dyn ReplacementPolicy>`) keeps sets
/// `Clone + Send + Sync` for the parallel fan-out and avoids a heap
/// allocation per set.
#[derive(Debug, Clone)]
pub enum SetEngine {
    /// True LRU.
    Lru(LruSet),
    /// FIFO.
    Fifo(FifoSet),
    /// Tree pseudo-LRU.
    Plru(PlruSet),
    /// Seeded random.
    Random(RandomSet),
}

impl ReplacementPolicy for SetEngine {
    fn lookup(&mut self, block: u64) -> bool {
        match self {
            SetEngine::Lru(s) => s.lookup(block),
            SetEngine::Fifo(s) => s.lookup(block),
            SetEngine::Plru(s) => s.lookup(block),
            SetEngine::Random(s) => s.lookup(block),
        }
    }

    fn insert(&mut self, block: u64) -> Option<u64> {
        match self {
            SetEngine::Lru(s) => s.insert(block),
            SetEngine::Fifo(s) => s.insert(block),
            SetEngine::Plru(s) => s.insert(block),
            SetEngine::Random(s) => s.insert(block),
        }
    }

    fn contains(&self, block: u64) -> bool {
        match self {
            SetEngine::Lru(s) => s.contains(block),
            SetEngine::Fifo(s) => s.contains(block),
            SetEngine::Plru(s) => s.contains(block),
            SetEngine::Random(s) => s.contains(block),
        }
    }

    fn resident(&self) -> usize {
        match self {
            SetEngine::Lru(s) => s.resident(),
            SetEngine::Fifo(s) => s.resident(),
            SetEngine::Plru(s) => s.resident(),
            SetEngine::Random(s) => s.resident(),
        }
    }

    fn clear(&mut self) {
        match self {
            SetEngine::Lru(s) => s.clear(),
            SetEngine::Fifo(s) => s.clear(),
            SetEngine::Plru(s) => s.clear(),
            SetEngine::Random(s) => s.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(engine: &mut SetEngine, blocks: &[u64]) -> u64 {
        let mut misses = 0;
        for &b in blocks {
            if !engine.lookup(b) {
                misses += 1;
                engine.insert(b);
            }
        }
        misses
    }

    #[test]
    fn display_fromstr_roundtrip() {
        for p in
            [Policy::Lru, Policy::Fifo, Policy::PlruTree, Policy::Random(7), Policy::Random(0xAB)]
        {
            let s = p.to_string();
            assert_eq!(s.parse::<Policy>().unwrap(), p, "roundtrip {s}");
        }
        assert_eq!("random".parse::<Policy>().unwrap(), Policy::Random(DEFAULT_RANDOM_SEED));
        assert_eq!("random:12".parse::<Policy>().unwrap(), Policy::Random(12));
        assert_eq!("random:0x1f".parse::<Policy>().unwrap(), Policy::Random(0x1f));
        assert!("mru".parse::<Policy>().is_err());
        assert!("random:zz".parse::<Policy>().is_err());
    }

    #[test]
    fn assoc_one_every_policy_is_direct_mapped() {
        // With a single way there is nothing to choose: all policies
        // must produce identical miss counts on any trace.
        let blocks: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 13).collect();
        let baseline = drive(&mut Policy::Lru.new_set(1, 0), &blocks);
        for p in Policy::all() {
            let mut e = p.new_set(1, 0);
            assert_eq!(drive(&mut e, &blocks), baseline, "{p}");
            assert_eq!(e.resident(), 1);
        }
    }

    #[test]
    fn lru_and_fifo_diverge_on_refresh() {
        // 2 ways: A B A C — LRU protects the re-referenced A (evicts B);
        // FIFO evicts A, the oldest insertion.
        for (p, a_resident) in [(Policy::Lru, true), (Policy::Fifo, false)] {
            let mut e = p.new_set(2, 0);
            drive(&mut e, &[10, 20, 10, 30]);
            assert_eq!(e.contains(10), a_resident, "{p}");
        }
    }

    #[test]
    fn plru_single_access_path_protects_accessed_way() {
        // 4 ways filled with 0..4 (touch order leaves way 3 most
        // protected); accessing way 0 then inserting must not evict 0.
        let mut e = Policy::PlruTree.new_set(4, 0);
        for b in 0..4u64 {
            assert!(e.insert(b).is_none());
        }
        assert!(e.lookup(0));
        let evicted = e.insert(99).expect("full set evicts");
        assert_ne!(evicted, 0, "PLRU must not evict the just-touched way");
        assert!(e.contains(0) && e.contains(99));
    }

    #[test]
    fn plru_non_power_of_two_assoc_is_deterministic() {
        let run = || {
            let mut e = Policy::PlruTree.new_set(3, 5);
            let blocks: Vec<u64> = (0..200u64).map(|i| (i * 31) % 9).collect();
            let m = drive(&mut e, &blocks);
            (m, (0..9u64).filter(|&b| e.contains(b)).collect::<Vec<_>>())
        };
        assert_eq!(run(), run());
        assert_eq!(run().1.len(), 3);
    }

    #[test]
    fn random_streams_are_deterministic_and_rewound_by_clear() {
        let blocks: Vec<u64> = (0..1000u64).map(|i| (i * 2654435761) % 23).collect();
        let mut a = Policy::Random(42).new_set(4, 9);
        let mut b = Policy::Random(42).new_set(4, 9);
        let misses = drive(&mut a, &blocks);
        assert_eq!(misses, drive(&mut b, &blocks), "identical instances must agree");
        let first: Vec<u64> = (0..23u64).filter(|&x| a.contains(x)).collect();
        a.clear();
        assert_eq!(a.resident(), 0);
        assert_eq!(drive(&mut a, &blocks), misses, "clear must replay identically");
        let again: Vec<u64> = (0..23u64).filter(|&x| a.contains(x)).collect();
        assert_eq!(first, again, "clear must rewind the random stream");
    }

    #[test]
    fn random_streams_differ_across_sets_and_seeds() {
        // Not a hard guarantee for every seed pair, but these
        // particular streams must be decorrelated.
        let blocks: Vec<u64> = (0..400u64).map(|i| (i * 7) % 11).collect();
        let contents = |seed: u64, set: u64| {
            let mut e = Policy::Random(seed).new_set(2, set);
            drive(&mut e, &blocks);
            (0..11u64).filter(|&x| e.contains(x)).collect::<Vec<_>>()
        };
        assert!(
            contents(1, 0) != contents(1, 1) || contents(2, 0) != contents(2, 1),
            "per-set streams should decorrelate"
        );
    }

    #[test]
    fn insert_reports_victim_for_every_policy() {
        for p in Policy::all() {
            let mut e = p.new_set(2, 0);
            assert_eq!(e.insert(1), None);
            assert_eq!(e.insert(2), None);
            let v = e.insert(3).unwrap_or_else(|| panic!("{p}: full set must evict"));
            assert!(v == 1 || v == 2, "{p}: victim {v} must be a resident block");
            assert!(!e.contains(v), "{p}: victim must be gone");
            assert_eq!(e.resident(), 2);
        }
    }

    #[test]
    fn single_pass_native_flags() {
        assert!(Policy::Lru.single_pass_native());
        assert!(Policy::Fifo.single_pass_native());
        assert!(!Policy::PlruTree.single_pass_native());
        assert!(!Policy::Random(0).single_pass_native());
    }
}
