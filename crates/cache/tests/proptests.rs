//! Property tests: the single-pass simulator is exactly equivalent to
//! direct simulation, and LRU inclusion properties hold.

use mhe_cache::{simulate, CacheConfig, SinglePassSim};
use proptest::prelude::*;

/// Traces mixing streams, hot sets, and random addresses.
fn trace_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..256,                               // hot region
            0u64..65_536,                            // wider region
            (0u64..4096).prop_map(|x| x * 7 % 4096), // strided
        ],
        50..2000,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_pass_equals_direct_everywhere(
        trace in trace_strategy(),
        line_pow in 0u32..4,
        max_assoc in 1u32..6,
    ) {
        let line = 1u32 << line_pow;
        let set_counts = [4u32, 16, 64];
        let mut sp = SinglePassSim::new(line, &set_counts, max_assoc);
        sp.run(trace.iter().copied());
        for &sets in &set_counts {
            for assoc in 1..=max_assoc {
                let direct = simulate(CacheConfig::new(sets, assoc, line), trace.iter().copied());
                prop_assert_eq!(
                    sp.misses(sets, assoc),
                    direct.misses,
                    "S={} A={} L={}", sets, assoc, line
                );
            }
        }
    }

    #[test]
    fn lru_inclusion_in_associativity(
        trace in trace_strategy(),
        sets_pow in 2u32..8,
    ) {
        // For fixed sets and line, misses never increase with associativity.
        let sets = 1u32 << sets_pow;
        let mut prev = u64::MAX;
        for assoc in [1u32, 2, 4, 8] {
            let m = simulate(CacheConfig::new(sets, assoc, 4), trace.iter().copied()).misses;
            prop_assert!(m <= prev, "assoc {}: {} > {}", assoc, m, prev);
            prev = m;
        }
    }

    #[test]
    fn lru_inclusion_in_sets(
        trace in trace_strategy(),
        assoc in 1u32..5,
        line_pow in 0u32..3,
    ) {
        // Bit-selection indexing with power-of-two set counts: the blocks
        // that map to a set of the doubled cache are a subset of those that
        // map to its image set in the half-size cache, so with LRU the
        // doubled cache hits whenever the smaller one does. Misses are
        // monotone non-increasing in set count at fixed assoc and line.
        let line = 1u32 << line_pow;
        let mut prev = u64::MAX;
        for sets_pow in 2u32..=7 {
            let m = simulate(
                CacheConfig::new(1 << sets_pow, assoc, line),
                trace.iter().copied(),
            ).misses;
            prop_assert!(m <= prev, "sets {}: {} > {}", 1 << sets_pow, m, prev);
            prev = m;
        }
    }

    #[test]
    fn single_pass_respects_inclusion_in_both_axes(
        trace in trace_strategy(),
        line_pow in 0u32..3,
    ) {
        // The same two monotonicities — in associativity at fixed sets and
        // in sets at fixed associativity — read out of one single-pass
        // simulation, each point cross-checked against the direct Cache.
        // (Growing either axis grows total cache size at fixed line, so
        // together these give "misses never increase with cache size".)
        let line = 1u32 << line_pow;
        let set_counts = [8u32, 16, 32, 64];
        let max_assoc = 4;
        let mut sp = SinglePassSim::new(line, &set_counts, max_assoc);
        sp.run(trace.iter().copied());
        for &sets in &set_counts {
            let mut prev = u64::MAX;
            for assoc in 1..=max_assoc {
                let m = sp.misses(sets, assoc);
                let direct =
                    simulate(CacheConfig::new(sets, assoc, line), trace.iter().copied());
                prop_assert_eq!(m, direct.misses, "S={} A={} L={}", sets, assoc, line);
                prop_assert!(m <= prev, "assoc {} at S={}: {} > {}", assoc, sets, m, prev);
                prev = m;
            }
        }
        for assoc in 1..=max_assoc {
            let mut prev = u64::MAX;
            for &sets in &set_counts {
                let m = sp.misses(sets, assoc);
                prop_assert!(m <= prev, "sets {} at A={}: {} > {}", sets, assoc, m, prev);
                prev = m;
            }
        }
    }

    #[test]
    fn misses_bounded_by_accesses(
        trace in trace_strategy(),
        sets_pow in 0u32..8,
        assoc in 1u32..8,
        line_pow in 0u32..5,
    ) {
        let cfg = CacheConfig::new(1 << sets_pow, assoc, 1 << line_pow);
        let s = simulate(cfg, trace.iter().copied());
        prop_assert_eq!(s.accesses, trace.len() as u64);
        prop_assert!(s.misses <= s.accesses);
        // Compulsory floor: the first touch of every distinct line misses in
        // any cache, so misses >= distinct lines.
        let mut lines: Vec<u64> = trace.iter().map(|a| a / (1 << line_pow) as u64).collect();
        lines.sort_unstable();
        lines.dedup();
        prop_assert!(s.misses as usize >= lines.len());
        let _ = cfg;
    }

    #[test]
    fn doubling_line_size_never_increases_compulsory_floor(
        trace in trace_strategy(),
    ) {
        // The number of *distinct lines* halves or stays; with an infinite
        // cache (huge assoc), misses = distinct lines, so misses with larger
        // lines are <= misses with smaller lines.
        let big = CacheConfig::new(1, 1 << 16, 8);
        let small = CacheConfig::new(1, 1 << 16, 4);
        let m_big = simulate(big, trace.iter().copied()).misses;
        let m_small = simulate(small, trace.iter().copied()).misses;
        prop_assert!(m_big <= m_small);
    }
}
