//! Property tests for the interval-sampling machinery: the structural
//! invariants that must hold for *arbitrary* traces, not just the
//! benchmarks — splitting is a partition, the permutation-stable slice
//! of a signature really is permutation-stable, and the degenerate
//! configuration (one cluster, one interval spanning the trace) is
//! bit-for-bit exact against full simulation for every stream and
//! policy.

use mhe_cache::{Policy, SinglePassSim};
use mhe_sampling::{plan_trace, signature_of, split, IntervalSplitter, SampledSim, SamplingConfig};
use mhe_trace::{Access, StreamKind};
use proptest::prelude::*;

/// Strategy: one arbitrary access (any kind, bounded address space).
fn access() -> impl Strategy<Value = Access> {
    (0u64..100_000, 0u8..3).prop_map(|(addr, kind)| match kind {
        0 => Access::inst(addr),
        1 => Access::load(addr),
        _ => Access::store(addr),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interval splitting is a partition: concatenating the intervals
    /// reproduces the exact access sequence, and no interval except the
    /// last is partial.
    #[test]
    fn splitting_is_a_partition(
        trace in proptest::collection::vec(access(), 0..400),
        interval in 1usize..48,
    ) {
        let intervals = split(&trace, interval);
        let concat: Vec<Access> = intervals.iter().flatten().copied().collect();
        prop_assert_eq!(&concat, &trace, "concatenated intervals must reproduce the trace");
        for (i, iv) in intervals.iter().enumerate() {
            if i + 1 < intervals.len() {
                prop_assert_eq!(iv.len(), interval, "only the final interval may be partial");
            } else {
                prop_assert!(!iv.is_empty() && iv.len() <= interval);
            }
        }
    }

    /// The streaming splitter agrees with whole-trace splitting no
    /// matter how the trace is chunked on the way in.
    #[test]
    fn chunked_splitting_matches_whole_trace(
        trace in proptest::collection::vec(access(), 0..300),
        interval in 1usize..32,
        chunk in 1usize..64,
    ) {
        let mut streamed: Vec<Vec<Access>> = Vec::new();
        let mut splitter = IntervalSplitter::new(interval);
        for c in trace.chunks(chunk) {
            splitter.feed(c, |iv| streamed.push(iv.to_vec()));
        }
        splitter.finish(|iv| streamed.push(iv.to_vec()));
        prop_assert_eq!(streamed, split(&trace, interval));
    }

    /// The access-kind mix of a signature is permutation-stable: any
    /// reordering of an interval's accesses leaves it unchanged. (The
    /// probe miss profile is deliberately order-sensitive — it encodes
    /// temporal locality — so only the kind-mix slice is asserted.)
    #[test]
    fn kind_mix_is_permutation_stable(
        interval in proptest::collection::vec(access(), 1..200),
        seed in 0u64..u64::MAX,
    ) {
        // Deterministic Fisher-Yates driven by the drawn seed.
        let mut shuffled = interval.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let a = signature_of(&interval).kind_mix();
        let b = signature_of(&shuffled).kind_mix();
        prop_assert_eq!(a, b, "kind mix must not depend on access order");
    }

    /// `clusters = 1, interval = trace_len` degenerates to exact full
    /// simulation, bit for bit, on every stream and policy.
    #[test]
    fn degenerate_config_is_exact_bit_for_bit(
        trace in proptest::collection::vec(access(), 1..500),
        sets_pow in 0u32..5,
        assoc in 1u32..4,
        policy_idx in 0usize..2,
    ) {
        let sets = 1u32 << sets_pow;
        let policy = [Policy::Lru, Policy::Fifo][policy_idx];
        let cfg = SamplingConfig {
            interval_accesses: trace.len(),
            clusters: 1,
            warmup: 0,
            ..SamplingConfig::default()
        };
        let (plan, windows) = plan_trace(&trace, cfg);
        for stream in [StreamKind::Instruction, StreamKind::Data, StreamKind::Unified] {
            let sampled =
                SampledSim::measure(policy, 4, &[sets], assoc, stream, &plan, &windows);
            let mut exact = SinglePassSim::new_with_policy(policy, 4, &[sets], assoc);
            exact.run(trace.iter().filter(|a| stream.admits(a.kind)).map(|a| a.addr));
            for a in 1..=assoc {
                prop_assert_eq!(
                    sampled.misses(sets, a),
                    exact.misses(sets, a),
                    "{:?}/{:?} sets={} assoc={}", stream, policy, sets, a
                );
            }
        }
    }

    /// Planning is insensitive to input chunking: feeding the planner
    /// access-by-access or in one slab yields the same plan skeleton.
    #[test]
    fn planning_is_chunking_invariant(
        trace in proptest::collection::vec(access(), 0..300),
        interval in 1usize..32,
        chunk in 1usize..48,
    ) {
        let cfg = SamplingConfig {
            interval_accesses: interval,
            clusters: 4,
            warmup: 8,
            ..SamplingConfig::default()
        };
        let (whole, wins_whole) = plan_trace(&trace, cfg);
        let mut planner = mhe_sampling::SamplePlanner::new(cfg);
        for c in trace.chunks(chunk) {
            planner.feed(c);
        }
        let plan = planner.finish();
        let mut extractor = mhe_sampling::WindowExtractor::new(&plan);
        for c in trace.chunks(chunk) {
            extractor.feed(c);
        }
        let windows = extractor.finish();
        prop_assert_eq!(plan.intervals(), whole.intervals());
        prop_assert_eq!(plan.total_accesses(), whole.total_accesses());
        prop_assert_eq!(windows.len(), wins_whole.len());
        for (a, b) in windows.iter().zip(&wins_whole) {
            prop_assert_eq!(&a.warmup, &b.warmup);
            prop_assert_eq!(&a.body, &b.body);
        }
    }
}
