//! Cheap per-interval signatures.
//!
//! A signature summarizes one interval with a handful of numbers that
//! are fast to compute (a few array lookups per access, no hashing) yet
//! correlate with the interval's cache behaviour:
//!
//! * the **access-kind mix** — fractions of instruction fetches, loads
//!   and stores. Permutation-stable: reordering the accesses of an
//!   interval cannot change them.
//! * the **probe miss profile** — miss ratios of a ladder of small
//!   direct-mapped probe filters ([`PROBE_LINES`] lines each, line size
//!   [`PROBE_LINE_WORDS`] words), reset at every interval boundary so a
//!   signature depends only on the interval's own contents. The ladder
//!   approximates the interval's reuse-distance profile: an interval
//!   that misses even in the largest probe is streaming; one that hits
//!   everywhere is a tight loop.
//!
//! Signatures are points in a fixed-dimension feature space
//! ([`Signature::DIM`]); the k-means stage clusters them by squared
//! Euclidean distance.

use mhe_trace::{Access, AccessKind};

/// Line size of the narrow probe filters, in words (16-byte lines).
pub const PROBE_LINE_WORDS: u32 = 8;

/// Line size of the wide probe filters, in words (32-byte lines).
/// Estimators pick the ladder whose line size is nearest the line size
/// of the cache family they are extrapolating.
pub const PROBE_LINE_WORDS_WIDE: u32 = 16;

/// Direct-mapped probe sizes, in lines (powers of two; 512 B..128 KiB).
pub const PROBE_LINES: [usize; 5] = [16, 64, 256, 1024, 4096];

const EMPTY: u64 = u64::MAX;

/// Per-interval raw counters behind a [`Signature`]: access-kind counts
/// and, for every probe size, per-kind miss counts. The sampled
/// estimator uses these as a control variate (ratio correction), so
/// they are kept exact rather than rounded through feature ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProbeCounts {
    /// Access-kind counts `[inst, load, store]`.
    pub kinds: [u64; 3],
    /// Per-stream probe misses `[inst, load, store]`, per probe size.
    /// Instruction accesses probe a private tag array and loads/stores
    /// another, so each stream's counts are free of cross-stream
    /// interference — that is what makes them usable as a ratio
    /// corrector for split-cache estimates.
    pub probe_misses: [[u64; 3]; PROBE_LINES.len()],
    /// Probe misses of the *shared* (unified) tag array, per probe
    /// size: all accesses contend in one array, mirroring a unified
    /// cache. Also the miss-profile slice of the [`Signature`].
    pub probe_misses_unified: [u64; PROBE_LINES.len()],
    /// Like `probe_misses`, for the wide ([`PROBE_LINE_WORDS_WIDE`])
    /// ladder. Line-size-matched counters keep spatial locality honest
    /// when extrapolating wide-line cache families.
    pub probe_misses_wide: [[u64; 3]; PROBE_LINES.len()],
    /// Like `probe_misses_unified`, for the wide ladder.
    pub probe_misses_unified_wide: [u64; PROBE_LINES.len()],
}

impl ProbeCounts {
    /// Total accesses of the interval.
    pub fn len(&self) -> u64 {
        self.kinds.iter().sum()
    }

    /// Whether the interval recorded no access.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds another interval's counters (used for per-cluster totals).
    pub fn add(&mut self, other: &ProbeCounts) {
        for (k, n) in self.kinds.iter_mut().zip(other.kinds) {
            *k += n;
        }
        for (m, o) in self
            .probe_misses
            .iter_mut()
            .zip(other.probe_misses)
            .chain(self.probe_misses_wide.iter_mut().zip(other.probe_misses_wide))
        {
            for (k, n) in m.iter_mut().zip(o) {
                *k += n;
            }
        }
        for (m, n) in
            self.probe_misses_unified.iter_mut().zip(other.probe_misses_unified).chain(
                self.probe_misses_unified_wide.iter_mut().zip(other.probe_misses_unified_wide),
            )
        {
            *m += n;
        }
    }
}

/// A per-interval feature vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Signature {
    features: [f64; Signature::DIM],
}

impl Signature {
    /// Feature-space dimensionality: three kind fractions plus one miss
    /// ratio per probe size.
    pub const DIM: usize = 3 + PROBE_LINES.len();

    /// Builds a signature from raw per-interval counters.
    fn from_counts(kinds: [u64; 3], probe_misses: [u64; PROBE_LINES.len()], len: u64) -> Self {
        let mut features = [0.0; Signature::DIM];
        if len > 0 {
            let n = len as f64;
            for (f, k) in features.iter_mut().zip(kinds) {
                *f = k as f64 / n;
            }
            for (f, m) in features[3..].iter_mut().zip(probe_misses) {
                *f = m as f64 / n;
            }
        }
        Self { features }
    }

    /// Rebuilds a signature from a raw feature vector (k-means centroid
    /// means live in the same space as real signatures).
    pub(crate) fn from_features(features: [f64; Signature::DIM]) -> Self {
        Self { features }
    }

    /// The raw feature vector.
    pub fn features(&self) -> &[f64; Signature::DIM] {
        &self.features
    }

    /// The access-kind mix `[inst, load, store]` fractions — the
    /// permutation-stable slice of the feature vector.
    pub fn kind_mix(&self) -> [f64; 3] {
        [self.features[0], self.features[1], self.features[2]]
    }

    /// Squared Euclidean distance to another signature.
    pub fn distance2(&self, other: &Self) -> f64 {
        self.features
            .iter()
            .zip(other.features.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }
}

/// Streaming signature computer: observe every access of an interval,
/// then [`SignatureProbe::finish`] the interval and move to the next.
///
/// Probe tag arrays are allocated once and recycled across intervals.
#[derive(Debug, Clone)]
pub struct SignatureProbe {
    /// Shared (unified) tag arrays, one per probe size.
    tags: Vec<Vec<u64>>,
    /// Split tag arrays: `[0]` instruction-only, `[1]` data-only.
    split_tags: [Vec<Vec<u64>>; 2],
    /// Wide-line shared tag arrays, one per probe size.
    tags_wide: Vec<Vec<u64>>,
    /// Wide-line split tag arrays: `[0]` instruction, `[1]` data.
    split_tags_wide: [Vec<Vec<u64>>; 2],
    counts: ProbeCounts,
    len: u64,
}

impl Default for SignatureProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl SignatureProbe {
    /// Creates a probe with empty filters.
    pub fn new() -> Self {
        let fresh = || PROBE_LINES.iter().map(|&n| vec![EMPTY; n]).collect::<Vec<_>>();
        Self {
            tags: fresh(),
            split_tags: [fresh(), fresh()],
            tags_wide: fresh(),
            split_tags_wide: [fresh(), fresh()],
            counts: ProbeCounts::default(),
            len: 0,
        }
    }

    /// Observes one access of the current interval.
    #[inline]
    pub fn observe(&mut self, access: Access) {
        self.len += 1;
        let kind = match access.kind {
            AccessKind::Inst => 0,
            AccessKind::Load => 1,
            AccessKind::Store => 2,
        };
        self.counts.kinds[kind] += 1;
        let block = access.addr / u64::from(PROBE_LINE_WORDS);
        for (tags, misses) in self.tags.iter_mut().zip(self.counts.probe_misses_unified.iter_mut())
        {
            // Probe sizes are powers of two: index by mask.
            let slot = (block & (tags.len() as u64 - 1)) as usize;
            if tags[slot] != block {
                tags[slot] = block;
                *misses += 1;
            }
        }
        let split = &mut self.split_tags[usize::from(kind != 0)];
        for (tags, misses) in split.iter_mut().zip(self.counts.probe_misses.iter_mut()) {
            let slot = (block & (tags.len() as u64 - 1)) as usize;
            if tags[slot] != block {
                tags[slot] = block;
                misses[kind] += 1;
            }
        }
        let wide = access.addr / u64::from(PROBE_LINE_WORDS_WIDE);
        for (tags, misses) in
            self.tags_wide.iter_mut().zip(self.counts.probe_misses_unified_wide.iter_mut())
        {
            let slot = (wide & (tags.len() as u64 - 1)) as usize;
            if tags[slot] != wide {
                tags[slot] = wide;
                *misses += 1;
            }
        }
        let split = &mut self.split_tags_wide[usize::from(kind != 0)];
        for (tags, misses) in split.iter_mut().zip(self.counts.probe_misses_wide.iter_mut()) {
            let slot = (wide & (tags.len() as u64 - 1)) as usize;
            if tags[slot] != wide {
                tags[slot] = wide;
                misses[kind] += 1;
            }
        }
    }

    /// Accesses observed since the last [`SignatureProbe::finish`].
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no access has been observed in the current interval.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Closes the current interval: returns its signature and raw
    /// counters, and resets all filters for the next interval.
    pub fn finish(&mut self) -> (Signature, ProbeCounts) {
        let sig =
            Signature::from_counts(self.counts.kinds, self.counts.probe_misses_unified, self.len);
        let counts = self.counts;
        for tags in self
            .tags
            .iter_mut()
            .chain(self.split_tags.iter_mut().flatten())
            .chain(self.tags_wide.iter_mut())
            .chain(self.split_tags_wide.iter_mut().flatten())
        {
            tags.fill(EMPTY);
        }
        self.counts = ProbeCounts::default();
        self.len = 0;
        (sig, counts)
    }
}

/// Signature of a whole in-memory interval (convenience for tests).
pub fn signature_of(interval: &[Access]) -> Signature {
    let mut probe = SignatureProbe::new();
    for &a in interval {
        probe.observe(a);
    }
    probe.finish().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_mix_sums_to_one_on_nonempty_intervals() {
        let iv: Vec<Access> =
            (0..300).map(|i| if i % 3 == 0 { Access::load(i) } else { Access::inst(i) }).collect();
        let sig = signature_of(&iv);
        let mix = sig.kind_mix();
        assert!((mix.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((mix[1] - 100.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_is_the_zero_vector() {
        let sig = signature_of(&[]);
        assert!(sig.features().iter().all(|&f| f == 0.0));
    }

    #[test]
    fn tight_loop_beats_streaming_in_every_probe() {
        let loop_iv: Vec<Access> = (0..4096u64).map(|i| Access::inst(i % 64)).collect();
        let stream_iv: Vec<Access> = (0..4096u64).map(|i| Access::inst(i * 1024)).collect();
        let l = signature_of(&loop_iv);
        let s = signature_of(&stream_iv);
        for i in 3..Signature::DIM {
            assert!(
                l.features()[i] < s.features()[i],
                "probe {i}: loop miss ratio must be below streaming"
            );
        }
    }

    #[test]
    fn probes_reset_between_intervals() {
        let mut probe = SignatureProbe::new();
        let iv: Vec<Access> = (0..512u64).map(Access::inst).collect();
        for &a in &iv {
            probe.observe(a);
        }
        let (first, counts) = probe.finish();
        assert_eq!(counts.kinds, [512, 0, 0]);
        assert_eq!(counts.len(), 512);
        for &a in &iv {
            probe.observe(a);
        }
        let (second, _) = probe.finish();
        assert_eq!(first, second, "signatures must not leak state across intervals");
    }

    #[test]
    fn distance_is_zero_iff_identical_features() {
        let a = signature_of(&(0..256u64).map(Access::inst).collect::<Vec<_>>());
        let b = signature_of(&(0..256u64).map(|i| Access::inst(i + 1_000_000)).collect::<Vec<_>>());
        assert_eq!(a.distance2(&a), 0.0);
        assert!(a.distance2(&b) >= 0.0);
    }
}
