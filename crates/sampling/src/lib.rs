//! Interval-sampled cache simulation: the 1000×-longer-trace story.
//!
//! Full single-pass simulation is exact but touches every access of the
//! trace; for billion-access workloads that is the binding constraint.
//! This crate implements interval sampling in the style of Bueno et al.
//! (*Improving the Representativeness of Simulation Intervals for the
//! Cache Memory System*): the trace is split into fixed-size
//! **intervals**, each interval is summarized by a cheap **signature**
//! (access-kind mix plus the miss profile of a small direct-mapped probe
//! filter), signatures are clustered with a deterministic seeded
//! **k-means**, and only one **representative** interval per cluster is
//! simulated — preceded by a warm-up prefix — with its miss counts scaled
//! back by the cluster's weight.
//!
//! The result answers the same `misses(sets, assoc)` grid queries as the
//! exact [`mhe_cache::SinglePassSim`], via [`SampledSim`], at a cost
//! proportional to the number of *representative* accesses rather than
//! the trace length. For large LRU configurations an analytic
//! reuse-distance-histogram path ([`histogram::ReuseHistogram`], after
//! Ling et al., *Fast Modeling L2 Cache Reuse Distance Histograms*)
//! replaces per-set stack simulation entirely.
//!
//! Everything here is deterministic: the same trace and
//! [`SamplingConfig`] produce bit-identical estimates on any thread
//! count, any chunking, and any repetition — the property the
//! differential accuracy harness (`tests/sampling_accuracy.rs` at the
//! workspace root) pins against full simulation.
//!
//! # Pipeline
//!
//! ```text
//! pass A (whole trace, cheap):  split -> signatures        [SamplePlanner]
//! plan   (tiny):                k-means -> representatives  [SamplePlan]
//! pass B (whole trace, copy):   extract warm-up + body      [WindowExtractor]
//! simulate (representatives):   exact grid or histogram     [SampledSim]
//! ```
//!
//! # Quick start
//!
//! ```
//! use mhe_sampling::{SamplePlanner, SampledSim, SamplingConfig, WindowExtractor};
//! use mhe_trace::{Access, StreamKind};
//!
//! let trace: Vec<Access> =
//!     (0..40_000u64).map(|i| Access::inst((i * 17) % 4096)).collect();
//! let cfg = SamplingConfig { interval_accesses: 4096, clusters: 4, ..Default::default() };
//! let mut planner = SamplePlanner::new(cfg);
//! planner.feed(&trace);
//! let plan = planner.finish();
//! let mut ex = WindowExtractor::new(&plan);
//! ex.feed(&trace);
//! let windows = ex.finish();
//! let sim = SampledSim::measure(
//!     mhe_cache::Policy::Lru, 8, &[32, 64], 4, StreamKind::Instruction, &plan, &windows,
//! );
//! assert!(sim.miss_ratio(64, 2) <= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod histogram;
pub mod interval;
pub mod kmeans;
pub mod plan;
pub mod sampled;
pub mod signature;

pub use histogram::ReuseHistogram;
pub use interval::{split, IntervalSplitter};
pub use kmeans::Clustering;
pub use plan::{
    plan_trace, ClusterInfo, IntervalInfo, RepWindow, SamplePlan, SamplePlanner, WindowExtractor,
};
pub use sampled::SampledSim;
pub use signature::{signature_of, Signature};

/// Knobs of the interval-sampling pipeline.
///
/// `Copy`, `PartialEq` and `Default` so it can ride inside
/// `EvalConfig` the way every other evaluation knob does. All defaults
/// are the `--sample` defaults of the `spacewalker` CLI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Accesses per interval (the sampling granularity). The final
    /// interval of a trace may be shorter.
    pub interval_accesses: usize,
    /// Number of k-means clusters — the maximum number of representative
    /// intervals that will be simulated.
    pub clusters: usize,
    /// Warm-up prefix: that many accesses immediately preceding a
    /// representative interval are simulated first (populating cache
    /// state) without counting their misses. Clipped at the start of the
    /// trace.
    pub warmup: usize,
    /// Seed for the deterministic k-means initialisation.
    pub seed: u64,
    /// Set counts at or above this threshold are answered by the
    /// analytic reuse-distance-histogram path instead of exact per-set
    /// simulation — LRU only; other policies always simulate exactly.
    /// Use `u32::MAX` to disable the fast path entirely.
    pub histogram_sets: u32,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            interval_accesses: 8192,
            clusters: 48,
            warmup: 8192,
            seed: 0x5A3B_1E5D_0C0F_FEE1,
            histogram_sets: 4096,
        }
    }
}

impl SamplingConfig {
    /// Validates the configuration, returning the first offending field
    /// and its requirement.
    ///
    /// # Errors
    ///
    /// `(field, requirement)` for a zero interval size or cluster count.
    pub fn validate(&self) -> Result<(), (&'static str, &'static str)> {
        if self.interval_accesses == 0 {
            return Err(("sampling.interval_accesses", "must be positive"));
        }
        if self.clusters == 0 {
            return Err(("sampling.clusters", "must be positive"));
        }
        Ok(())
    }
}

// The evaluator fan-out moves sampling state across scoped worker
// threads; keep that guarantee explicit (the same contract mhe-cache
// states for its simulators).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SamplingConfig>();
    assert_send_sync::<SampledSim>();
    assert_send_sync::<SamplePlan>();
    assert_send_sync::<RepWindow>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SamplingConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_fields_are_rejected() {
        let bad = SamplingConfig { interval_accesses: 0, ..Default::default() };
        assert_eq!(bad.validate().unwrap_err().0, "sampling.interval_accesses");
        let bad = SamplingConfig { clusters: 0, ..Default::default() };
        assert_eq!(bad.validate().unwrap_err().0, "sampling.clusters");
    }
}
