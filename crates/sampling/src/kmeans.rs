//! Deterministic seeded k-means over interval signatures.
//!
//! Determinism rules (pinned by the differential harness):
//!
//! * the **seed** picks the first centroid (SplitMix64 over the point
//!   count); the remaining centroids come from a farthest-first
//!   traversal — no further randomness;
//! * Lloyd iterations run a **fixed count** ([`ITERATIONS`]) with no
//!   convergence-dependent early exit that could vary across platforms;
//! * every tie (nearest centroid, farthest point, representative
//!   choice) breaks toward the **lowest index**;
//! * all arithmetic is plain `f64` in a fixed order — no reductions
//!   whose order depends on thread count.
//!
//! Together these make clustering a pure function of
//! `(points, k, seed)`: bit-identical on every run, machine, and
//! thread count.

use crate::signature::Signature;

/// Fixed Lloyd iteration count.
pub const ITERATIONS: usize = 16;

/// Result of clustering `n` points into at most `k` groups.
///
/// Clusters are numbered `0..clusters()`; every cluster is non-empty
/// (duplicate seeds collapse, so fewer than `k` clusters can come back
/// when the points carry fewer than `k` distinct values).
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// `assignment[i]` = cluster of point `i`.
    pub assignment: Vec<u32>,
    /// Point index of each cluster's representative: the member closest
    /// to the final centroid (ties to the lowest index).
    pub representatives: Vec<u32>,
}

impl Clustering {
    /// Number of (non-empty) clusters.
    pub fn clusters(&self) -> usize {
        self.representatives.len()
    }
}

/// SplitMix64 step — the only randomness in the pipeline.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Clusters `points` into at most `k` groups. See the module docs for
/// the determinism contract.
///
/// # Panics
///
/// If `k` is zero while `points` is non-empty.
pub fn kmeans(points: &[Signature], k: usize, seed: u64) -> Clustering {
    if points.is_empty() {
        return Clustering { assignment: Vec::new(), representatives: Vec::new() };
    }
    assert!(k > 0, "cluster count must be positive");

    // Farthest-first initialisation, seeded by the first pick.
    let mut state = seed;
    let first = (splitmix64(&mut state) % points.len() as u64) as usize;
    let mut centroids: Vec<Signature> = vec![points[first]];
    let mut min_d2: Vec<f64> = points.iter().map(|p| p.distance2(&points[first])).collect();
    while centroids.len() < k.min(points.len()) {
        let (best, best_d2) = min_d2
            .iter()
            .enumerate()
            .fold((0usize, f64::NEG_INFINITY), |acc, (i, &d)| if d > acc.1 { (i, d) } else { acc });
        if best_d2 <= 0.0 {
            break; // every remaining point coincides with a centroid
        }
        centroids.push(points[best]);
        for (d, p) in min_d2.iter_mut().zip(points) {
            let nd = p.distance2(&points[best]);
            if nd < *d {
                *d = nd;
            }
        }
    }

    let mut assignment = vec![0u32; points.len()];
    for _ in 0..ITERATIONS {
        // Assign: nearest centroid, ties to the lowest centroid index.
        for (a, p) in assignment.iter_mut().zip(points) {
            let mut best = 0usize;
            let mut best_d2 = p.distance2(&centroids[0]);
            for (c, centroid) in centroids.iter().enumerate().skip(1) {
                let d2 = p.distance2(centroid);
                if d2 < best_d2 {
                    best = c;
                    best_d2 = d2;
                }
            }
            *a = best as u32;
        }
        // Update: componentwise mean in point-index order. A cluster
        // that lost all members keeps its previous centroid.
        let dim = Signature::DIM;
        let mut sums = vec![[0.0f64; Signature::DIM]; centroids.len()];
        let mut counts = vec![0u64; centroids.len()];
        for (&a, p) in assignment.iter().zip(points) {
            let sum = &mut sums[a as usize];
            for (s, f) in sum.iter_mut().zip(p.features()) {
                *s += f;
            }
            counts[a as usize] += 1;
        }
        for ((centroid, sum), &count) in centroids.iter_mut().zip(&sums).zip(&counts) {
            if count > 0 {
                let mut features = [0.0f64; Signature::DIM];
                for d in 0..dim {
                    features[d] = sum[d] / count as f64;
                }
                *centroid = Signature::from_features(features);
            }
        }
    }

    // Drop empty clusters and renumber survivors in ascending old-index
    // order, then pick representatives.
    let mut remap = vec![u32::MAX; centroids.len()];
    let mut kept = Vec::new();
    for &a in &assignment {
        if remap[a as usize] == u32::MAX {
            remap[a as usize] = u32::MAX - 1; // mark seen, number below
        }
    }
    for (old, slot) in remap.iter_mut().enumerate() {
        if *slot != u32::MAX {
            *slot = kept.len() as u32;
            kept.push(old);
        }
    }
    for a in &mut assignment {
        *a = remap[*a as usize];
    }
    let mut representatives = vec![u32::MAX; kept.len()];
    let mut rep_d2 = vec![f64::INFINITY; kept.len()];
    for (i, (&a, p)) in assignment.iter().zip(points).enumerate() {
        let d2 = p.distance2(&centroids[kept[a as usize]]);
        if d2 < rep_d2[a as usize] {
            rep_d2[a as usize] = d2;
            representatives[a as usize] = i as u32;
        }
    }
    Clustering { assignment, representatives }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::signature_of;
    use mhe_trace::Access;

    fn sig(points: &[(u64, u64)]) -> Vec<Signature> {
        // Build distinguishable signatures: loops of varying footprint.
        points
            .iter()
            .map(|&(stride, modulo)| {
                let iv: Vec<Access> =
                    (0..2048u64).map(|i| Access::inst((i * stride) % modulo)).collect();
                signature_of(&iv)
            })
            .collect()
    }

    #[test]
    fn identical_points_collapse_to_one_cluster() {
        let points = sig(&[(1, 64); 10]);
        let c = kmeans(&points, 4, 42);
        assert_eq!(c.clusters(), 1);
        assert!(c.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn distinct_groups_separate() {
        // 5 tight-loop intervals and 5 streaming intervals.
        let mut points = sig(&[(1, 64); 5]);
        points.extend(sig(&[(8192, u64::MAX); 5]));
        let c = kmeans(&points, 2, 7);
        assert_eq!(c.clusters(), 2);
        assert_eq!(c.assignment[0..5], [c.assignment[0]; 5]);
        assert_eq!(c.assignment[5..10], [c.assignment[5]; 5]);
        assert_ne!(c.assignment[0], c.assignment[5]);
    }

    #[test]
    fn clustering_is_a_pure_function_of_inputs() {
        let points = sig(&[(1, 64), (3, 128), (8192, u64::MAX), (1, 64), (5, 256), (7, 1024)]);
        let a = kmeans(&points, 3, 99);
        let b = kmeans(&points, 3, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn k_larger_than_points_is_fine() {
        let points = sig(&[(1, 64), (8192, u64::MAX)]);
        let c = kmeans(&points, 16, 1);
        assert_eq!(c.clusters(), 2);
    }

    #[test]
    fn representatives_are_members_of_their_cluster() {
        let points = sig(&[(1, 64), (3, 128), (8192, u64::MAX), (2, 64), (5, 256), (11, 2048)]);
        let c = kmeans(&points, 3, 1234);
        for (cluster, &rep) in c.representatives.iter().enumerate() {
            assert_eq!(c.assignment[rep as usize] as usize, cluster);
        }
    }

    #[test]
    fn empty_input_yields_empty_clustering() {
        let c = kmeans(&[], 4, 0);
        assert_eq!(c.clusters(), 0);
        assert!(c.assignment.is_empty());
    }
}
