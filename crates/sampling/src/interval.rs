//! Splitting a streamed trace into fixed-size intervals.
//!
//! The splitter is a thin, allocation-frugal state machine: it accepts
//! the same arbitrarily-sized chunks the `.mtr` frame decoder produces
//! and emits complete intervals of exactly `interval_accesses` accesses
//! (the final interval of a trace may be shorter). Concatenating the
//! emitted intervals reproduces the input trace access-for-access — the
//! partition property the proptests pin.

use mhe_trace::Access;

/// Streaming fixed-size interval splitter.
///
/// Feed chunks with [`IntervalSplitter::feed`]; every complete interval
/// is handed to the callback as soon as it fills. Call
/// [`IntervalSplitter::finish`] to flush the trailing partial interval.
#[derive(Debug, Clone)]
pub struct IntervalSplitter {
    interval: usize,
    pending: Vec<Access>,
}

impl IntervalSplitter {
    /// Creates a splitter emitting intervals of `interval_accesses`.
    ///
    /// # Panics
    ///
    /// If `interval_accesses` is zero.
    pub fn new(interval_accesses: usize) -> Self {
        assert!(interval_accesses > 0, "interval_accesses must be positive");
        Self { interval: interval_accesses, pending: Vec::with_capacity(interval_accesses) }
    }

    /// The configured interval size in accesses.
    pub fn interval_accesses(&self) -> usize {
        self.interval
    }

    /// Number of accesses buffered toward the next (incomplete) interval.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Feeds one chunk, invoking `emit` once per *complete* interval.
    pub fn feed(&mut self, chunk: &[Access], mut emit: impl FnMut(&[Access])) {
        let mut rest = chunk;
        while !rest.is_empty() {
            let need = self.interval - self.pending.len();
            if self.pending.is_empty() && rest.len() >= self.interval {
                // Fast path: a whole interval lies contiguously in the
                // chunk; no copy through the pending buffer.
                emit(&rest[..self.interval]);
                rest = &rest[self.interval..];
                continue;
            }
            let take = need.min(rest.len());
            self.pending.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.pending.len() == self.interval {
                emit(&self.pending);
                self.pending.clear();
            }
        }
    }

    /// Flushes the trailing partial interval, if any, and resets the
    /// splitter for reuse.
    pub fn finish(&mut self, mut emit: impl FnMut(&[Access])) {
        if !self.pending.is_empty() {
            emit(&self.pending);
            self.pending.clear();
        }
    }
}

/// Convenience one-shot split of an in-memory trace; returns owned
/// intervals. Concatenating the result reproduces `trace` exactly.
pub fn split(trace: &[Access], interval_accesses: usize) -> Vec<Vec<Access>> {
    let mut splitter = IntervalSplitter::new(interval_accesses);
    let mut out = Vec::new();
    splitter.feed(trace, |iv| out.push(iv.to_vec()));
    splitter.finish(|iv| out.push(iv.to_vec()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(n: u64) -> Vec<Access> {
        (0..n).map(Access::inst).collect()
    }

    #[test]
    fn split_is_a_partition() {
        let t = trace(1000);
        let parts = split(&t, 256);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.last().map(Vec::len), Some(1000 - 3 * 256));
        let glued: Vec<Access> = parts.concat();
        assert_eq!(glued, t);
    }

    #[test]
    fn exact_multiple_has_no_partial_tail() {
        let t = trace(512);
        let parts = split(&t, 256);
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| p.len() == 256));
    }

    #[test]
    fn chunking_does_not_change_the_intervals() {
        let t = trace(777);
        let whole = split(&t, 100);
        let mut splitter = IntervalSplitter::new(100);
        let mut chunked = Vec::new();
        for chunk in t.chunks(13) {
            splitter.feed(chunk, |iv| chunked.push(iv.to_vec()));
        }
        splitter.finish(|iv| chunked.push(iv.to_vec()));
        assert_eq!(whole, chunked);
    }

    #[test]
    fn empty_trace_emits_nothing() {
        assert!(split(&[], 64).is_empty());
    }

    #[test]
    fn trace_shorter_than_one_interval_is_one_partial() {
        let t = trace(10);
        let parts = split(&t, 64);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], t);
    }
}
