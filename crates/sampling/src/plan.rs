//! From a streamed trace to a sampling plan, and back over the trace to
//! the representative windows.
//!
//! Pass A ([`SamplePlanner`]) runs over the whole trace once, splitting
//! it into intervals and computing signatures — O(#intervals) memory.
//! The finished [`SamplePlan`] clusters the signatures and names one
//! representative interval per cluster. Pass B ([`WindowExtractor`])
//! runs over the trace again and keeps only each representative's
//! warm-up prefix and body — O(clusters × (interval + warmup)) memory,
//! independent of trace length. Both passes accept arbitrary chunking
//! and produce identical results for identical traces.

use crate::kmeans::kmeans;
use crate::signature::{ProbeCounts, Signature, SignatureProbe};
use crate::SamplingConfig;
use mhe_trace::{Access, StreamKind};

/// One interval of the trace, as recorded by pass A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalInfo {
    /// Global access index of the interval's first access.
    pub start: u64,
    /// Interval length in accesses (the final interval may be short).
    pub len: u64,
    /// Access-kind counts `[inst, load, store]`.
    pub kinds: [u64; 3],
    /// Raw probe counters (kind counts + per-probe, per-kind misses),
    /// the control variate for the sampled estimator's ratio correction.
    pub counts: ProbeCounts,
    /// Cluster this interval was assigned to.
    pub cluster: u32,
}

/// One cluster of intervals and its chosen representative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterInfo {
    /// Interval index of the representative (closest to the centroid).
    pub representative: u32,
    /// Number of member intervals.
    pub intervals: u64,
    /// Total accesses across member intervals.
    pub accesses: u64,
    /// Summed access-kind counts `[inst, load, store]` of the members.
    pub kinds: [u64; 3],
    /// Summed raw probe counters of the members.
    pub counts: ProbeCounts,
}

/// The finished sampling plan: interval table, clusters, weights.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePlan {
    config: SamplingConfig,
    intervals: Vec<IntervalInfo>,
    clusters: Vec<ClusterInfo>,
    total_accesses: u64,
    dispersion: f64,
}

impl SamplePlan {
    /// The configuration the plan was built with.
    pub fn config(&self) -> SamplingConfig {
        self.config
    }

    /// The interval table, in trace order.
    pub fn intervals(&self) -> &[IntervalInfo] {
        &self.intervals
    }

    /// The clusters, indexed by cluster id.
    pub fn clusters(&self) -> &[ClusterInfo] {
        &self.clusters
    }

    /// Exact total accesses of the unified trace.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Exact total accesses admitted by `stream` — the denominator for
    /// sampled miss ratios (the trace was measured, not sampled).
    pub fn stream_accesses(&self, stream: StreamKind) -> u64 {
        let [i, l, s] = self.intervals.iter().fold([0u64; 3], |acc, iv| {
            [acc[0] + iv.kinds[0], acc[1] + iv.kinds[1], acc[2] + iv.kinds[2]]
        });
        match stream {
            StreamKind::Instruction => i,
            StreamKind::Data => l + s,
            StreamKind::Unified => i + l + s,
        }
    }

    /// Unified accesses that will actually be simulated: warm-up plus
    /// body of every representative window.
    pub fn representative_accesses(&self) -> u64 {
        self.clusters
            .iter()
            .map(|c| {
                let iv = self.intervals[c.representative as usize];
                let warm = (self.config.warmup as u64).min(iv.start);
                warm + iv.len
            })
            .sum()
    }

    /// Fraction of the trace fed to a simulator (representative over
    /// total accesses); the speedup story is `1 / coverage()`.
    pub fn coverage(&self) -> f64 {
        if self.total_accesses == 0 {
            return 0.0;
        }
        self.representative_accesses() as f64 / self.total_accesses as f64
    }

    /// Mean Euclidean distance from each interval's signature to its
    /// cluster representative's signature — a *heuristic* indicator of
    /// sampling error (0 when every interval is represented exactly,
    /// e.g. the degenerate one-cluster-whole-trace plan). The accuracy
    /// harness pins the *measured* error; this number only ranks plans.
    pub fn error_bound(&self) -> f64 {
        self.dispersion
    }
}

/// Pass A: split, sign, and (on [`SamplePlanner::finish`]) cluster.
#[derive(Debug, Clone)]
pub struct SamplePlanner {
    config: SamplingConfig,
    probe: SignatureProbe,
    signatures: Vec<Signature>,
    intervals: Vec<IntervalInfo>,
    total: u64,
}

impl SamplePlanner {
    /// Creates a planner.
    ///
    /// # Panics
    ///
    /// If `config` fails [`SamplingConfig::validate`].
    pub fn new(config: SamplingConfig) -> Self {
        if let Err((field, req)) = config.validate() {
            panic!("invalid sampling config: {field} {req}");
        }
        Self {
            config,
            probe: SignatureProbe::new(),
            signatures: Vec::new(),
            intervals: Vec::new(),
            total: 0,
        }
    }

    fn close_interval(&mut self) {
        let (sig, counts) = self.probe.finish();
        let len = counts.len();
        self.signatures.push(sig);
        self.intervals.push(IntervalInfo {
            start: self.total - len,
            len,
            kinds: counts.kinds,
            counts,
            cluster: 0,
        });
    }

    /// Feeds one chunk of the trace (any chunking yields the same plan).
    pub fn feed(&mut self, chunk: &[Access]) {
        for &a in chunk {
            self.probe.observe(a);
            self.total += 1;
            if self.probe.len() as usize == self.config.interval_accesses {
                self.close_interval();
            }
        }
    }

    /// Total accesses fed so far.
    pub fn accesses(&self) -> u64 {
        self.total
    }

    /// Closes the final partial interval, clusters the signatures, and
    /// returns the plan.
    pub fn finish(mut self) -> SamplePlan {
        if !self.probe.is_empty() {
            self.close_interval();
        }
        let clustering = kmeans(&self.signatures, self.config.clusters, self.config.seed);
        let mut clusters: Vec<ClusterInfo> = clustering
            .representatives
            .iter()
            .map(|&rep| ClusterInfo {
                representative: rep,
                intervals: 0,
                accesses: 0,
                kinds: [0; 3],
                counts: ProbeCounts::default(),
            })
            .collect();
        for (iv, &a) in self.intervals.iter_mut().zip(&clustering.assignment) {
            iv.cluster = a;
            let c = &mut clusters[a as usize];
            c.intervals += 1;
            c.accesses += iv.len;
            for (k, n) in c.kinds.iter_mut().zip(iv.kinds) {
                *k += n;
            }
            c.counts.add(&iv.counts);
        }
        // Dispersion: mean distance of each signature to its cluster's
        // representative signature (fixed interval order — deterministic).
        let dispersion = if self.signatures.is_empty() {
            0.0
        } else {
            let sum: f64 = self
                .signatures
                .iter()
                .zip(&clustering.assignment)
                .map(|(sig, &a)| {
                    let rep = clusters[a as usize].representative as usize;
                    sig.distance2(&self.signatures[rep]).sqrt()
                })
                .sum();
            sum / self.signatures.len() as f64
        };
        SamplePlan {
            config: self.config,
            intervals: self.intervals,
            clusters,
            total_accesses: self.total,
            dispersion,
        }
    }
}

/// A representative interval with its warm-up prefix, materialized by
/// pass B.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepWindow {
    /// Cluster this window represents.
    pub cluster: u32,
    /// Warm-up accesses (simulated, not counted). Clipped at trace
    /// start, so it may be shorter than `config.warmup` — and it may be
    /// *longer than the representative interval itself* when warmup >
    /// interval_accesses; both are fine.
    pub warmup: Vec<Access>,
    /// The representative interval's own accesses (counted).
    pub body: Vec<Access>,
}

#[derive(Debug, Clone, Copy)]
struct WindowSpec {
    warm_start: u64,
    body_start: u64,
    end: u64,
}

/// Pass B: re-stream the trace and keep only representative windows.
#[derive(Debug, Clone)]
pub struct WindowExtractor {
    specs: Vec<WindowSpec>,
    windows: Vec<RepWindow>,
    pos: u64,
}

impl WindowExtractor {
    /// Prepares extraction for every cluster of `plan`, in cluster
    /// order.
    pub fn new(plan: &SamplePlan) -> Self {
        let warmup = plan.config().warmup as u64;
        let mut specs = Vec::with_capacity(plan.clusters().len());
        let mut windows = Vec::with_capacity(plan.clusters().len());
        for (cluster, c) in plan.clusters().iter().enumerate() {
            let iv = plan.intervals()[c.representative as usize];
            let warm_start = iv.start.saturating_sub(warmup);
            specs.push(WindowSpec { warm_start, body_start: iv.start, end: iv.start + iv.len });
            windows.push(RepWindow {
                cluster: cluster as u32,
                warmup: Vec::with_capacity((iv.start - warm_start) as usize),
                body: Vec::with_capacity(iv.len as usize),
            });
        }
        Self { specs, windows, pos: 0 }
    }

    /// Feeds one chunk; O(clusters) range intersections per chunk.
    pub fn feed(&mut self, chunk: &[Access]) {
        let lo = self.pos;
        let hi = lo + chunk.len() as u64;
        for (spec, win) in self.specs.iter().zip(self.windows.iter_mut()) {
            let warm_lo = spec.warm_start.max(lo);
            let warm_hi = spec.body_start.min(hi);
            if warm_lo < warm_hi {
                win.warmup
                    .extend_from_slice(&chunk[(warm_lo - lo) as usize..(warm_hi - lo) as usize]);
            }
            let body_lo = spec.body_start.max(lo);
            let body_hi = spec.end.min(hi);
            if body_lo < body_hi {
                win.body
                    .extend_from_slice(&chunk[(body_lo - lo) as usize..(body_hi - lo) as usize]);
            }
        }
        self.pos = hi;
    }

    /// Accesses fed so far.
    pub fn accesses(&self) -> u64 {
        self.pos
    }

    /// Returns the materialized windows, in cluster order.
    pub fn finish(self) -> Vec<RepWindow> {
        self.windows
    }
}

/// One-shot plan construction from an in-memory trace (tests, bench).
pub fn plan_trace(trace: &[Access], config: SamplingConfig) -> (SamplePlan, Vec<RepWindow>) {
    let mut planner = SamplePlanner::new(config);
    planner.feed(trace);
    let plan = planner.finish();
    let mut ex = WindowExtractor::new(&plan);
    ex.feed(trace);
    let windows = ex.finish();
    (plan, windows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(interval: usize, clusters: usize, warmup: usize) -> SamplingConfig {
        SamplingConfig { interval_accesses: interval, clusters, warmup, ..Default::default() }
    }

    fn phased_trace(n: u64) -> Vec<Access> {
        // Alternating loop/stream phases with a sprinkle of data refs.
        (0..n)
            .map(|i| {
                let phase = (i / 1024) % 2;
                if i % 7 == 0 {
                    Access::load(10_000 + i % 512)
                } else if phase == 0 {
                    Access::inst(i % 256)
                } else {
                    Access::inst(i * 32)
                }
            })
            .collect()
    }

    #[test]
    fn intervals_partition_the_trace() {
        let t = phased_trace(10_000);
        let (plan, _) = plan_trace(&t, cfg(1024, 4, 256));
        let mut pos = 0u64;
        for iv in plan.intervals() {
            assert_eq!(iv.start, pos);
            pos += iv.len;
        }
        assert_eq!(pos, t.len() as u64);
        assert_eq!(plan.total_accesses(), t.len() as u64);
    }

    #[test]
    fn kind_totals_are_exact() {
        let t = phased_trace(10_000);
        let (plan, _) = plan_trace(&t, cfg(1024, 4, 256));
        let loads = t.iter().filter(|a| a.kind == mhe_trace::AccessKind::Load).count() as u64;
        assert_eq!(plan.stream_accesses(StreamKind::Data), loads);
        assert_eq!(plan.stream_accesses(StreamKind::Unified), t.len() as u64);
        assert_eq!(plan.stream_accesses(StreamKind::Instruction) + loads, plan.total_accesses());
    }

    #[test]
    fn cluster_weights_cover_every_interval_once() {
        let t = phased_trace(20_000);
        let (plan, _) = plan_trace(&t, cfg(2048, 3, 512));
        let from_clusters: u64 = plan.clusters().iter().map(|c| c.accesses).sum();
        assert_eq!(from_clusters, plan.total_accesses());
        let members: u64 = plan.clusters().iter().map(|c| c.intervals).sum();
        assert_eq!(members, plan.intervals().len() as u64);
    }

    #[test]
    fn windows_match_the_trace_content() {
        let t = phased_trace(20_000);
        let (plan, windows) = plan_trace(&t, cfg(2048, 3, 512));
        assert_eq!(windows.len(), plan.clusters().len());
        for (c, w) in plan.clusters().iter().zip(&windows) {
            let iv = plan.intervals()[c.representative as usize];
            let warm_start = iv.start.saturating_sub(512);
            assert_eq!(w.warmup.as_slice(), &t[warm_start as usize..iv.start as usize]);
            assert_eq!(w.body.as_slice(), &t[iv.start as usize..(iv.start + iv.len) as usize]);
        }
    }

    #[test]
    fn chunked_and_whole_extraction_agree() {
        let t = phased_trace(15_000);
        let (plan, whole) = plan_trace(&t, cfg(1024, 5, 300));
        let mut ex = WindowExtractor::new(&plan);
        for chunk in t.chunks(97) {
            ex.feed(chunk);
        }
        assert_eq!(ex.finish(), whole);
    }

    #[test]
    fn chunked_and_whole_planning_agree() {
        let t = phased_trace(15_000);
        let mut planner = SamplePlanner::new(cfg(1024, 5, 300));
        for chunk in t.chunks(131) {
            planner.feed(chunk);
        }
        let chunked = planner.finish();
        let (whole, _) = plan_trace(&t, cfg(1024, 5, 300));
        assert_eq!(chunked, whole);
    }

    #[test]
    fn empty_trace_yields_an_empty_plan() {
        let (plan, windows) = plan_trace(&[], cfg(1024, 4, 256));
        assert!(plan.intervals().is_empty());
        assert!(plan.clusters().is_empty());
        assert!(windows.is_empty());
        assert_eq!(plan.total_accesses(), 0);
        assert_eq!(plan.coverage(), 0.0);
        assert_eq!(plan.error_bound(), 0.0);
    }

    #[test]
    fn degenerate_plan_has_zero_error_bound_and_full_coverage() {
        let t = phased_trace(5000);
        let (plan, windows) = plan_trace(&t, cfg(5000, 1, 0));
        assert_eq!(plan.clusters().len(), 1);
        assert_eq!(plan.error_bound(), 0.0);
        assert_eq!(plan.coverage(), 1.0);
        assert_eq!(windows[0].body.as_slice(), t.as_slice());
        assert!(windows[0].warmup.is_empty());
    }
}
