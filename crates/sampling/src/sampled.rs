//! The sampled counterpart of `SinglePassSim`.
//!
//! [`SampledSim::measure`] consumes a [`SamplePlan`] plus the
//! materialized representative windows and answers the same
//! `misses(sets, assoc)` grid queries as the exact simulator — but it
//! only ever feeds representative accesses to an engine.
//!
//! **Phase 1 — stale-state window replay.** Representative windows run
//! in *trace order* through one shared engine per family: each window
//! simulates its warm-up prefix (state only), snapshots the grid, then
//! simulates its body and records the per-(sets, assoc) miss *delta*.
//! Because the engine is shared, every window inherits the cache state
//! earlier windows left behind (Conte-style stale state) instead of
//! starting cold.
//!
//! **Phase 2 — blended estimate.** Two estimators combine:
//!
//! * *Cluster-weight fallback* (always computed): each representative's
//!   miss delta × its cluster weight × a probe-miss ratio correction
//!   (the cluster's per-access probe-miss rate over the
//!   representative's, at the capacity-nearest probe of the ladder
//!   whose line size matches the measured family; the factor stays 1
//!   below [`MIN_CORRECTION_MISSES`] to avoid amplifying small-count
//!   noise).
//! * *Per-point ridge regression* (with ≥ [`MIN_REGRESSION_REPS`]
//!   representatives and at least one unsimulated interval): a fit
//!   from each representative's pass-A probe counters (stream length
//!   plus the per-size probe-miss ladder, all exact integers) to its
//!   measured miss delta predicts every non-simulated interval;
//!   simulated intervals contribute their measured misses, the rest
//!   their predictions, and the sum is clamped to the stream length.
//!
//! The two err with largely independent signs — the final estimate is
//! their 50/50 blend, tighter than either alone across the benchmark
//! suite (see `tests/sampling_accuracy.rs` for the pinned budgets).
//!
//! Features are per-stream: an instruction-cache estimate uses
//! instruction-only probe counters, a data-cache one load+store
//! counters, a unified one the shared-array counters — all recorded
//! exactly by pass A. Every accumulation runs in fixed interval order,
//! so the estimate is a pure function of (plan, windows) and
//! bit-identical on every run and thread count.
use crate::histogram::ReuseHistogram;
use crate::plan::{RepWindow, SamplePlan};
use crate::signature::{ProbeCounts, PROBE_LINES, PROBE_LINE_WORDS, PROBE_LINE_WORDS_WIDE};
use mhe_cache::{Policy, SinglePassSim};
use mhe_trace::StreamKind;

/// Minimum probe misses the representative must show before the ratio
/// correction is trusted; below this the factor stays 1 (pure
/// cluster-weight scaling) rather than amplify small-count noise.
const MIN_CORRECTION_MISSES: u64 = 16;

/// Minimum simulated representatives before the per-point regression
/// estimator is used; below this the cluster-weight fallback runs.
pub const MIN_REGRESSION_REPS: usize = 8;

/// Regression feature count: intercept, stream length, and one
/// probe-miss count per probe size.
const NF: usize = 2 + PROBE_LINES.len();

/// Solves `a x = b` by Gauss-Jordan elimination with partial pivoting
/// (deterministic; the ridge term keeps `a` well conditioned).
fn solve(mut a: [[f64; NF]; NF], mut b: [f64; NF]) -> [f64; NF] {
    for col in 0..NF {
        let mut piv = col;
        for r in col + 1..NF {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        if d.abs() < 1e-30 {
            continue;
        }
        let pivot = a[col];
        for r in 0..NF {
            if r == col {
                continue;
            }
            let f = a[r][col] / d;
            for (x, &p) in a[r].iter_mut().zip(&pivot).skip(col) {
                *x -= f * p;
            }
            b[r] -= f * b[col];
        }
    }
    let mut out = [0.0; NF];
    for (i, o) in out.iter_mut().enumerate() {
        *o = if a[i][i].abs() < 1e-30 { 0.0 } else { b[i] / a[i][i] };
    }
    out
}

/// Per-grid-point ridge fit over the simulated representatives:
/// normal equations from (features, delta) pairs, a relative ridge
/// term on the diagonal, then [`solve`].
fn fit_point(rows: &[RepRow], point: usize) -> [f64; NF] {
    let mut a = [[0.0f64; NF]; NF];
    let mut b = [0.0f64; NF];
    for row in rows {
        let x = &row.features;
        for i in 0..NF {
            b[i] += x[i] * row.deltas[point];
            for j in 0..NF {
                a[i][j] += x[i] * x[j];
            }
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += 1e-6 * row[i] + 1e-9;
    }
    solve(a, b)
}

/// One simulated representative: its features and per-point deltas.
struct RepRow {
    /// Interval index of the representative (marks it as simulated).
    interval: usize,
    /// Cluster-weight fallback scale (cluster stream accesses over
    /// body stream accesses).
    weight: f64,
    /// Ratio-correction factors per probe size (fallback path).
    factors: [f64; PROBE_LINES.len()],
    /// Regression features: `[1, stream_len, probe_misses...]`.
    features: [f64; NF],
    /// Measured miss deltas in final grid layout.
    deltas: Vec<f64>,
}

/// Index of the probe whose capacity (in words) is nearest
/// `capacity_words` on a log scale (ties take the smaller probe), for
/// a ladder with `probe_line_words`-word lines.
fn probe_for(capacity_words: u64, probe_line_words: u32) -> usize {
    let target = (capacity_words.max(1) as f64).log2();
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, &lines) in PROBE_LINES.iter().enumerate() {
        let cap = (lines as u64 * u64::from(probe_line_words)) as f64;
        let d = (cap.log2() - target).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Weighted-miss grid estimator over one stream of the trace.
#[derive(Debug, Clone)]
pub struct SampledSim {
    policy: Policy,
    line_words: u32,
    set_counts: Vec<u32>,
    max_assoc: u32,
    /// `grid[set_index * max_assoc + (assoc-1)]` = weighted miss estimate.
    grid: Vec<f64>,
    accesses: u64,
    sim_accesses: u64,
    histogram_points: u32,
    covered_weight: f64,
}

impl SampledSim {
    /// Runs the sampled measurement for `stream` over the given grid.
    ///
    /// `set_counts` follows the same convention as `SinglePassSim`:
    /// every count is evaluated at associativities `1..=max_assoc`.
    /// Windows must be the ones extracted for `plan` (cluster order).
    pub fn measure(
        policy: Policy,
        line_words: u32,
        set_counts: &[u32],
        max_assoc: u32,
        stream: StreamKind,
        plan: &SamplePlan,
        windows: &[RepWindow],
    ) -> Self {
        assert_eq!(windows.len(), plan.clusters().len(), "windows must match the plan's clusters");
        let threshold = plan.config().histogram_sets;
        let analytic =
            |sets: u32| policy == Policy::Lru && sets >= threshold && threshold != u32::MAX;
        let exact_sets: Vec<u32> = set_counts.iter().copied().filter(|&s| !analytic(s)).collect();
        let analytic_sets: Vec<u32> = set_counts.iter().copied().filter(|&s| analytic(s)).collect();

        let stream_count = |kinds: &[u64; 3]| -> u64 {
            match stream {
                StreamKind::Instruction => kinds[0],
                StreamKind::Data => kinds[1] + kinds[2],
                StreamKind::Unified => kinds[0] + kinds[1] + kinds[2],
            }
        };

        // Pick the probe ladder whose line size matches this family:
        // spatial locality differs enough between 16- and 32-byte lines
        // that mismatched probe counters systematically mis-extrapolate
        // sparse-miss wide-line configurations.
        let wide = line_words >= PROBE_LINE_WORDS_WIDE;
        let probe_line_words = if wide { PROBE_LINE_WORDS_WIDE } else { PROBE_LINE_WORDS };
        let probe_count = move |counts: &ProbeCounts, p: usize| {
            let (split, unified) = if wide {
                (&counts.probe_misses_wide, &counts.probe_misses_unified_wide)
            } else {
                (&counts.probe_misses, &counts.probe_misses_unified)
            };
            match stream {
                StreamKind::Instruction => split[p][0],
                StreamKind::Data => split[p][1] + split[p][2],
                StreamKind::Unified => unified[p],
            }
        };
        let features = |counts: &ProbeCounts| {
            let mut x = [0.0f64; NF];
            x[0] = 1.0;
            x[1] = stream_count(&counts.kinds) as f64;
            for (p, f) in x[2..].iter_mut().enumerate() {
                *f = probe_count(counts, p) as f64;
            }
            x
        };

        let points = set_counts.len() * max_assoc as usize;
        let mut sim_accesses = 0u64;
        let mut covered = 0u64;
        let total = plan.stream_accesses(stream);

        // Phase 1: simulate every representative window, recording its
        // per-point miss deltas plus the fallback weights/factors.
        //
        // Windows are replayed in *trace order* through one shared engine
        // ("stale-state" warming, Conte et al.): each window inherits the
        // cache state left by earlier windows of the same trace on top of
        // its own warm-up run, instead of starting from an empty cache.
        // A cold start overestimates misses on caches large enough that
        // blocks survive across the sampled gaps; stale state restores
        // most of that footprint at zero extra simulation cost.
        let mut order: Vec<usize> = (0..plan.clusters().len()).collect();
        order.sort_by_key(|&i| plan.intervals()[plan.clusters()[i].representative as usize].start);
        let mut exact_engine = (!exact_sets.is_empty())
            .then(|| SinglePassSim::new_with_policy(policy, line_words, &exact_sets, max_assoc));
        let mut hist_engine = (!analytic_sets.is_empty()).then(|| ReuseHistogram::new(line_words));
        let mut rows: Vec<RepRow> = Vec::with_capacity(windows.len());
        for i in order {
            let (c, w) = (&plan.clusters()[i], &windows[i]);
            let cluster_accesses = stream_count(&c.kinds);
            if cluster_accesses == 0 {
                continue;
            }
            let warm: Vec<u64> =
                w.warmup.iter().filter(|a| stream.admits(a.kind)).map(|a| a.addr).collect();
            let body: Vec<u64> =
                w.body.iter().filter(|a| stream.admits(a.kind)).map(|a| a.addr).collect();
            if body.is_empty() {
                // The representative holds no accesses of this stream
                // even though the cluster does: nothing to train on or
                // scale. The shortfall shows up in `covered_fraction`.
                continue;
            }
            let weight = cluster_accesses as f64 / body.len() as f64;
            covered += cluster_accesses;
            sim_accesses += (warm.len() + body.len()) as u64;

            // Ratio correction per probe size: cluster probe-miss rate
            // over representative probe-miss rate, for this stream.
            let rep_iv = plan.intervals()[c.representative as usize];
            let mut factors = [1.0f64; PROBE_LINES.len()];
            for (p, f) in factors.iter_mut().enumerate() {
                let cpm = probe_count(&c.counts, p);
                let rpm = probe_count(&rep_iv.counts, p);
                if rpm >= MIN_CORRECTION_MISSES && cpm > 0 {
                    let cluster_rate = cpm as f64 / cluster_accesses as f64;
                    let rep_rate = rpm as f64 / body.len() as f64;
                    *f = cluster_rate / rep_rate;
                }
            }

            let mut deltas = vec![0.0f64; points];
            if let Some(sim) = exact_engine.as_mut() {
                sim.run(warm.iter().copied());
                let base: Vec<u64> = exact_sets
                    .iter()
                    .flat_map(|&s| (1..=max_assoc).map(move |a| (s, a)))
                    .map(|(s, a)| sim.misses(s, a))
                    .collect();
                sim.run(body.iter().copied());
                let mut at = 0usize;
                for &sets in &exact_sets {
                    let si = grid_index(set_counts, sets);
                    for assoc in 1..=max_assoc {
                        deltas[si * max_assoc as usize + (assoc - 1) as usize] =
                            (sim.misses(sets, assoc) - base[at]) as f64;
                        at += 1;
                    }
                }
            }
            if let Some(hist) = hist_engine.as_mut() {
                for &a in &warm {
                    hist.observe(a);
                }
                let snap = hist.snapshot();
                for &a in &body {
                    hist.observe(a);
                }
                for &sets in &analytic_sets {
                    let si = grid_index(set_counts, sets);
                    for assoc in 1..=max_assoc {
                        deltas[si * max_assoc as usize + (assoc - 1) as usize] =
                            hist.expected_misses_since(&snap, sets, assoc);
                    }
                }
            }
            rows.push(RepRow {
                interval: c.representative as usize,
                weight,
                factors,
                features: features(&rep_iv.counts),
                deltas,
            });
        }

        // Phase 2: extrapolate to the full trace. The cluster-weight
        // estimate (locally adaptive, per-cluster ratio correction) is
        // always computed; with enough representatives the regression
        // estimate (global fit, residuals cancel in the sum) is averaged
        // in. The two err with largely independent — often opposite —
        // signs on sparse-miss points, so the blend beats either alone.
        let mut fallback = vec![0.0f64; points];
        for row in &rows {
            for (si, &sets) in set_counts.iter().enumerate() {
                for assoc in 1..=max_assoc {
                    let point = si * max_assoc as usize + (assoc - 1) as usize;
                    let factor = row.factors[probe_for(
                        u64::from(sets) * u64::from(assoc) * u64::from(line_words),
                        probe_line_words,
                    )];
                    fallback[point] += row.weight * factor * row.deltas[point];
                }
            }
        }
        let mut grid = fallback;
        if rows.len() >= MIN_REGRESSION_REPS && plan.intervals().len() > rows.len() {
            let mut simulated = vec![false; plan.intervals().len()];
            for row in &rows {
                simulated[row.interval] = true;
            }
            for (point, g) in grid.iter_mut().enumerate() {
                let beta = fit_point(&rows, point);
                let mut sum = 0.0f64;
                for row in &rows {
                    sum += row.deltas[point];
                }
                for (iv, &is_rep) in plan.intervals().iter().zip(&simulated) {
                    if is_rep {
                        continue;
                    }
                    let len = stream_count(&iv.kinds);
                    if len == 0 {
                        continue;
                    }
                    let x = features(&iv.counts);
                    // Unclamped: per-interval prediction noise must be
                    // allowed to cancel in the sum (flooring negatives
                    // would bias sparse-miss points upward).
                    sum += beta.iter().zip(x).map(|(b, f)| b * f).sum::<f64>();
                }
                let regression = sum.clamp(0.0, total as f64);
                *g = 0.5 * (*g + regression);
            }
        }
        Self {
            policy,
            line_words,
            set_counts: set_counts.to_vec(),
            max_assoc,
            grid,
            accesses: total,
            sim_accesses,
            histogram_points: (analytic_sets.len() as u32) * max_assoc,
            covered_weight: if total == 0 { 1.0 } else { covered as f64 / total as f64 },
        }
    }

    /// Raw (unrounded) weighted miss estimate at one grid point.
    ///
    /// # Panics
    ///
    /// If `sets` is not one of the measured set counts or `assoc` is out
    /// of range — the same contract as `SinglePassSim::misses`.
    pub fn misses_estimate(&self, sets: u32, assoc: u32) -> f64 {
        assert!(assoc >= 1 && assoc <= self.max_assoc, "assoc {assoc} out of range");
        let si = grid_index(&self.set_counts, sets);
        self.grid[si * self.max_assoc as usize + (assoc - 1) as usize]
    }

    /// The estimate rounded to a whole miss count — the oracle-shaped
    /// answer. Exact (bit-for-bit vs full simulation) for degenerate
    /// plans.
    pub fn misses(&self, sets: u32, assoc: u32) -> u64 {
        self.misses_estimate(sets, assoc).round() as u64
    }

    /// Sampled miss ratio: estimate over the *exact* stream length.
    pub fn miss_ratio(&self, sets: u32, assoc: u32) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.misses_estimate(sets, assoc) / self.accesses as f64
    }

    /// Exact number of accesses in the sampled stream (pass-A count —
    /// the miss-ratio denominator), not the number simulated.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses actually fed to engines (warm-up plus bodies).
    pub fn sim_accesses(&self) -> u64 {
        self.sim_accesses
    }

    /// Grid points answered analytically by the histogram fast path.
    pub fn histogram_points(&self) -> u32 {
        self.histogram_points
    }

    /// Fraction of stream accesses whose cluster had a usable
    /// representative (1.0 in practice; below 1.0 only when a cluster's
    /// representative contains no accesses of this stream).
    pub fn covered_fraction(&self) -> f64 {
        self.covered_weight
    }

    /// The replacement policy measured.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Line size in words.
    pub fn line_words(&self) -> u32 {
        self.line_words
    }

    /// The measured set counts.
    pub fn set_counts(&self) -> &[u32] {
        &self.set_counts
    }

    /// Maximum associativity of the grid.
    pub fn max_assoc(&self) -> u32 {
        self.max_assoc
    }
}

fn grid_index(set_counts: &[u32], sets: u32) -> usize {
    set_counts
        .iter()
        .position(|&s| s == sets)
        .unwrap_or_else(|| panic!("set count {sets} was not measured"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_trace;
    use crate::SamplingConfig;
    use mhe_trace::Access;

    const SETS: [u32; 3] = [8, 32, 64];
    const MAX_ASSOC: u32 = 4;
    const LINE: u32 = 8;

    fn trace(n: u64) -> Vec<Access> {
        (0..n)
            .map(|i| {
                let phase = (i / 700) % 3;
                match (i % 5, phase) {
                    (0, _) => Access::load(50_000 + (i * 3) % 900),
                    (_, 0) => Access::inst(i % 300),
                    (_, 1) => Access::inst((i * 11) % 4096),
                    _ => Access::inst(i * 8),
                }
            })
            .collect()
    }

    fn exact_grid(t: &[Access], stream: StreamKind, policy: Policy) -> Vec<u64> {
        let mut sim = SinglePassSim::new_with_policy(policy, LINE, &SETS, MAX_ASSOC);
        sim.run(t.iter().filter(|a| stream.admits(a.kind)).map(|a| a.addr));
        let mut out = Vec::new();
        for &s in &SETS {
            for a in 1..=MAX_ASSOC {
                out.push(sim.misses(s, a));
            }
        }
        out
    }

    fn sampled_grid(sim: &SampledSim) -> Vec<u64> {
        let mut out = Vec::new();
        for &s in &SETS {
            for a in 1..=MAX_ASSOC {
                out.push(sim.misses(s, a));
            }
        }
        out
    }

    fn degenerate_cfg(len: usize) -> SamplingConfig {
        SamplingConfig { interval_accesses: len, clusters: 1, warmup: 0, ..Default::default() }
    }

    #[test]
    fn degenerate_plan_reproduces_full_simulation_bit_for_bit() {
        let t = trace(6000);
        let (plan, windows) = plan_trace(&t, degenerate_cfg(t.len()));
        for stream in [StreamKind::Instruction, StreamKind::Data, StreamKind::Unified] {
            for policy in [Policy::Lru, Policy::Fifo] {
                let sim =
                    SampledSim::measure(policy, LINE, &SETS, MAX_ASSOC, stream, &plan, &windows);
                let exact = exact_grid(&t, stream, policy);
                assert_eq!(sampled_grid(&sim), exact, "{stream:?}/{policy:?}");
                assert_eq!(sim.covered_fraction(), 1.0);
            }
        }
    }

    #[test]
    fn empty_trace_yields_zero_everywhere() {
        let (plan, windows) = plan_trace(&[], SamplingConfig::default());
        let sim = SampledSim::measure(
            Policy::Lru,
            LINE,
            &SETS,
            MAX_ASSOC,
            StreamKind::Unified,
            &plan,
            &windows,
        );
        assert_eq!(sim.accesses(), 0);
        assert_eq!(sim.sim_accesses(), 0);
        assert_eq!(sim.misses(64, 2), 0);
        assert_eq!(sim.miss_ratio(64, 2), 0.0);
    }

    #[test]
    fn trace_shorter_than_one_interval_still_measures() {
        let t = trace(100);
        let cfg = SamplingConfig { interval_accesses: 8192, clusters: 4, ..Default::default() };
        let (plan, windows) = plan_trace(&t, cfg);
        assert_eq!(plan.intervals().len(), 1);
        let sim = SampledSim::measure(
            Policy::Lru,
            LINE,
            &SETS,
            MAX_ASSOC,
            StreamKind::Unified,
            &plan,
            &windows,
        );
        // One partial interval, one cluster, weight 1 — exact again.
        let exact = exact_grid(&t, StreamKind::Unified, Policy::Lru);
        assert_eq!(sampled_grid(&sim), exact);
    }

    #[test]
    fn warmup_longer_than_interval_is_clipped_and_harmless() {
        let t = trace(5000);
        let cfg = SamplingConfig {
            interval_accesses: 500,
            clusters: 3,
            warmup: 2000, // 4× the interval length
            ..Default::default()
        };
        let (plan, windows) = plan_trace(&t, cfg);
        for w in &windows {
            assert!(w.warmup.len() <= 2000);
            assert!(w.body.len() <= 500);
        }
        let sim = SampledSim::measure(
            Policy::Lru,
            LINE,
            &SETS,
            MAX_ASSOC,
            StreamKind::Unified,
            &plan,
            &windows,
        );
        let exact = exact_grid(&t, StreamKind::Unified, Policy::Lru);
        for (i, &s) in SETS.iter().enumerate() {
            for a in 1..=MAX_ASSOC {
                let e = exact[i * MAX_ASSOC as usize + (a - 1) as usize] as f64;
                let got = sim.misses_estimate(s, a);
                let rel = (got - e).abs() / e.max(1.0);
                assert!(rel < 0.35, "sets={s} assoc={a}: est {got:.0} vs exact {e:.0}");
            }
        }
    }

    #[test]
    fn identical_intervals_collapse_to_one_cluster_and_stay_exact_per_interval() {
        // 8 identical intervals: one cluster, weight 8; the estimate is
        // 8 × the representative's misses.
        let period: Vec<Access> = (0..1024u64).map(|i| Access::inst((i * 3) % 700)).collect();
        let t: Vec<Access> = period.iter().cycle().take(8 * 1024).copied().collect();
        let cfg = SamplingConfig {
            interval_accesses: 1024,
            clusters: 4,
            warmup: 0,
            ..Default::default()
        };
        let (plan, windows) = plan_trace(&t, cfg);
        assert_eq!(plan.clusters().len(), 1, "identical intervals must collapse");
        assert_eq!(plan.clusters()[0].intervals, 8);
        let sim = SampledSim::measure(
            Policy::Lru,
            LINE,
            &SETS,
            MAX_ASSOC,
            StreamKind::Unified,
            &plan,
            &windows,
        );
        let mut one = SinglePassSim::new(LINE, &SETS, MAX_ASSOC);
        one.run(windows[0].body.iter().map(|a| a.addr));
        for &s in &SETS {
            for a in 1..=MAX_ASSOC {
                assert_eq!(sim.misses_estimate(s, a), 8.0 * one.misses(s, a) as f64);
            }
        }
    }

    #[test]
    fn histogram_fast_path_engages_above_the_threshold() {
        let t = trace(20_000);
        let cfg = SamplingConfig {
            interval_accesses: 4096,
            clusters: 4,
            warmup: 1024,
            histogram_sets: 64,
            ..Default::default()
        };
        let (plan, windows) = plan_trace(&t, cfg);
        let sim = SampledSim::measure(
            Policy::Lru,
            LINE,
            &SETS,
            MAX_ASSOC,
            StreamKind::Unified,
            &plan,
            &windows,
        );
        assert_eq!(sim.histogram_points(), MAX_ASSOC, "sets=64 is analytic");
        // FIFO never takes the analytic path.
        let fifo = SampledSim::measure(
            Policy::Fifo,
            LINE,
            &SETS,
            MAX_ASSOC,
            StreamKind::Unified,
            &plan,
            &windows,
        );
        assert_eq!(fifo.histogram_points(), 0);
        // And the analytic estimate still lands near the exact one.
        let exact =
            exact_grid(&t, StreamKind::Unified, Policy::Lru)[2 * MAX_ASSOC as usize + 1] as f64; // sets=64, assoc=2
        let est = sim.misses_estimate(64, 2);
        assert!((est - exact).abs() / exact.max(1.0) < 0.25, "est {est:.0} vs exact {exact:.0}");
    }

    #[test]
    fn measurement_is_deterministic() {
        let t = trace(30_000);
        let cfg = SamplingConfig { interval_accesses: 2048, clusters: 6, ..Default::default() };
        let (plan, windows) = plan_trace(&t, cfg);
        let a = SampledSim::measure(
            Policy::Lru,
            LINE,
            &SETS,
            MAX_ASSOC,
            StreamKind::Unified,
            &plan,
            &windows,
        );
        let b = SampledSim::measure(
            Policy::Lru,
            LINE,
            &SETS,
            MAX_ASSOC,
            StreamKind::Unified,
            &plan,
            &windows,
        );
        for &s in &SETS {
            for assoc in 1..=MAX_ASSOC {
                assert_eq!(
                    a.misses_estimate(s, assoc).to_bits(),
                    b.misses_estimate(s, assoc).to_bits()
                );
            }
        }
    }

    /// Enough clusters for the ridge regression plus more intervals than
    /// representatives: the blended estimator (regression averaged with
    /// the cluster-weight fallback) must engage and stay close to exact.
    #[test]
    fn blended_estimator_engages_and_stays_accurate() {
        let t = trace(120_000);
        let cfg = SamplingConfig {
            interval_accesses: 1024,
            clusters: 16,
            warmup: 2048,
            ..Default::default()
        };
        let (plan, windows) = plan_trace(&t, cfg);
        // Preconditions of the regression branch in `measure`.
        assert!(windows.len() >= MIN_REGRESSION_REPS, "regression needs enough representatives");
        assert!(
            plan.intervals().len() > windows.len(),
            "regression only extrapolates when some intervals are unsimulated"
        );
        for policy in [Policy::Lru, Policy::Fifo] {
            for stream in [StreamKind::Instruction, StreamKind::Data, StreamKind::Unified] {
                let sim =
                    SampledSim::measure(policy, LINE, &SETS, MAX_ASSOC, stream, &plan, &windows);
                let exact = exact_grid(&t, stream, policy);
                let accesses = t.iter().filter(|a| stream.admits(a.kind)).count() as f64;
                for (point, (&got, &want)) in sampled_grid(&sim).iter().zip(&exact).enumerate() {
                    let diff = (got as f64 - want as f64).abs();
                    // Miss-ratio error everywhere; relative error only on
                    // points dense enough for it to be meaningful.
                    let ratio_err = diff / accesses;
                    assert!(
                        ratio_err < 0.01,
                        "{stream:?}/{policy:?} point {point}: sampled {got} vs exact {want} \
                         (miss-ratio err {ratio_err:.4})"
                    );
                    if want >= 1000 {
                        let rel = diff / want as f64;
                        assert!(
                            rel < 0.15,
                            "{stream:?}/{policy:?} point {point}: sampled {got} vs exact {want} \
                             ({rel:.3})"
                        );
                    }
                }
            }
        }
    }
}
