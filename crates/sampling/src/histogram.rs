//! Reuse-distance-histogram analytic model for large LRU caches.
//!
//! Following Ling et al. (*Fast Modeling L2 Cache Reuse Distance
//! Histograms*), the expected miss count of a large set-associative LRU
//! cache can be computed from the trace's *global* (fully-associative)
//! LRU stack-distance histogram alone: a reference with global reuse
//! distance `d` lands in a set where, under the usual uniform-mapping
//! assumption, the number of intervening distinct blocks that share its
//! set is binomial `B(d, 1/S)`. The reference hits iff fewer than `A`
//! of them do:
//!
//! ```text
//! P_hit(d, S, A) = Σ_{k=0}^{A-1} C(d, k) (1/S)^k (1 - 1/S)^(d-k)
//! ```
//!
//! One histogram therefore answers *every* (sets, assoc) point of the
//! evaluation grid — the per-set stack simulation that dominates large
//! configurations disappears. The approximation is accurate precisely
//! when sets are many (the binomial concentrates), which is why the
//! sampling pipeline enables it only at or above
//! `SamplingConfig::histogram_sets`.
//!
//! The histogram itself is maintained exactly, in O(log n) per access,
//! with the classic marker-array + Fenwick-tree formulation of Mattson
//! stack distances.

use std::collections::HashMap;

/// Fenwick (binary indexed) tree over marker bits, growable.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    /// Appends one zero-valued position. A Fenwick node covers the
    /// range `(i & (i+1))..=i`, so the new node must be seeded with the
    /// sum its range already holds — plain `resize(.., 0)` would break
    /// the invariant.
    fn push_zero(&mut self) {
        let i = self.tree.len();
        let lo = i & (i + 1);
        let val = if lo == i {
            0
        } else {
            self.prefix(i - 1) - if lo == 0 { 0 } else { self.prefix(lo - 1) }
        };
        self.tree.push(val as u32);
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + i64::from(delta)) as u32;
            i |= i + 1;
        }
    }

    /// Sum of positions `0..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        let mut sum = 0u64;
        loop {
            sum += u64::from(self.tree[i]);
            let parent = (i & (i + 1)).wrapping_sub(1);
            if parent == usize::MAX {
                break;
            }
            i = parent;
        }
        sum
    }
}

/// Counters frozen at a moment in time; see [`ReuseHistogram::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    hist: Vec<u64>,
    cold: u64,
    accesses: u64,
}

/// Exact global LRU stack-distance histogram of a line-address stream.
#[derive(Debug, Clone)]
pub struct ReuseHistogram {
    line_words: u64,
    /// block -> marker position of its most recent access.
    last: HashMap<u64, usize>,
    marks: Fenwick,
    time: usize,
    /// `hist[d]` = number of references at stack distance `d` (distinct
    /// other blocks touched since the previous access to the block).
    hist: Vec<u64>,
    cold: u64,
    accesses: u64,
}

impl ReuseHistogram {
    /// Creates an empty histogram for `line_words`-word cache lines.
    pub fn new(line_words: u32) -> Self {
        Self {
            line_words: u64::from(line_words),
            last: HashMap::new(),
            marks: Fenwick::default(),
            time: 0,
            hist: Vec::new(),
            cold: 0,
            accesses: 0,
        }
    }

    /// Observes one word-address reference.
    pub fn observe(&mut self, addr: u64) {
        let block = addr / self.line_words;
        self.marks.push_zero();
        match self.last.insert(block, self.time) {
            Some(prev) => {
                // Distinct blocks since the previous access = markers
                // strictly after `prev` (each live block has exactly one
                // marker, at its latest access; `prefix` is inclusive of
                // the marker at `prev` itself).
                let d = self.last.len() as u64 - self.marks.prefix(prev);
                let d = d as usize;
                if self.hist.len() <= d {
                    self.hist.resize(d + 1, 0);
                }
                self.hist[d] += 1;
                self.marks.add(prev, -1);
            }
            None => self.cold += 1,
        }
        self.marks.add(self.time, 1);
        self.time += 1;
        self.accesses += 1;
    }

    /// Accesses observed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Cold (first-reference) accesses so far.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// The raw distance histogram observed so far.
    pub fn histogram(&self) -> &[u64] {
        &self.hist
    }

    /// Freezes the counters — pair with
    /// [`ReuseHistogram::expected_misses_since`] to score only the
    /// accesses observed after this point (warm-up exclusion).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot { hist: self.hist.clone(), cold: self.cold, accesses: self.accesses }
    }

    /// Expected LRU misses over the accesses observed *since* `snap`,
    /// for a `sets × assoc` cache with this histogram's line size.
    ///
    /// Cold references always miss; a reuse at distance `d` misses with
    /// probability `1 - P_hit(d, sets, assoc)` under uniform set
    /// mapping. Distances below `assoc` can never miss.
    pub fn expected_misses_since(&self, snap: &HistogramSnapshot, sets: u32, assoc: u32) -> f64 {
        let mut misses = (self.cold - snap.cold) as f64;
        for (d, &n) in self.hist.iter().enumerate() {
            let prior = snap.hist.get(d).copied().unwrap_or(0);
            let n = n - prior;
            if n > 0 {
                misses += n as f64 * p_miss(d as u64, sets, assoc);
            }
        }
        misses
    }

    /// Expected misses over the whole observed stream.
    pub fn expected_misses(&self, sets: u32, assoc: u32) -> f64 {
        let empty = HistogramSnapshot { hist: Vec::new(), cold: 0, accesses: 0 };
        self.expected_misses_since(&empty, sets, assoc)
    }
}

/// `1 - P_hit(d, S, A)`: binomial tail computed iteratively in O(A).
fn p_miss(d: u64, sets: u32, assoc: u32) -> f64 {
    if d < u64::from(assoc) {
        return 0.0; // even adversarial mapping cannot evict it
    }
    if sets <= 1 {
        return 1.0; // fully shared set: d >= assoc distinct blocks evict
    }
    let s = f64::from(sets);
    let q = 1.0 - 1.0 / s;
    // term_0 = q^d; term_{k+1} = term_k * (d-k) / ((k+1) (S-1)).
    let mut term = q.powi(d as i32);
    let mut p_hit = term;
    for k in 0..u64::from(assoc) - 1 {
        term *= (d - k) as f64 / ((k + 1) as f64 * (s - 1.0));
        p_hit += term;
    }
    (1.0 - p_hit).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhe_cache::SinglePassSim;

    #[test]
    fn distances_of_a_cyclic_scan_are_exact() {
        // Scanning 0..B cyclically: every non-cold access has distance
        // B-1 (all other blocks touched in between).
        let mut h = ReuseHistogram::new(1);
        for i in 0..300u64 {
            h.observe(i % 30);
        }
        assert_eq!(h.cold(), 30);
        assert_eq!(h.histogram()[29], 270);
        assert_eq!(h.histogram().iter().sum::<u64>(), 270);
    }

    #[test]
    fn fully_associative_expectation_is_exact() {
        // With sets=1 the binomial model degenerates to the exact LRU
        // stack rule: miss iff distance >= assoc.
        let addrs: Vec<u64> = (0..4000u64).map(|i| (i * 37) % 256).collect();
        let mut h = ReuseHistogram::new(1);
        let mut sim = SinglePassSim::new(1, &[1], 64);
        for &a in &addrs {
            h.observe(a);
            sim.access(a);
        }
        for assoc in [1u32, 2, 8, 64] {
            let expected = h.expected_misses(1, assoc);
            assert_eq!(expected, sim.misses(1, assoc) as f64, "assoc={assoc}");
        }
    }

    #[test]
    fn many_set_expectation_tracks_simulation() {
        // The binomial approximation should land within a few percent of
        // exact simulation once sets are plentiful.
        let addrs: Vec<u64> =
            (0..60_000u64).map(|i| ((i * 17) ^ (i >> 3).wrapping_mul(7919)) % 100_000).collect();
        let mut h = ReuseHistogram::new(8);
        let mut sim = SinglePassSim::new(8, &[512], 4);
        for &a in &addrs {
            h.observe(a);
            sim.access(a);
        }
        for assoc in 1..=4u32 {
            let exact = sim.misses(512, assoc) as f64;
            let est = h.expected_misses(512, assoc);
            let rel = (est - exact).abs() / exact.max(1.0);
            assert!(rel < 0.05, "assoc={assoc}: est={est:.1} exact={exact:.1} rel={rel:.4}");
        }
    }

    #[test]
    fn snapshot_delta_scores_only_the_suffix() {
        let mut h = ReuseHistogram::new(1);
        for i in 0..100u64 {
            h.observe(i % 10);
        }
        let snap = h.snapshot();
        for i in 0..50u64 {
            h.observe(i % 10);
        }
        // Suffix has no cold misses (all blocks warmed) and 50 reuses at
        // distance 9.
        assert_eq!(h.cold() - snap.cold, 0);
        assert_eq!(h.expected_misses_since(&snap, 1, 16), 0.0);
        assert_eq!(h.expected_misses_since(&snap, 1, 8), 50.0);
    }

    #[test]
    fn p_miss_boundaries() {
        assert_eq!(p_miss(0, 64, 1), 0.0);
        assert_eq!(p_miss(3, 64, 4), 0.0);
        assert_eq!(p_miss(4, 1, 4), 1.0);
        let p = p_miss(100, 64, 2);
        assert!(p > 0.0 && p < 1.0);
    }
}
