//! The AHH analytic cache model (Agarwal, Horowitz, Hennessy 1989), as used
//! by the paper.
//!
//! From the three basic trace parameters (`u(1)`, `p1`, `lav`) the model
//! derives, for any cache `C(S, A, L)`:
//!
//! * `u(L)` — the average number of unique cache lines per granule
//!   ([`unique_lines`]; see DESIGN.md on the printed-formula ambiguity),
//! * `P(L, a)` — the probability that `a` lines map to one set (binomial),
//! * `Coll(S, A, L)` — expected collisions per granule ([`collisions`]),
//!   computed by the paper's primary closed form with an automatic
//!   switch to the stable monotone tail series when cancellation bites,
//! * miss scaling between two configurations (Eq. 4.7, [`scale_misses`]).

use crate::math::ln_binom_pmf;
use crate::params::TraceParams;

/// Which `u(L)` formula to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UniqueLineModel {
    /// Physically-derived run-based model (default; validated against
    /// empirical unique-line counts):
    /// `u(L) = u(1)·[p1 + (1−p1)·(1/lav)·(1 + (lav−1)/L)]`.
    #[default]
    RunBased,
    /// The formula as printed in the paper (Eq. 4.5), read with the
    /// normalization that makes it decreasing in `L`:
    /// `u(L) = u(1)·(1 + p1·L − p2) / (L·(1 + p1 − p2))`.
    PrintedAhh,
}

/// Average unique cache lines per granule for line size `line_words`.
///
/// Both models satisfy `u(1) = u1` exactly and decrease monotonically in
/// the line size.
///
/// # Panics
///
/// Panics if `line_words <= 0`.
///
/// # Examples
///
/// ```
/// use mhe_model::{ahh::{unique_lines, UniqueLineModel}, params::TraceParams};
/// let p = TraceParams { u1: 1000.0, p1: 0.2, lav: 8.0 };
/// let u1 = unique_lines(&p, 1.0, UniqueLineModel::RunBased);
/// let u8 = unique_lines(&p, 8.0, UniqueLineModel::RunBased);
/// assert!((u1 - 1000.0).abs() < 1e-9);
/// assert!(u8 < u1);
/// ```
pub fn unique_lines(params: &TraceParams, line_words: f64, model: UniqueLineModel) -> f64 {
    assert!(line_words > 0.0, "line size must be positive, got {line_words}");
    let TraceParams { u1, p1, lav } = *params;
    if u1 <= 0.0 {
        return 0.0;
    }
    let lav = lav.max(1.0);
    match model {
        UniqueLineModel::RunBased => {
            // Isolated refs occupy one line each; a run of length lav with
            // random alignment covers 1 + (lav-1)/L lines.
            u1 * (p1 + (1.0 - p1) / lav * (1.0 + (lav - 1.0) / line_words))
        }
        UniqueLineModel::PrintedAhh => {
            // Literal form: u1·(1 + p1·L − p2) / (L·(1 + p1 − p2)). With
            // p2 from Eq. 4.4 this reduces algebraically to the p1-free
            // expression below, which stays finite as p1 → 0 (pure
            // streaming traces) where the literal form is 0/0.
            u1 * (line_words * (lav - 1.0) + 1.0) / (line_words * lav)
        }
    }
}

/// Expected collisions per granule, `Coll(S, A, L)` (Eqs. 4.6/4.8), given
/// the unique-line count `u = u(L)`.
///
/// Follows the paper's implementation strategy: the primary closed form
/// `u − Σ_{a≤A} S·a·P(a)` is used when numerically safe, otherwise the
/// "initial segment of an infinite monotonically decreasing series" — the
/// exact tail `Σ_{a>A} S·a·P(a)` — is summed in log space.
///
/// # Panics
///
/// Panics if `sets == 0` or `assoc == 0`.
pub fn collisions(u: f64, sets: u32, assoc: u32) -> f64 {
    assert!(sets >= 1, "sets must be positive");
    assert!(assoc >= 1, "associativity must be positive");
    if u <= f64::from(assoc) {
        // Even a worst-case mapping cannot overflow any set.
        return 0.0;
    }
    if sets == 1 {
        // Fully associative: every line lands in the single set.
        return u;
    }
    let primary = collisions_primary(u, sets, assoc);
    // Cancellation guard: the primary form subtracts two ~u-sized numbers.
    if primary > 1e-6 * u {
        primary
    } else {
        collisions_tail(u, sets, assoc)
    }
}

/// Primary closed form: `u − Σ_{a=0..A} S·a·P(a)`.
pub fn collisions_primary(u: f64, sets: u32, assoc: u32) -> f64 {
    let p = 1.0 / f64::from(sets);
    let mut held = 0.0;
    let amax = f64::from(assoc).min(u.floor());
    let mut a = 1.0;
    while a <= amax {
        held += a * ln_binom_pmf(u, a, p).exp();
        a += 1.0;
    }
    (u - f64::from(sets) * held).max(0.0)
}

/// Stable tail series: `Σ_{a=A+1..} S·a·P(a)`, summed in log space so the
/// left tail below the binomial mode cannot underflow to zero.
pub fn collisions_tail(u: f64, sets: u32, assoc: u32) -> f64 {
    let s = f64::from(sets);
    let p = 1.0 / s;
    let mode = u * p;
    let sigma = (u * p * (1.0 - p)).sqrt();
    let amax = (mode + 40.0 * sigma + 50.0).min(u.floor());
    let a0 = f64::from(assoc) + 1.0;
    if a0 > amax {
        return 0.0;
    }
    // Walk a from A+1 upward with the multiplicative pmf recurrence in log
    // space: ln P(a+1) = ln P(a) + ln((u-a)/(a+1)) + ln(p/(1-p)).
    let ln_odds = (p / (1.0 - p)).ln();
    let mut ln_p = ln_binom_pmf(u, a0, p);
    let mut acc = 0.0;
    let mut a = a0;
    loop {
        let term = (ln_p + (s * a).ln()).exp();
        acc += term;
        // Past the mode, terms decrease geometrically; stop when negligible.
        if a > mode && term < 1e-15 * (acc + 1e-300) {
            break;
        }
        if a + 1.0 > amax {
            break;
        }
        ln_p += ((u - a) / (a + 1.0)).ln() + ln_odds;
        a += 1.0;
    }
    acc
}

/// Eq. 4.7: scales measured misses from one configuration to another via
/// the collision ratio: `m(C2) = Coll(C2)/Coll(C1) · m(C1)`.
///
/// Returns 0 when the base configuration has (modeled) zero collisions.
pub fn scale_misses(m_base: f64, coll_base: f64, coll_target: f64) -> f64 {
    if coll_base <= 0.0 {
        0.0
    } else {
        m_base * coll_target / coll_base
    }
}

/// Projects measured misses from one cache configuration to another using
/// the AHH model end-to-end (Eq. 4.7 with modeled `u(L)` on both sides):
/// `m(C2) = Coll(C2) / Coll(C1) · m(C1)`.
///
/// This is the model's classic standalone use — estimate a whole family of
/// caches from one simulation run — independent of dilation.
///
/// # Examples
///
/// ```
/// use mhe_model::{ahh::{project_misses, UniqueLineModel}, params::TraceParams};
/// let p = TraceParams { u1: 4000.0, p1: 0.1, lav: 10.0 };
/// // Measured 10_000 misses on a 64-set direct-mapped cache; project a
/// // 4x larger 2-way cache:
/// let projected = project_misses(&p, (64, 1, 8.0), 10_000.0, (128, 2, 8.0),
///                                UniqueLineModel::RunBased);
/// assert!(projected < 10_000.0);
/// ```
pub fn project_misses(
    params: &TraceParams,
    measured: (u32, u32, f64),
    measured_misses: f64,
    target: (u32, u32, f64),
    model: UniqueLineModel,
) -> f64 {
    let (s1, a1, l1) = measured;
    let (s2, a2, l2) = target;
    let coll1 = collisions(unique_lines(params, l1, model), s1, a1);
    let coll2 = collisions(unique_lines(params, l2, model), s2, a2);
    scale_misses(measured_misses, coll1, coll2)
}

/// Lemma 2: given `f` linear in `g`, and two known points
/// `(g(x1), f(x1))`, `(g(x2), f(x2))`, evaluates `f` at a point with
/// basis value `g`.
///
/// Falls back to the mean of `f1, f2` when `g1 == g2` (degenerate basis).
pub fn interpolate_linear_in(f1: f64, g1: f64, f2: f64, g2: f64, g: f64) -> f64 {
    let dg = g1 - g2;
    if dg.abs() < 1e-12 * (g1.abs() + g2.abs() + 1e-300) {
        return 0.5 * (f1 + f2);
    }
    let a = (f1 - f2) / dg;
    let b = (f2 * g1 - f1 * g2) / dg;
    a * g + b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TraceParams {
        TraceParams { u1: 2000.0, p1: 0.15, lav: 12.0 }
    }

    #[test]
    fn unique_lines_decreasing_in_l_for_both_models() {
        for model in [UniqueLineModel::RunBased, UniqueLineModel::PrintedAhh] {
            let mut prev = f64::INFINITY;
            for l in [1.0, 2.0, 4.0, 7.3, 8.0, 16.0, 64.0] {
                let u = unique_lines(&params(), l, model);
                assert!(u < prev, "{model:?}: u({l}) = {u} not decreasing");
                assert!(u > 0.0);
                prev = u;
            }
        }
    }

    #[test]
    fn unique_lines_at_one_word_is_u1() {
        for model in [UniqueLineModel::RunBased, UniqueLineModel::PrintedAhh] {
            let u = unique_lines(&params(), 1.0, model);
            assert!((u - 2000.0).abs() < 1e-9, "{model:?}");
        }
    }

    #[test]
    fn run_based_matches_exact_enumeration() {
        // A synthetic granule: 100 runs of exactly 12 words plus 30 isolated
        // words -> u1 = 1230, p1 = 30/1230, lav = 12. For L dividing the
        // run structure, compare against direct line counting averaged over
        // alignments.
        let p = TraceParams { u1: 1230.0, p1: 30.0 / 1230.0, lav: 12.0 };
        for l in [2.0f64, 4.0, 8.0] {
            let predicted = unique_lines(&p, l, UniqueLineModel::RunBased);
            // Expected lines: isolated -> 1 each; run of 12 with random
            // alignment -> 1 + 11/L.
            let expect = 30.0 + 100.0 * (1.0 + 11.0 / l);
            assert!(
                (predicted - expect).abs() < 1e-9,
                "L={l}: predicted {predicted}, expected {expect}"
            );
        }
    }

    #[test]
    fn collisions_zero_when_cache_ample() {
        // 10 lines into 1024 sets x 4 ways: collisions vanish.
        let c = collisions(10.0, 1024, 4);
        assert!(c < 1e-6, "got {c}");
    }

    #[test]
    fn collisions_saturate_when_cache_tiny() {
        // u >> S*A: almost every line collides.
        let u = 10_000.0;
        let c = collisions(u, 16, 1);
        assert!(c > 0.95 * u, "got {c}");
        assert!(c <= u);
    }

    #[test]
    fn primary_and_tail_agree_in_stable_regime() {
        for (u, s, a) in [(5000.0, 64, 2), (800.0, 32, 1), (20_000.0, 256, 4)] {
            let p = collisions_primary(u, s, a);
            let t = collisions_tail(u, s, a);
            let rel = (p - t).abs() / t.max(1e-12);
            assert!(rel < 1e-6, "u={u} S={s} A={a}: primary {p}, tail {t}");
        }
    }

    #[test]
    fn tail_is_stable_where_primary_cancels() {
        // Large cache relative to footprint: primary form loses all digits,
        // tail remains positive and sensible.
        let u = 300.0;
        let (s, a) = (4096, 8);
        let t = collisions_tail(u, s, a);
        assert!((0.0..1.0).contains(&t), "tail {t}");
        let auto = collisions(u, s, a);
        assert!((auto - t).abs() <= 1e-9_f64.max(1e-6 * t));
    }

    #[test]
    fn collisions_monotone_in_assoc_and_sets() {
        let u = 4000.0;
        let mut prev = f64::INFINITY;
        for a in [1u32, 2, 4, 8] {
            let c = collisions(u, 128, a);
            assert!(c <= prev);
            prev = c;
        }
        prev = f64::INFINITY;
        for s in [64u32, 128, 256, 512] {
            let c = collisions(u, s, 2);
            assert!(c <= prev);
            prev = c;
        }
    }

    #[test]
    fn collisions_match_monte_carlo() {
        // Throw u = 600 lines uniformly into S = 64 sets and count lines in
        // sets holding more than A = 2; compare with the model.
        let (u, s, a) = (600u64, 64u64, 2u64);
        let trials = 4000;
        let mut total = 0u64;
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..trials {
            let mut counts = vec![0u64; s as usize];
            for _ in 0..u {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                counts[(x % s) as usize] += 1;
            }
            total += counts.iter().filter(|&&c| c > a).copied().sum::<u64>();
        }
        let mc = total as f64 / trials as f64;
        let model = collisions(u as f64, s as u32, a as u32);
        let rel = (mc - model).abs() / model;
        assert!(rel < 0.03, "Monte Carlo {mc} vs model {model}");
    }

    #[test]
    fn scale_misses_is_proportional() {
        assert_eq!(scale_misses(1000.0, 50.0, 100.0), 2000.0);
        assert_eq!(scale_misses(1000.0, 0.0, 100.0), 0.0);
    }

    #[test]
    fn interpolation_hits_endpoints_and_midpoint() {
        // f = 3g + 7.
        let g1 = 2.0;
        let g2 = 10.0;
        let f = |g: f64| 3.0 * g + 7.0;
        assert!((interpolate_linear_in(f(g1), g1, f(g2), g2, g1) - f(g1)).abs() < 1e-12);
        assert!((interpolate_linear_in(f(g1), g1, f(g2), g2, g2) - f(g2)).abs() < 1e-12);
        assert!((interpolate_linear_in(f(g1), g1, f(g2), g2, 6.0) - f(6.0)).abs() < 1e-12);
    }

    #[test]
    fn interpolation_degenerate_basis_returns_mean() {
        let v = interpolate_linear_in(4.0, 5.0, 8.0, 5.0, 5.0);
        assert!((v - 6.0).abs() < 1e-12);
    }

    #[test]
    fn projection_is_identity_on_same_config() {
        let p = params();
        let m = project_misses(&p, (64, 2, 8.0), 5000.0, (64, 2, 8.0), UniqueLineModel::RunBased);
        assert!((m - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn projection_orders_cache_improvements() {
        let p = params();
        let base =
            project_misses(&p, (64, 1, 8.0), 5000.0, (64, 1, 8.0), UniqueLineModel::RunBased);
        let more_sets =
            project_misses(&p, (64, 1, 8.0), 5000.0, (128, 1, 8.0), UniqueLineModel::RunBased);
        let more_ways =
            project_misses(&p, (64, 1, 8.0), 5000.0, (64, 2, 8.0), UniqueLineModel::RunBased);
        assert!(more_sets < base);
        assert!(more_ways < base);
    }

    #[test]
    fn fully_associative_special_case() {
        assert_eq!(collisions(100.0, 1, 8), 100.0);
        assert_eq!(collisions(4.0, 1, 8), 0.0);
    }
}
