//! Trace parameters and the granule-based trace modeler.
//!
//! The AHH model characterizes a trace by three parameters derived in a
//! single simulation-like pass (the paper's `TraceModeler`):
//!
//! * `u(1)` — average unique word references per time granule,
//! * `p1` — average fraction of unique references that are isolated
//!   (no neighbouring reference in the granule),
//! * `lav` — average run length (consecutive-address runs of length ≥ 2).
//!
//! [`ITraceModeler`] processes a single-component trace;
//! [`UTraceModeler`] separates the instruction and data components of a
//! unified trace (only the instruction component dilates). Default granule
//! sizes follow the paper: 10,000 references for the instruction trace and
//! 200,000 for the unified trace.

use mhe_trace::{Access, AccessKind};

/// Default granule size for instruction traces (paper §5.2).
pub const I_GRANULE: usize = 10_000;

/// Default granule size for unified traces (paper §5.2).
pub const U_GRANULE: usize = 200_000;

/// The three basic AHH parameters of one trace component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceParams {
    /// Average unique references per granule, `u(1)`.
    pub u1: f64,
    /// Average isolated-reference fraction, `p1`.
    pub p1: f64,
    /// Average run length, `lav` (≥ 2 when any run exists).
    pub lav: f64,
}

impl TraceParams {
    /// The derived run-transition parameter `p2` (Eq. 4.4):
    /// `p2 = (lav − (1 + p1)) / (lav − 1)`.
    ///
    /// Degenerates to 0 when `lav <= 1` (no runs at all).
    pub fn p2(&self) -> f64 {
        if self.lav <= 1.0 + 1e-9 {
            0.0
        } else {
            (self.lav - (1.0 + self.p1)) / (self.lav - 1.0)
        }
    }

    /// Measures parameters over a word-address stream with the given
    /// granule size.
    ///
    /// Trailing partial granules (fewer than `granule` references) are
    /// discarded, as partial windows bias `u(1)` low.
    ///
    /// # Panics
    ///
    /// Panics if `granule == 0`.
    pub fn measure(trace: impl IntoIterator<Item = u64>, granule: usize) -> TraceParams {
        let mut m = ITraceModeler::new(granule);
        for a in trace {
            m.process(a);
        }
        m.finish()
    }
}

/// Per-granule run statistics over a sorted unique-address set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct GranuleStats {
    /// Unique references.
    pub unique: u64,
    /// Isolated (singular) references.
    pub isolated: u64,
    /// Runs of length ≥ 2.
    pub runs: u64,
    /// Total length of those runs.
    pub run_len: u64,
}

/// Analyzes one granule's unique addresses (sorted in place).
pub(crate) fn analyze_granule(addrs: &mut Vec<u64>) -> GranuleStats {
    let _obs = mhe_obs::span(mhe_obs::Phase::Model);
    mhe_obs::add_events(mhe_obs::Phase::Model, addrs.len() as u64);
    addrs.sort_unstable();
    addrs.dedup();
    let mut stats = GranuleStats { unique: addrs.len() as u64, ..Default::default() };
    let mut i = 0;
    while i < addrs.len() {
        let mut j = i + 1;
        while j < addrs.len() && addrs[j] == addrs[j - 1] + 1 {
            j += 1;
        }
        let len = (j - i) as u64;
        if len == 1 {
            stats.isolated += 1;
        } else {
            stats.runs += 1;
            stats.run_len += len;
        }
        i = j;
    }
    stats
}

/// Accumulates per-granule averages.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct ParamAccum {
    granules: u64,
    u1_sum: f64,
    p1_sum: f64,
    lav_sum: f64,
}

impl ParamAccum {
    pub(crate) fn add(&mut self, g: GranuleStats) {
        if g.unique == 0 {
            return;
        }
        self.granules += 1;
        self.u1_sum += g.unique as f64;
        self.p1_sum += g.isolated as f64 / g.unique as f64;
        // A granule with no run of length >= 2 contributes lav = 1.
        let lav = if g.runs > 0 { g.run_len as f64 / g.runs as f64 } else { 1.0 };
        self.lav_sum += lav;
    }

    pub(crate) fn finish(&self) -> TraceParams {
        if self.granules == 0 {
            // Degenerate (empty trace): harmless neutral parameters.
            return TraceParams { u1: 0.0, p1: 1.0, lav: 1.0 };
        }
        let n = self.granules as f64;
        TraceParams { u1: self.u1_sum / n, p1: self.p1_sum / n, lav: self.lav_sum / n }
    }

    pub(crate) fn granules(&self) -> u64 {
        self.granules
    }
}

/// Streaming modeler for a single-component trace (the paper's
/// `ItraceModeler`).
#[derive(Debug, Clone)]
pub struct ITraceModeler {
    granule: usize,
    seen: usize,
    addrs: Vec<u64>,
    accum: ParamAccum,
}

impl ITraceModeler {
    /// Creates a modeler with the given granule size.
    ///
    /// # Panics
    ///
    /// Panics if `granule == 0`.
    pub fn new(granule: usize) -> Self {
        assert!(granule > 0, "granule size must be positive");
        Self { granule, seen: 0, addrs: Vec::with_capacity(granule), accum: ParamAccum::default() }
    }

    /// Processes one reference.
    pub fn process(&mut self, addr: u64) {
        self.addrs.push(addr);
        self.seen += 1;
        if self.seen == self.granule {
            let stats = analyze_granule(&mut self.addrs);
            self.accum.add(stats);
            self.addrs.clear();
            self.seen = 0;
        }
    }

    /// Number of complete granules processed so far.
    pub fn granules(&self) -> u64 {
        self.accum.granules()
    }

    /// Finishes, returning the averaged parameters (discarding any trailing
    /// partial granule).
    pub fn finish(self) -> TraceParams {
        self.accum.finish()
    }
}

/// Parameters of a unified trace: instruction and data components measured
/// separately (only the instruction component dilates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnifiedParams {
    /// Instruction-component parameters (`uI(1)`, `p1I`, `lavI`).
    pub inst: TraceParams,
    /// Data-component parameters (`uD(1)`, `p1D`, `lavD`).
    pub data: TraceParams,
}

/// Streaming modeler for a unified trace (the paper's `UtraceModeler`):
/// granule boundaries fall every `granule` *total* references, but the
/// instruction and data addresses are sorted and analyzed separately.
#[derive(Debug, Clone)]
pub struct UTraceModeler {
    granule: usize,
    seen: usize,
    iaddrs: Vec<u64>,
    daddrs: Vec<u64>,
    iaccum: ParamAccum,
    daccum: ParamAccum,
}

impl UTraceModeler {
    /// Creates a modeler with the given granule size (total references).
    ///
    /// # Panics
    ///
    /// Panics if `granule == 0`.
    pub fn new(granule: usize) -> Self {
        assert!(granule > 0, "granule size must be positive");
        Self {
            granule,
            seen: 0,
            iaddrs: Vec::new(),
            daddrs: Vec::new(),
            iaccum: ParamAccum::default(),
            daccum: ParamAccum::default(),
        }
    }

    /// Processes one access.
    pub fn process(&mut self, access: Access) {
        match access.kind {
            AccessKind::Inst => self.iaddrs.push(access.addr),
            AccessKind::Load | AccessKind::Store => self.daddrs.push(access.addr),
        }
        self.seen += 1;
        if self.seen == self.granule {
            self.iaccum.add(analyze_granule(&mut self.iaddrs));
            self.daccum.add(analyze_granule(&mut self.daddrs));
            self.iaddrs.clear();
            self.daddrs.clear();
            self.seen = 0;
        }
    }

    /// Measures a whole access stream.
    pub fn measure(trace: impl IntoIterator<Item = Access>, granule: usize) -> UnifiedParams {
        let mut m = Self::new(granule);
        for a in trace {
            m.process(a);
        }
        m.finish()
    }

    /// Finishes, returning both components' parameters.
    pub fn finish(self) -> UnifiedParams {
        UnifiedParams { inst: self.iaccum.finish(), data: self.daccum.finish() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granule_analysis_identifies_runs_and_isolates() {
        let mut addrs = vec![10, 11, 12, 20, 30, 31, 12, 11];
        let g = analyze_granule(&mut addrs);
        assert_eq!(g.unique, 6);
        assert_eq!(g.isolated, 1); // 20
        assert_eq!(g.runs, 2); // 10-12 and 30-31
        assert_eq!(g.run_len, 5);
    }

    #[test]
    fn all_isolated_gives_p1_one() {
        let trace: Vec<u64> = (0..10_000u64).map(|i| i * 10).collect();
        let p = TraceParams::measure(trace, 1000);
        assert!((p.p1 - 1.0).abs() < 1e-12);
        assert_eq!(p.lav, 1.0);
        assert_eq!(p.p2(), 0.0);
    }

    #[test]
    fn pure_streaming_gives_p1_zero_and_long_runs() {
        let trace: Vec<u64> = (0..10_000u64).collect();
        let p = TraceParams::measure(trace, 1000);
        assert!(p.p1 < 1e-12);
        // Each granule is one run of 1000 consecutive addresses.
        assert!((p.lav - 1000.0).abs() < 1e-9);
        assert!((p.u1 - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_addresses_do_not_inflate_u1() {
        let trace: Vec<u64> = (0..1000u64).map(|i| i % 10).collect();
        let p = TraceParams::measure(trace, 1000);
        assert!((p.u1 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn p2_matches_formula() {
        let p = TraceParams { u1: 100.0, p1: 0.2, lav: 5.0 };
        let expect = (5.0 - 1.2) / 4.0;
        assert!((p.p2() - expect).abs() < 1e-12);
    }

    #[test]
    fn partial_trailing_granule_is_discarded() {
        let mut m = ITraceModeler::new(100);
        for a in 0..250u64 {
            m.process(a);
        }
        assert_eq!(m.granules(), 2);
    }

    #[test]
    fn unified_modeler_separates_components() {
        use mhe_trace::Access;
        let mut trace = Vec::new();
        for i in 0..500u64 {
            trace.push(Access::inst(i)); // streaming instructions
            trace.push(Access::load(10_000 + i * 7)); // isolated data
        }
        let p = UTraceModeler::measure(trace, 1000);
        assert!(p.inst.p1 < 0.02, "instructions stream: p1 {}", p.inst.p1);
        assert!(p.data.p1 > 0.98, "data isolated: p1 {}", p.data.p1);
        assert!((p.inst.u1 - 500.0).abs() < 1.0);
        assert!((p.data.u1 - 500.0).abs() < 1.0);
    }

    #[test]
    fn empty_trace_degenerates_gracefully() {
        let p = TraceParams::measure(std::iter::empty(), 100);
        assert_eq!(p.u1, 0.0);
        assert_eq!(p.p2(), 0.0);
    }
}
