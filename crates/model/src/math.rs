//! Numerical helpers: log-gamma and log-binomial probabilities.
//!
//! The AHH collision model needs binomial probabilities `P(L, a)` with a
//! *fractional* trial count (the average unique-line count `u(L)`), computed
//! for trial counts up to millions without under/overflow — hence log-space
//! evaluation via a Lanczos log-gamma.

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
///
/// Accurate to ~1e-13 relative over the range used here.
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Examples
///
/// ```
/// use mhe_model::math::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-12);          // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument, got {x}");
    // Lanczos coefficients (g = 7, n = 9).
    #[allow(clippy::excessive_precision)] // published coefficients, kept verbatim
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)] // published coefficients, kept verbatim
    const C: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = C[0];
    let t = x + G + 0.5;
    for (i, &c) in C.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(n, k)` for real `n >= k >= 0` (continuous extension via Γ).
///
/// # Panics
///
/// Panics if `k < 0` or `k > n`.
pub fn ln_choose(n: f64, k: f64) -> f64 {
    assert!(k >= 0.0 && k <= n, "ln_choose requires 0 <= k <= n; got n={n}, k={k}");
    if k == 0.0 || k == n {
        return 0.0;
    }
    ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0)
}

/// `ln [ C(n, a) p^a (1-p)^(n-a) ]`: the log binomial pmf with real `n`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` or `a` outside `[0, n]`.
pub fn ln_binom_pmf(n: f64, a: f64, p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    ln_choose(n, a) + a * p.ln() + (n - a) * (1.0 - p).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= f64::from(n - 1);
            }
            let err = (ln_gamma(f64::from(n)) - fact.ln()).abs();
            assert!(err < 1e-9, "Γ({n}) error {err}");
        }
    }

    #[test]
    fn gamma_half_is_sqrt_pi() {
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-10);
    }

    #[test]
    fn choose_matches_pascal() {
        assert!((ln_choose(10.0, 3.0) - 120f64.ln()).abs() < 1e-9);
        assert!((ln_choose(52.0, 5.0) - 2_598_960f64.ln()).abs() < 1e-8);
        assert_eq!(ln_choose(7.0, 0.0), 0.0);
        assert_eq!(ln_choose(7.0, 7.0), 0.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 40.0;
        let p = 0.125;
        let total: f64 = (0..=40).map(|a| ln_binom_pmf(n, f64::from(a), p).exp()).sum();
        assert!((total - 1.0).abs() < 1e-10, "sum {total}");
    }

    #[test]
    fn binomial_pmf_handles_huge_n_without_underflow_at_mode() {
        let n: f64 = 1.0e6;
        let p = 1.0 / 128.0;
        let mode = (n * p).floor();
        let lp = ln_binom_pmf(n, mode, p);
        assert!(lp.is_finite());
        // Near the mode of Bin(1e6, 1/128) the pmf is ≈ 1/σ√(2π) ≈ 0.0045.
        assert!(lp.exp() > 1e-4 && lp.exp() < 1.0);
    }

    #[test]
    fn fractional_n_is_monotone_between_integers() {
        let a = ln_binom_pmf(10.0, 2.0, 0.3);
        let b = ln_binom_pmf(10.5, 2.0, 0.3);
        let c = ln_binom_pmf(11.0, 2.0, 0.3);
        assert!(a.is_finite() && b.is_finite() && c.is_finite());
        assert!((a < b) == (b < c), "fractional n should interpolate smoothly");
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
