//! Analytic cache modeling: trace parameters and the AHH model.
//!
//! This crate reproduces the paper's `TraceModeler` and its use of the
//! analytic cache model of Agarwal, Horowitz and Hennessy (the "AHH
//! model"):
//!
//! * [`params`] — granule-based extraction of the three basic trace
//!   parameters `u(1)`, `p1`, `lav`, for single-component traces and for
//!   the instruction/data split of unified traces;
//! * [`ahh`] — derived quantities `p2`, `u(L)`, `P(L, a)`, collisions
//!   `Coll(S, A, L)` (with the paper's numerically stable fallback series),
//!   miss-rate scaling between configurations, and the Lemma-2 linear
//!   interpolation used to evaluate infeasible line sizes;
//! * [`math`] — log-gamma / log-binomial machinery.
//!
//! # Quick start
//!
//! ```
//! use mhe_model::{ahh, params::TraceParams};
//!
//! // Characterize a streaming trace in one pass...
//! let trace = (0..100_000u64).map(|i| i % 20_000);
//! let p = TraceParams::measure(trace, 10_000);
//!
//! // ...then ask the model about any cache geometry.
//! let u8 = ahh::unique_lines(&p, 8.0, ahh::UniqueLineModel::RunBased);
//! let coll = ahh::collisions(u8, 64, 2);
//! assert!(coll >= 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ahh;
pub mod math;
pub mod params;

pub use ahh::{collisions, scale_misses, unique_lines, UniqueLineModel};
pub use params::{ITraceModeler, TraceParams, UTraceModeler, UnifiedParams, I_GRANULE, U_GRANULE};
