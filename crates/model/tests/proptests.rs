//! Property tests for the AHH model: monotonicity, the equivalence of the
//! two collision computations, and interpolation identities.

use mhe_model::ahh::{
    collisions, collisions_primary, collisions_tail, interpolate_linear_in, unique_lines,
    UniqueLineModel,
};
use mhe_model::params::TraceParams;
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = TraceParams> {
    (10.0f64..100_000.0, 0.0f64..1.0, 1.0f64..64.0).prop_map(|(u1, p1, lav)| TraceParams {
        u1,
        p1,
        lav,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn unique_lines_monotone_decreasing_in_l(p in params_strategy()) {
        for model in [UniqueLineModel::RunBased, UniqueLineModel::PrintedAhh] {
            let mut prev = f64::INFINITY;
            for l in [1.0, 1.5, 2.0, 3.0, 4.0, 8.0, 16.0, 32.0] {
                let u = unique_lines(&p, l, model);
                prop_assert!(u <= prev + 1e-9, "{:?}: u({}) = {} > {}", model, l, u, prev);
                prop_assert!(u > 0.0);
                prev = u;
            }
        }
    }

    #[test]
    fn unique_lines_at_one_is_u1(p in params_strategy()) {
        for model in [UniqueLineModel::RunBased, UniqueLineModel::PrintedAhh] {
            let u = unique_lines(&p, 1.0, model);
            prop_assert!((u - p.u1).abs() < 1e-6 * p.u1, "{:?}: {} != {}", model, u, p.u1);
        }
    }

    #[test]
    fn collision_methods_agree(
        u in 1.0f64..50_000.0,
        sets_pow in 1u32..12,
        assoc in 1u32..9,
    ) {
        let sets = 1u32 << sets_pow;
        let p = collisions_primary(u, sets, assoc);
        let t = collisions_tail(u, sets, assoc);
        // Primary loses digits when the result is tiny; only compare where
        // it is numerically meaningful.
        if p > 1e-6 * u {
            let rel = (p - t).abs() / p.max(t);
            prop_assert!(rel < 1e-4, "u={} S={} A={}: primary {} vs tail {}", u, sets, assoc, p, t);
        }
    }

    #[test]
    fn collisions_bounded_by_u(
        u in 0.0f64..50_000.0,
        sets_pow in 0u32..12,
        assoc in 1u32..9,
    ) {
        let c = collisions(u, 1 << sets_pow, assoc);
        prop_assert!(c >= 0.0);
        prop_assert!(c <= u + 1e-6, "Coll {} exceeds u {}", c, u);
    }

    #[test]
    fn collisions_monotone_in_geometry(
        u in 100.0f64..20_000.0,
        sets_pow in 2u32..10,
        assoc in 1u32..6,
    ) {
        let sets = 1u32 << sets_pow;
        let c = collisions(u, sets, assoc);
        prop_assert!(collisions(u, sets * 2, assoc) <= c + 1e-6);
        prop_assert!(collisions(u, sets, assoc + 1) <= c + 1e-6);
        prop_assert!(collisions(u * 1.1, sets, assoc) + 1e-6 >= c);
    }

    #[test]
    fn interpolation_reproduces_linear_functions(
        a in -100.0f64..100.0,
        b in -1000.0f64..1000.0,
        g1 in -100.0f64..100.0,
        g2 in -100.0f64..100.0,
        g in -100.0f64..100.0,
    ) {
        prop_assume!((g1 - g2).abs() > 1e-3);
        let f = |x: f64| a * x + b;
        let v = interpolate_linear_in(f(g1), g1, f(g2), g2, g);
        let scale = f(g).abs().max(1.0);
        prop_assert!((v - f(g)).abs() < 1e-6 * scale, "{} vs {}", v, f(g));
    }

    #[test]
    fn measured_params_are_well_formed(seed in 0u64..1000) {
        // Any deterministic pseudo-trace yields sane parameters.
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let trace: Vec<u64> = (0..5000u64)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 2 == 0 { i % 700 } else { (x >> 20) % 4096 }
            })
            .collect();
        let p = TraceParams::measure(trace, 1000);
        prop_assert!(p.u1 > 0.0 && p.u1 <= 1000.0);
        prop_assert!((0.0..=1.0).contains(&p.p1));
        prop_assert!(p.lav >= 1.0);
        prop_assert!(p.p2() <= 1.0);
    }
}
