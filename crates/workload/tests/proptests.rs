//! Property tests: program synthesis is valid and execution well-behaved
//! for arbitrary profile parameters, not just the ten presets.

use mhe_workload::exec::Executor;
use mhe_workload::gen::ProgramGenerator;
use mhe_workload::profile::{PatternMix, Profile};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = Profile> {
    (
        1u64..u64::MAX,
        4usize..40,
        (2usize..8, 8usize..24),
        2.0f64..12.0,
        0.0f64..0.5,
        (0.05f64..0.3, 0.02f64..0.2),
        (0.05f64..0.3, 0.1f64..0.4, 0.05f64..0.25),
        3.0f64..30.0,
    )
        .prop_map(|(seed, procs, (rlo, rhi), ops, ff, (fl, fs), (pl, pi, pc), trip)| Profile {
            name: "prop",
            seed,
            procs,
            regions_per_proc: (rlo, rlo + rhi),
            mean_ops_per_block: ops,
            frac_float: ff,
            frac_load: fl,
            frac_store: fs,
            pattern_mix: PatternMix { stack: 0.3, hot: 0.2, stream: 0.3, random: 0.2 },
            ws_words: 1 << 12,
            stream_len: (64, 1024),
            hot_words: 128,
            mean_trip: trip,
            p_loop: pl,
            p_if: pi,
            p_call: pc,
            ilp_strands: (1, 4),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_profiles_generate_valid_programs(profile in profile_strategy()) {
        let program = ProgramGenerator::new(profile).generate();
        prop_assert_eq!(program.validate(), Ok(()));
        prop_assert!(program.block_count() >= program.procedures.len());
    }

    #[test]
    fn execution_never_leaves_the_program(profile in profile_strategy(), seed in 0u64..100) {
        let program = ProgramGenerator::new(profile).generate();
        for ev in Executor::new(&program, seed).take(5_000) {
            let proc = program.proc(ev.proc);
            prop_assert!((ev.block.0 as usize) < proc.blocks.len());
            prop_assert!(ev.depth < 4096);
        }
    }

    #[test]
    fn execution_depth_returns_to_zero(profile in profile_strategy(), seed in 0u64..100) {
        // The DAG call graph guarantees every call eventually returns; the
        // executor must therefore revisit depth 0 (either by returning or
        // by restarting after Exit).
        let program = ProgramGenerator::new(profile).generate();
        let zero_visits = Executor::new(&program, seed)
            .take(50_000)
            .filter(|ev| ev.depth == 0)
            .count();
        prop_assert!(zero_visits >= 2, "never returned to depth 0");
    }
}
