//! Execution engine: interprets a [`Program`] into a basic-block event
//! trace.
//!
//! This plays the role of the paper's emulator + execution engine: it
//! produces the *event trace* — the dynamic sequence of basic blocks — that
//! is independent of any particular processor's instruction format or code
//! layout. Branch directions are drawn from a seeded generator, so the block
//! sequence is a pure function of `(program, seed)`; in particular it is
//! identical for every processor in the design space, which is the paper's
//! step-1 modeling assumption.

use crate::ir::{BlockId, ProcId, Program, Terminator};
use crate::rng::Xoshiro256;

/// One event: a basic block entered at a given call depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockEvent {
    /// Procedure containing the block.
    pub proc: ProcId,
    /// Block within the procedure.
    pub block: BlockId,
    /// Call depth at the time of execution (entry procedure = 0).
    pub depth: u32,
}

/// Streaming interpreter producing an endless [`BlockEvent`] sequence.
///
/// When the program `Exit`s, the executor transparently restarts it (with the
/// branch-decision generator carrying on), modeling an application processing
/// successive input buffers. Use [`Iterator::take`] to bound the trace.
///
/// # Examples
///
/// ```
/// use mhe_workload::{Benchmark, exec::Executor};
/// let program = Benchmark::Unepic.generate();
/// let events: Vec<_> = Executor::new(&program, 42).take(1000).collect();
/// assert_eq!(events.len(), 1000);
/// assert_eq!(events[0].depth, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Executor<'p> {
    program: &'p Program,
    rng: Xoshiro256,
    /// Return continuations: (procedure, block to resume at).
    stack: Vec<(ProcId, BlockId)>,
    cur: (ProcId, BlockId),
    /// Number of completed program runs (restarts after `Exit`).
    runs: u64,
}

/// Safety cap on call depth; the generator's DAG call graph keeps real depth
/// far below this.
const MAX_DEPTH: usize = 4096;

impl<'p> Executor<'p> {
    /// Creates an executor positioned at the program entry.
    pub fn new(program: &'p Program, seed: u64) -> Self {
        Self {
            program,
            rng: Xoshiro256::seed_from(seed),
            stack: Vec::new(),
            cur: (program.entry, BlockId(0)),
            runs: 0,
        }
    }

    /// Number of completed program runs so far.
    pub fn completed_runs(&self) -> u64 {
        self.runs
    }

    fn advance(&mut self) {
        let (proc, block) = self.cur;
        let term = &self.program.block(proc, block).terminator;
        match *term {
            Terminator::Jump { target } => {
                self.cur = (proc, target);
            }
            Terminator::Branch { taken, fall, p_taken } => {
                self.cur = (proc, if self.rng.chance(p_taken) { taken } else { fall });
            }
            Terminator::Call { callee, ret } => {
                if self.stack.len() >= MAX_DEPTH {
                    // Degenerate recursion guard: skip the call.
                    self.cur = (proc, ret);
                } else {
                    self.stack.push((proc, ret));
                    self.cur = (callee, BlockId(0));
                }
            }
            Terminator::Return => {
                if let Some(ret) = self.stack.pop() {
                    self.cur = ret;
                } else {
                    // Return from the entry procedure acts as Exit.
                    self.restart();
                }
            }
            Terminator::Exit => {
                self.restart();
            }
        }
    }

    fn restart(&mut self) {
        self.runs += 1;
        self.stack.clear();
        self.cur = (self.program.entry, BlockId(0));
    }
}

impl Iterator for Executor<'_> {
    type Item = BlockEvent;

    fn next(&mut self) -> Option<BlockEvent> {
        let event =
            BlockEvent { proc: self.cur.0, block: self.cur.1, depth: self.stack.len() as u32 };
        self.advance();
        Some(event)
    }
}

/// Dynamic execution counts of every basic block.
///
/// Indexable as `counts[proc][block]`. Used for profile-guided code layout in
/// the linker and for the *dynamic* dilation distribution of Figure 5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockFrequencies {
    counts: Vec<Vec<u64>>,
    total: u64,
}

impl BlockFrequencies {
    /// Profiles `program` for `events` block events starting from `seed`.
    pub fn profile(program: &Program, seed: u64, events: usize) -> Self {
        let _obs = mhe_obs::span(mhe_obs::Phase::Profile);
        let mut counts: Vec<Vec<u64>> =
            program.procedures.iter().map(|p| vec![0u64; p.blocks.len()]).collect();
        for ev in Executor::new(program, seed).take(events) {
            counts[ev.proc.0 as usize][ev.block.0 as usize] += 1;
        }
        mhe_obs::add_events(mhe_obs::Phase::Profile, events as u64);
        Self { counts, total: events as u64 }
    }

    /// Execution count of a block.
    pub fn count(&self, proc: ProcId, block: BlockId) -> u64 {
        self.counts[proc.0 as usize][block.0 as usize]
    }

    /// Total events profiled.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total execution count of a procedure.
    pub fn proc_count(&self, proc: ProcId) -> u64 {
        self.counts[proc.0 as usize].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;

    #[test]
    fn executor_is_deterministic() {
        let p = Benchmark::Epic.generate();
        let a: Vec<_> = Executor::new(&p, 7).take(5000).collect();
        let b: Vec<_> = Executor::new(&p, 7).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = Benchmark::Epic.generate();
        let a: Vec<_> = Executor::new(&p, 1).take(5000).collect();
        let b: Vec<_> = Executor::new(&p, 2).take(5000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn trace_starts_at_entry() {
        let p = Benchmark::Gcc.generate();
        let first = Executor::new(&p, 3).next().unwrap();
        assert_eq!(first.proc, p.entry);
        assert_eq!(first.block, BlockId(0));
        assert_eq!(first.depth, 0);
    }

    #[test]
    fn depth_changes_are_single_steps() {
        let p = Benchmark::Vortex.generate();
        let events: Vec<_> = Executor::new(&p, 11).take(20_000).collect();
        for w in events.windows(2) {
            let d0 = i64::from(w[0].depth);
            let d1 = i64::from(w[1].depth);
            assert!((d0 - d1).abs() <= 1 || w[1].depth == 0, "depth jumped from {d0} to {d1}");
        }
    }

    #[test]
    fn executor_restarts_after_exit() {
        let p = Benchmark::Unepic.generate();
        let mut ex = Executor::new(&p, 5);
        // Drive long enough to see at least one restart.
        for _ in 0..2_000_000 {
            ex.next();
            if ex.completed_runs() > 0 {
                break;
            }
        }
        assert!(ex.completed_runs() > 0, "program never completed a run");
    }

    #[test]
    fn block_references_are_valid() {
        let p = Benchmark::Rasta.generate();
        for ev in Executor::new(&p, 13).take(50_000) {
            let proc = p.proc(ev.proc);
            assert!((ev.block.0 as usize) < proc.blocks.len());
        }
    }

    #[test]
    fn frequencies_sum_to_total() {
        let p = Benchmark::Epic.generate();
        let n = 30_000;
        let f = BlockFrequencies::profile(&p, 17, n);
        let sum: u64 = (0..p.procedures.len()).map(|i| f.proc_count(ProcId(i as u32))).sum();
        assert_eq!(sum, n as u64);
        assert_eq!(f.total(), n as u64);
    }

    #[test]
    fn execution_reaches_many_procedures() {
        let p = Benchmark::Gcc.generate();
        let f = BlockFrequencies::profile(&p, 19, 200_000);
        let reached =
            (0..p.procedures.len()).filter(|&i| f.proc_count(ProcId(i as u32)) > 0).count();
        assert!(
            reached > p.procedures.len() / 4,
            "only {reached}/{} procedures reached",
            p.procedures.len()
        );
    }
}
