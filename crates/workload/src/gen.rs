//! Seeded synthesis of benchmark-like programs.
//!
//! [`ProgramGenerator`] turns a [`Profile`] into a [`Program`] by building,
//! for every procedure, a structured control-flow graph out of four region
//! kinds — straight-line blocks, if-then-else diamonds, bottom-tested loops,
//! and call sites — and filling blocks with operations drawn from the
//! profile's class mix. The call graph is a DAG (procedure *i* only calls
//! procedures with larger indices), which bounds call depth and guarantees
//! probabilistic termination of every run.

use crate::data::{DataPattern, DATA_BASE, SPILL_AREA_OFFSET};
use crate::ir::{
    BasicBlock, BlockId, Op, OpClass, PatternId, ProcId, Procedure, Program, RegClass, Terminator,
    Vreg,
};
use crate::profile::Profile;
use crate::rng::Xoshiro256;

/// Number of low-index virtual registers treated as live-in values
/// (parameters and global-like values) per class.
const LIVE_IN_VREGS: u32 = 12;

/// Hard cap on operations in one generated block.
const MAX_OPS_PER_BLOCK: u64 = 24;

/// Synthesizes a [`Program`] from a [`Profile`].
///
/// # Examples
///
/// ```
/// use mhe_workload::{gen::ProgramGenerator, Benchmark};
/// let program = ProgramGenerator::new(Benchmark::Rasta.profile()).generate();
/// assert!(program.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct ProgramGenerator {
    profile: Profile,
    rng: Xoshiro256,
    patterns: Vec<DataPattern>,
    /// Pattern ids of the shared hot regions.
    hot_patterns: Vec<PatternId>,
    /// Base and length of the shared random-access working set.
    ws_base: u64,
    /// Next free word in the data segment for stream arrays.
    next_data: u64,
}

impl ProgramGenerator {
    /// Creates a generator for the given profile.
    pub fn new(profile: Profile) -> Self {
        let rng = Xoshiro256::seed_from(profile.seed);
        Self {
            rng,
            patterns: Vec::new(),
            hot_patterns: Vec::new(),
            ws_base: 0,
            next_data: DATA_BASE,
            profile,
        }
    }

    /// Runs synthesis, consuming the generator.
    pub fn generate(mut self) -> Program {
        self.allocate_shared_regions();
        let nprocs = self.profile.procs;
        let mut procedures = Vec::with_capacity(nprocs);
        procedures.push(self.generate_driver(nprocs));
        for p in 1..nprocs {
            procedures.push(self.generate_procedure(p, nprocs));
        }
        let program = Program {
            name: self.profile.name.to_string(),
            procedures,
            patterns: self.patterns,
            entry: ProcId(0),
        };
        debug_assert_eq!(program.validate(), Ok(()));
        program
    }

    fn allocate_shared_regions(&mut self) {
        // A handful of hot regions shared program-wide.
        let n_hot = 4usize;
        let per = (self.profile.hot_words / n_hot as u64).max(8);
        for _ in 0..n_hot {
            let pid = PatternId(self.patterns.len() as u32);
            self.patterns.push(DataPattern::Hot { base: self.next_data, len_words: per });
            self.next_data += per;
            self.hot_patterns.push(pid);
        }
        self.ws_base = self.next_data;
        self.next_data += self.profile.ws_words;
    }

    /// Builds the entry procedure: an application driver loop whose body
    /// calls phase procedures spread across the whole program, guaranteeing
    /// broad dynamic code coverage (an application's `main` calling its
    /// processing phases).
    fn generate_driver(&mut self, nprocs: usize) -> Procedure {
        let mut builder = ProcBuilder {
            blocks: Vec::new(),
            int_vregs: LIVE_IN_VREGS,
            float_vregs: LIVE_IN_VREGS,
        };
        let n_calls = (nprocs - 1).clamp(1, 8);
        let preheader = self.new_block(&mut builder);
        let mut sites = Vec::with_capacity(n_calls);
        for _ in 0..n_calls {
            sites.push(self.new_block(&mut builder));
        }
        let latch = self.new_block(&mut builder);
        let exit = self.new_block(&mut builder);
        builder.blocks[preheader.0 as usize].terminator = Terminator::Jump { target: sites[0] };
        for (k, &site) in sites.iter().enumerate() {
            // Spread callees across [1, nprocs) with per-program jitter.
            let lo = 1 + k * (nprocs - 1) / n_calls;
            let hi = 1 + (k + 1) * (nprocs - 1) / n_calls;
            let callee =
                ProcId(self.rng.range_inclusive(lo as u64, (hi - 1).max(lo) as u64) as u32);
            let ret = if k + 1 < n_calls { sites[k + 1] } else { latch };
            builder.blocks[site.0 as usize].terminator = Terminator::Call { callee, ret };
        }
        // Re-run the phase loop a few times per program run.
        builder.blocks[latch.0 as usize].terminator =
            Terminator::Branch { taken: sites[0], fall: exit, p_taken: 0.75 };
        builder.blocks[exit.0 as usize].terminator = Terminator::Exit;
        Procedure {
            name: format!("{}_main", self.profile.name.replace('.', "_")),
            blocks: builder.blocks,
            int_vregs: builder.int_vregs,
            float_vregs: builder.float_vregs,
        }
    }

    fn generate_procedure(&mut self, index: usize, nprocs: usize) -> Procedure {
        let (lo, hi) = self.profile.regions_per_proc;
        let budget = self.rng.range_inclusive(lo as u64, hi as u64) as usize;
        let mut builder = ProcBuilder {
            blocks: Vec::new(),
            int_vregs: LIVE_IN_VREGS,
            float_vregs: LIVE_IN_VREGS,
        };
        let (entry, exit) = self.build_region(&mut builder, budget, index, nprocs);
        debug_assert_eq!(entry, BlockId(0), "entry region must start at block 0");
        let final_term = if index == 0 { Terminator::Exit } else { Terminator::Return };
        builder.blocks[exit.0 as usize].terminator = final_term;
        Procedure {
            name: format!("{}_{index}", self.profile.name.replace('.', "_")),
            blocks: builder.blocks,
            int_vregs: builder.int_vregs,
            float_vregs: builder.float_vregs,
        }
    }

    /// Builds a single-entry/single-exit region; returns (entry, exit) block
    /// ids. The exit block's terminator is a placeholder the caller patches.
    fn build_region(
        &mut self,
        b: &mut ProcBuilder,
        budget: usize,
        proc_index: usize,
        nprocs: usize,
    ) -> (BlockId, BlockId) {
        if budget <= 1 {
            let blk = self.new_block(b);
            return (blk, blk);
        }
        let p = &self.profile;
        let can_call = proc_index + 1 < nprocs;
        let w_call = if can_call { p.p_call } else { 0.0 };
        let kind = self.rng.weighted_index(&[
            p.p_loop,
            p.p_if,
            w_call,
            (1.0 - p.p_loop - p.p_if - w_call).max(0.05),
        ]);
        match kind {
            0 => self.build_loop(b, budget, proc_index, nprocs),
            1 => self.build_if(b, budget, proc_index, nprocs),
            2 => self.build_call(b, budget, proc_index, nprocs),
            _ => self.build_seq(b, budget, proc_index, nprocs),
        }
    }

    fn build_seq(
        &mut self,
        b: &mut ProcBuilder,
        budget: usize,
        proc_index: usize,
        nprocs: usize,
    ) -> (BlockId, BlockId) {
        let first = budget / 2;
        let (e1, x1) = self.build_region(b, first.max(1), proc_index, nprocs);
        let (e2, x2) = self.build_region(b, (budget - first).max(1), proc_index, nprocs);
        b.blocks[x1.0 as usize].terminator = Terminator::Jump { target: e2 };
        (e1, x2)
    }

    fn build_if(
        &mut self,
        b: &mut ProcBuilder,
        budget: usize,
        proc_index: usize,
        nprocs: usize,
    ) -> (BlockId, BlockId) {
        let cond = self.new_block(b);
        let arm_budget = ((budget - 1) / 2).max(1);
        let (te, tx) = self.build_region(b, arm_budget, proc_index, nprocs);
        let (fe, fx) = self.build_region(b, arm_budget, proc_index, nprocs);
        let join = self.new_block(b);
        // Branch biases drawn from a small palette; real branches are rarely
        // 50/50, which matters for the dynamic dilation distribution.
        let p_taken = *pick(&mut self.rng, &[0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9]);
        b.blocks[cond.0 as usize].terminator = Terminator::Branch { taken: te, fall: fe, p_taken };
        b.blocks[tx.0 as usize].terminator = Terminator::Jump { target: join };
        b.blocks[fx.0 as usize].terminator = Terminator::Jump { target: join };
        (cond, join)
    }

    fn build_loop(
        &mut self,
        b: &mut ProcBuilder,
        budget: usize,
        proc_index: usize,
        nprocs: usize,
    ) -> (BlockId, BlockId) {
        let preheader = self.new_block(b);
        let (be, bx) = self.build_region(b, budget.saturating_sub(2).max(1), proc_index, nprocs);
        let exit = self.new_block(b);
        let trip = self.rng.geometric_min1(self.profile.mean_trip).max(2) as f64;
        let p_back = 1.0 - 1.0 / trip;
        b.blocks[preheader.0 as usize].terminator = Terminator::Jump { target: be };
        // Bottom-tested loop: the body exit conditionally branches back.
        b.blocks[bx.0 as usize].terminator =
            Terminator::Branch { taken: be, fall: exit, p_taken: p_back };
        (preheader, exit)
    }

    fn build_call(
        &mut self,
        b: &mut ProcBuilder,
        budget: usize,
        proc_index: usize,
        nprocs: usize,
    ) -> (BlockId, BlockId) {
        let site = self.new_block(b);
        let rest = budget.saturating_sub(1);
        let (re, rx) = if rest > 1 {
            self.build_region(b, rest, proc_index, nprocs)
        } else {
            let blk = self.new_block(b);
            (blk, blk)
        };
        // DAG call graph: callees have strictly larger indices. Mostly near
        // callees (realistic depth and reuse) with occasional far calls so
        // the whole program is dynamically reachable.
        let span = (nprocs - proc_index - 1) as u64;
        let hop = if self.rng.chance(0.7) {
            1 + self.rng.range_u64(span.min(12))
        } else {
            1 + self.rng.range_u64(span)
        };
        let callee = ProcId((proc_index as u64 + hop) as u32);
        b.blocks[site.0 as usize].terminator = Terminator::Call { callee, ret: re };
        (site, rx)
    }

    /// Allocates a new block filled with operations; terminator placeholder
    /// is `Return` until patched.
    ///
    /// Operations are distributed round-robin across a few independent
    /// dependence *strands* (the profile's `ilp_strands`), modeling the
    /// loop-level parallelism that unrolling compilers expose — this is
    /// what lets wider processors actually run faster.
    fn new_block(&mut self, b: &mut ProcBuilder) -> BlockId {
        let n = self.rng.geometric_min1(self.profile.mean_ops_per_block).min(MAX_OPS_PER_BLOCK)
            as usize;
        let (slo, shi) = self.profile.ilp_strands;
        let strands =
            self.rng.range_inclusive(u64::from(slo.max(1)), u64::from(shi.max(1))) as usize;
        let mut ops = Vec::with_capacity(n);
        let mut recent_int: Vec<Vec<Vreg>> = vec![Vec::new(); strands];
        let mut recent_float: Vec<Vec<Vreg>> = vec![Vec::new(); strands];
        for i in 0..n {
            let s = i % strands;
            let op = self.new_op(b, &mut recent_int[s], &mut recent_float[s]);
            ops.push(op);
        }
        let id = BlockId(b.blocks.len() as u32);
        b.blocks.push(BasicBlock::new(ops, Terminator::Return));
        id
    }

    fn new_op(
        &mut self,
        b: &mut ProcBuilder,
        recent_int: &mut Vec<Vreg>,
        recent_float: &mut Vec<Vreg>,
    ) -> Op {
        let (frac_load, frac_store, frac_float) =
            (self.profile.frac_load, self.profile.frac_store, self.profile.frac_float);
        let r = self.rng.f64();
        if r < frac_load {
            let pid = self.pick_pattern();
            let is_float = self.rng.chance(frac_float);
            let dst = self.fresh_vreg(b, if is_float { RegClass::Float } else { RegClass::Int });
            push_recent(if is_float { recent_float } else { recent_int }, dst);
            let addr_src = pick_src(&mut self.rng, recent_int, b.int_vregs, RegClass::Int);
            Op::load(dst, vec![addr_src], pid)
        } else if r < frac_load + frac_store {
            let pid = self.pick_pattern();
            let is_float = self.rng.chance(frac_float);
            let val = if is_float {
                pick_src(&mut self.rng, recent_float, b.float_vregs, RegClass::Float)
            } else {
                pick_src(&mut self.rng, recent_int, b.int_vregs, RegClass::Int)
            };
            let addr = pick_src(&mut self.rng, recent_int, b.int_vregs, RegClass::Int);
            Op::store(vec![val, addr], pid)
        } else if self.rng.chance(frac_float) {
            let s1 = pick_src(&mut self.rng, recent_float, b.float_vregs, RegClass::Float);
            let s2 = pick_src(&mut self.rng, recent_float, b.float_vregs, RegClass::Float);
            let dst = self.fresh_vreg(b, RegClass::Float);
            push_recent(recent_float, dst);
            Op::compute(OpClass::FloatAlu, Some(dst), vec![s1, s2])
        } else {
            let s1 = pick_src(&mut self.rng, recent_int, b.int_vregs, RegClass::Int);
            let s2 = pick_src(&mut self.rng, recent_int, b.int_vregs, RegClass::Int);
            let dst = self.fresh_vreg(b, RegClass::Int);
            push_recent(recent_int, dst);
            Op::compute(OpClass::IntAlu, Some(dst), vec![s1, s2])
        }
    }

    fn fresh_vreg(&mut self, b: &mut ProcBuilder, class: RegClass) -> Vreg {
        match class {
            RegClass::Int => {
                let v = Vreg::int(b.int_vregs);
                b.int_vregs += 1;
                v
            }
            RegClass::Float => {
                let v = Vreg::float(b.float_vregs);
                b.float_vregs += 1;
                v
            }
            RegClass::Pred => unreachable!("generator does not allocate predicate registers"),
        }
    }

    fn pick_pattern(&mut self) -> PatternId {
        let m = self.profile.pattern_mix;
        match self.rng.weighted_index(&[m.stack, m.hot, m.stream, m.random]) {
            0 => {
                let pid = PatternId(self.patterns.len() as u32);
                let offset = self.rng.range_u64(SPILL_AREA_OFFSET);
                self.patterns.push(DataPattern::Stack { offset });
                pid
            }
            1 => *pick(&mut self.rng, &self.hot_patterns.clone()),
            2 => {
                let (lo, hi) = self.profile.stream_len;
                let len = self.rng.range_inclusive(lo, hi);
                let stride = *pick(&mut self.rng, &[1u64, 1, 1, 2, 4]);
                let pid = PatternId(self.patterns.len() as u32);
                self.patterns.push(DataPattern::Stream {
                    base: self.next_data,
                    len_words: len,
                    stride,
                });
                self.next_data += len;
                pid
            }
            _ => {
                let pid = PatternId(self.patterns.len() as u32);
                self.patterns.push(DataPattern::Random {
                    base: self.ws_base,
                    len_words: self.profile.ws_words,
                });
                pid
            }
        }
    }
}

/// Mutable per-procedure build state.
#[derive(Debug)]
struct ProcBuilder {
    blocks: Vec<BasicBlock>,
    int_vregs: u32,
    float_vregs: u32,
}

fn push_recent(recent: &mut Vec<Vreg>, v: Vreg) {
    recent.push(v);
    if recent.len() > 6 {
        recent.remove(0);
    }
}

/// Picks a source register: usually a recent definition (creating a
/// dependence chain), otherwise a live-in.
fn pick_src(rng: &mut Xoshiro256, recent: &[Vreg], _next: u32, class: RegClass) -> Vreg {
    if !recent.is_empty() && rng.chance(0.6) {
        recent[rng.range_usize(recent.len())]
    } else {
        Vreg { class, index: rng.range_u64(u64::from(LIVE_IN_VREGS)) as u32 }
    }
}

fn pick<'a, T>(rng: &mut Xoshiro256, items: &'a [T]) -> &'a T {
    &items[rng.range_usize(items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;

    #[test]
    fn generation_is_deterministic() {
        let a = Benchmark::Gcc.generate();
        let b = Benchmark::Gcc.generate();
        assert_eq!(a, b);
    }

    #[test]
    fn all_benchmarks_generate_valid_programs() {
        for b in Benchmark::ALL {
            let p = b.generate();
            assert_eq!(p.validate(), Ok(()), "{b}");
            assert_eq!(p.procedures.len(), b.profile().procs);
        }
    }

    #[test]
    fn programs_have_expected_size_ordering() {
        let gcc = Benchmark::Gcc.generate();
        let epic = Benchmark::Epic.generate();
        assert!(
            gcc.static_ops() > 2 * epic.static_ops(),
            "gcc ({} ops) should be much larger than epic ({} ops)",
            gcc.static_ops(),
            epic.static_ops()
        );
    }

    #[test]
    fn programs_contain_all_op_classes() {
        let p = Benchmark::Rasta.generate();
        let mut has = [false; 4];
        for proc in &p.procedures {
            for blk in &proc.blocks {
                for op in &blk.ops {
                    match op.class {
                        OpClass::IntAlu => has[0] = true,
                        OpClass::FloatAlu => has[1] = true,
                        OpClass::Load => has[2] = true,
                        OpClass::Store => has[3] = true,
                        OpClass::Branch => {}
                    }
                }
            }
        }
        assert!(has.iter().all(|&h| h), "missing op class: {has:?}");
    }

    #[test]
    fn call_graph_is_a_dag() {
        for b in [Benchmark::Gcc, Benchmark::Unepic] {
            let p = b.generate();
            for (i, proc) in p.procedures.iter().enumerate() {
                for blk in &proc.blocks {
                    if let Terminator::Call { callee, .. } = blk.terminator {
                        assert!(callee.0 as usize > i, "{b}: proc {i} calls {callee} (not a DAG)");
                    }
                }
            }
        }
    }

    #[test]
    fn entry_proc_exits_others_return() {
        let p = Benchmark::Mipmap.generate();
        let has_exit =
            p.procedures[0].blocks.iter().any(|b| matches!(b.terminator, Terminator::Exit));
        assert!(has_exit, "entry procedure must contain Exit");
        for proc in &p.procedures[1..] {
            assert!(
                proc.blocks.iter().any(|b| matches!(b.terminator, Terminator::Return)),
                "non-entry procedure must contain Return"
            );
            assert!(
                !proc.blocks.iter().any(|b| matches!(b.terminator, Terminator::Exit)),
                "only the entry procedure may Exit"
            );
        }
    }

    #[test]
    fn stream_arrays_do_not_overlap() {
        let p = Benchmark::Epic.generate();
        let mut regions: Vec<(u64, u64)> = p
            .patterns
            .iter()
            .filter_map(|pat| match *pat {
                DataPattern::Stream { base, len_words, .. } => Some((base, base + len_words)),
                DataPattern::Hot { base, len_words } => Some((base, base + len_words)),
                _ => None,
            })
            .collect();
        regions.sort_unstable();
        for w in regions.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping data regions: {w:?}");
        }
    }

    #[test]
    fn blocks_respect_op_cap() {
        let p = Benchmark::Go.generate();
        for proc in &p.procedures {
            for blk in &proc.blocks {
                assert!(blk.ops.len() <= MAX_OPS_PER_BLOCK as usize);
            }
        }
    }
}
