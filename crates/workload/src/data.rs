//! Data-access patterns and the deterministic address engine.
//!
//! Every static memory operation in a [`crate::ir::Program`] references a
//! [`DataPattern`]. At execution time, the n-th dynamic instance of that
//! operation produces an address that is a pure function of
//! `(pattern, seed, n, call depth)` — see [`PatternEngine`]. This
//! counter-based construction is what lets the reference-processor trace and
//! every non-reference-processor trace share *identical* data addresses for
//! identically-executed operations (the paper's step-1 assumption), while
//! still letting a wider processor's speculated or spilled memory operations
//! inject extra, deterministic addresses.

use crate::ir::{PatternId, Program};
use crate::rng::SplitMix64;

/// Base word address of the data segment used by generated workloads.
pub const DATA_BASE: u64 = 0x0800_0000;

/// Base word address of the downward-growing call stack.
pub const STACK_BASE: u64 = 0x0FF0_0000;

/// Words reserved per call frame (locals plus spill area).
pub const FRAME_WORDS: u64 = 256;

/// Offset within a frame where the spill area begins.
pub const SPILL_AREA_OFFSET: u64 = 128;

/// A static data-access pattern.
///
/// All sizes and addresses are in 4-byte words, matching the paper's use of
/// word addresses throughout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPattern {
    /// Frame-local access: `STACK_BASE - depth·FRAME_WORDS + offset`.
    /// Models scalars and locals; extremely high locality.
    Stack {
        /// Offset of the slot within the frame (`< SPILL_AREA_OFFSET`).
        offset: u64,
    },
    /// Small hot region accessed sequentially with wrap-around. Models
    /// global scalars and small tables.
    Hot {
        /// First word of the region.
        base: u64,
        /// Region length in words.
        len_words: u64,
    },
    /// Streaming access over an array: the n-th access touches
    /// `base + (n·stride mod len_words)`. Models media kernels.
    Stream {
        /// First word of the array.
        base: u64,
        /// Array length in words.
        len_words: u64,
        /// Stride in words between consecutive accesses.
        stride: u64,
    },
    /// Uniform random access within a working set. Models pointer-chasing
    /// and hash-table codes.
    Random {
        /// First word of the working set.
        base: u64,
        /// Working-set size in words.
        len_words: u64,
    },
}

impl DataPattern {
    /// Address of dynamic instance `counter` of this pattern.
    ///
    /// `seed` individualizes [`DataPattern::Random`] streams; `depth` is the
    /// current call depth (for [`DataPattern::Stack`]).
    pub fn address(&self, seed: u64, pid: PatternId, counter: u64, depth: u32) -> u64 {
        match *self {
            DataPattern::Stack { offset } => {
                let frame_top = STACK_BASE - u64::from(depth) * FRAME_WORDS;
                frame_top + offset % SPILL_AREA_OFFSET
            }
            DataPattern::Hot { base, len_words } => base + counter % len_words.max(1),
            DataPattern::Stream { base, len_words, stride } => {
                base + (counter.wrapping_mul(stride)) % len_words.max(1)
            }
            DataPattern::Random { base, len_words } => {
                let h = SplitMix64::new(seed ^ (u64::from(pid.0) << 32) ^ counter).next_u64();
                base + h % len_words.max(1)
            }
        }
    }
}

/// Address of a spill slot given call depth and slot index.
///
/// Spill code is inserted per-processor by the VLIW back-end; its addresses
/// live in the frame's spill area so they have the same high locality as the
/// paper assumes ("likely to have high locality and not increase the number
/// of data cache misses significantly").
pub fn spill_address(depth: u32, slot: u32) -> u64 {
    let frame_top = STACK_BASE - u64::from(depth) * FRAME_WORDS;
    frame_top + SPILL_AREA_OFFSET + u64::from(slot) % (FRAME_WORDS - SPILL_AREA_OFFSET)
}

/// Deterministic, replayable address generator for a program's patterns.
///
/// Two engines constructed with the same program and seed produce identical
/// address sequences for identical operation-execution sequences, regardless
/// of what *other* operations execute in between ([`PatternEngine::peek`]
/// does not advance state). This property underpins the reproduction of the
/// paper's "data trace is identical across processors" assumption.
///
/// # Examples
///
/// ```
/// use mhe_workload::{Benchmark, data::PatternEngine};
/// let program = Benchmark::Epic.generate();
/// let mut engine = PatternEngine::new(&program, 1);
/// let pid = mhe_workload::ir::PatternId(0);
/// let a = engine.peek(&program, pid, 0);
/// let b = engine.next(&program, pid, 0);
/// assert_eq!(a, b, "peek must preview exactly what next produces");
/// ```
#[derive(Debug, Clone)]
pub struct PatternEngine {
    counters: Vec<u64>,
    seed: u64,
}

impl PatternEngine {
    /// Creates an engine with one counter per pattern of `program`.
    pub fn new(program: &Program, seed: u64) -> Self {
        Self { counters: vec![0; program.patterns.len()], seed }
    }

    /// Produces the next address of pattern `pid`, advancing its counter.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range for `program`.
    pub fn next(&mut self, program: &Program, pid: PatternId, depth: u32) -> u64 {
        let c = &mut self.counters[pid.0 as usize];
        let addr = program.patterns[pid.0 as usize].address(self.seed, pid, *c, depth);
        *c += 1;
        addr
    }

    /// Previews the next address of pattern `pid` without advancing.
    ///
    /// Used for speculatively-hoisted loads: the speculated copy observes the
    /// address the original would produce, without perturbing the stream.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range for `program`.
    pub fn peek(&self, program: &Program, pid: PatternId, depth: u32) -> u64 {
        let c = self.counters[pid.0 as usize];
        program.patterns[pid.0 as usize].address(self.seed, pid, c, depth)
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::PatternId;

    #[test]
    fn stack_addresses_track_depth() {
        let p = DataPattern::Stack { offset: 5 };
        let a0 = p.address(0, PatternId(0), 0, 0);
        let a1 = p.address(0, PatternId(0), 0, 1);
        assert_eq!(a0 - a1, FRAME_WORDS);
    }

    #[test]
    fn hot_wraps_within_region() {
        let p = DataPattern::Hot { base: 100, len_words: 4 };
        let addrs: Vec<u64> = (0..8).map(|c| p.address(0, PatternId(0), c, 0)).collect();
        assert_eq!(addrs, vec![100, 101, 102, 103, 100, 101, 102, 103]);
    }

    #[test]
    fn stream_respects_stride_and_wrap() {
        let p = DataPattern::Stream { base: 1000, len_words: 10, stride: 3 };
        let addrs: Vec<u64> = (0..5).map(|c| p.address(0, PatternId(0), c, 0)).collect();
        assert_eq!(addrs, vec![1000, 1003, 1006, 1009, 1002]);
    }

    #[test]
    fn random_stays_in_region_and_is_deterministic() {
        let p = DataPattern::Random { base: 5000, len_words: 64 };
        for c in 0..1000 {
            let a = p.address(7, PatternId(3), c, 0);
            assert!((5000..5064).contains(&a));
            assert_eq!(a, p.address(7, PatternId(3), c, 0));
        }
    }

    #[test]
    fn random_streams_differ_by_pattern_id() {
        let p = DataPattern::Random { base: 0, len_words: 1 << 20 };
        let s1: Vec<u64> = (0..16).map(|c| p.address(7, PatternId(1), c, 0)).collect();
        let s2: Vec<u64> = (0..16).map(|c| p.address(7, PatternId(2), c, 0)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn spill_addresses_live_in_spill_area() {
        let a = spill_address(2, 3);
        let frame_top = STACK_BASE - 2 * FRAME_WORDS;
        assert!(a >= frame_top + SPILL_AREA_OFFSET);
        assert!(a < frame_top + FRAME_WORDS);
    }

    #[test]
    fn zero_length_regions_do_not_divide_by_zero() {
        let p = DataPattern::Hot { base: 10, len_words: 0 };
        assert_eq!(p.address(0, PatternId(0), 5, 0), 10);
    }
}
