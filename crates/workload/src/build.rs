//! Hand-construction of programs: a builder for custom workloads.
//!
//! The generated benchmark presets cover the paper's evaluation, but users
//! studying a *specific* application shape (a particular loop nest, a
//! pathological branch pattern) need to write programs directly.
//! [`ProgramBuilder`] provides that, with validation at
//! [`ProgramBuilder::finish`].
//!
//! # Examples
//!
//! ```
//! use mhe_workload::build::ProgramBuilder;
//! use mhe_workload::data::DataPattern;
//!
//! let mut b = ProgramBuilder::new("saxpy");
//! let x = b.pattern(DataPattern::Stream { base: 0x0800_0000, len_words: 4096, stride: 1 });
//! let y = b.pattern(DataPattern::Stream { base: 0x0800_2000, len_words: 4096, stride: 1 });
//! let main = b.procedure("main");
//! let body = b.block(main);
//! b.load(main, body, x);
//! b.load(main, body, y);
//! b.int_ops(main, body, 2);
//! b.store(main, body, y);
//! let exit = b.block(main);
//! b.count_loop(main, body, exit, 1000.0);
//! b.exit(main, exit);
//! let program = b.finish().unwrap();
//! assert!(program.validate().is_ok());
//! ```

use crate::data::DataPattern;
use crate::ir::{
    BasicBlock, BlockId, Op, OpClass, PatternId, ProcId, Procedure, Program, Terminator, Vreg,
};

/// Incremental builder for a [`Program`].
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    procedures: Vec<ProcState>,
    patterns: Vec<DataPattern>,
}

#[derive(Debug, Clone)]
struct ProcState {
    name: String,
    blocks: Vec<BasicBlock>,
    /// Which blocks still have the placeholder terminator.
    terminated: Vec<bool>,
    next_int: u32,
    next_float: u32,
}

impl ProgramBuilder {
    /// Starts a program.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), procedures: Vec::new(), patterns: Vec::new() }
    }

    /// Registers a data pattern; memory ops reference the returned id.
    pub fn pattern(&mut self, pattern: DataPattern) -> PatternId {
        let id = PatternId(self.patterns.len() as u32);
        self.patterns.push(pattern);
        id
    }

    /// Adds a procedure; the first procedure added is the entry.
    pub fn procedure(&mut self, name: impl Into<String>) -> ProcId {
        let id = ProcId(self.procedures.len() as u32);
        self.procedures.push(ProcState {
            name: name.into(),
            blocks: Vec::new(),
            terminated: Vec::new(),
            next_int: 8, // low indices reserved as live-ins
            next_float: 8,
        });
        id
    }

    /// Adds an empty block to a procedure.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn block(&mut self, proc: ProcId) -> BlockId {
        let p = &mut self.procedures[proc.0 as usize];
        let id = BlockId(p.blocks.len() as u32);
        p.blocks.push(BasicBlock::new(Vec::new(), Terminator::Return));
        p.terminated.push(false);
        id
    }

    /// Appends `n` dependent integer operations to a block.
    pub fn int_ops(&mut self, proc: ProcId, block: BlockId, n: usize) {
        for _ in 0..n {
            let p = &mut self.procedures[proc.0 as usize];
            let src = Vreg::int(p.next_int.saturating_sub(1));
            let dst = Vreg::int(p.next_int);
            p.next_int += 1;
            p.blocks[block.0 as usize].ops.push(Op::compute(OpClass::IntAlu, Some(dst), vec![src]));
        }
    }

    /// Appends `n` dependent floating-point operations to a block.
    pub fn float_ops(&mut self, proc: ProcId, block: BlockId, n: usize) {
        for _ in 0..n {
            let p = &mut self.procedures[proc.0 as usize];
            let src = Vreg::float(p.next_float.saturating_sub(1));
            let dst = Vreg::float(p.next_float);
            p.next_float += 1;
            p.blocks[block.0 as usize].ops.push(Op::compute(
                OpClass::FloatAlu,
                Some(dst),
                vec![src],
            ));
        }
    }

    /// Appends a load from `pattern`.
    pub fn load(&mut self, proc: ProcId, block: BlockId, pattern: PatternId) {
        let p = &mut self.procedures[proc.0 as usize];
        let dst = Vreg::int(p.next_int);
        p.next_int += 1;
        p.blocks[block.0 as usize].ops.push(Op::load(dst, vec![Vreg::int(0)], pattern));
    }

    /// Appends a store driven by `pattern`.
    pub fn store(&mut self, proc: ProcId, block: BlockId, pattern: PatternId) {
        let p = &mut self.procedures[proc.0 as usize];
        p.blocks[block.0 as usize].ops.push(Op::store(vec![Vreg::int(0), Vreg::int(1)], pattern));
    }

    /// Terminates `block` with an unconditional jump.
    pub fn jump(&mut self, proc: ProcId, block: BlockId, target: BlockId) {
        self.terminate(proc, block, Terminator::Jump { target });
    }

    /// Terminates `block` with a conditional branch.
    ///
    /// # Panics
    ///
    /// Panics if `p_taken` is outside `[0, 1]`.
    pub fn branch(
        &mut self,
        proc: ProcId,
        block: BlockId,
        taken: BlockId,
        fall: BlockId,
        p_taken: f64,
    ) {
        assert!((0.0..=1.0).contains(&p_taken), "p_taken {p_taken} outside [0,1]");
        self.terminate(proc, block, Terminator::Branch { taken, fall, p_taken });
    }

    /// Terminates `block` as a self-loop latch executing `mean_trips` times
    /// on average before falling through to `exit`.
    ///
    /// # Panics
    ///
    /// Panics if `mean_trips < 1`.
    pub fn count_loop(&mut self, proc: ProcId, block: BlockId, exit: BlockId, mean_trips: f64) {
        assert!(mean_trips >= 1.0, "loops execute at least once");
        let p_back = 1.0 - 1.0 / mean_trips;
        self.terminate(
            proc,
            block,
            Terminator::Branch { taken: block, fall: exit, p_taken: p_back },
        );
    }

    /// Terminates `block` with a call; control resumes at `ret`.
    pub fn call(&mut self, proc: ProcId, block: BlockId, callee: ProcId, ret: BlockId) {
        self.terminate(proc, block, Terminator::Call { callee, ret });
    }

    /// Terminates `block` with a return.
    pub fn ret(&mut self, proc: ProcId, block: BlockId) {
        self.terminate(proc, block, Terminator::Return);
    }

    /// Terminates `block` with program exit.
    pub fn exit(&mut self, proc: ProcId, block: BlockId) {
        self.terminate(proc, block, Terminator::Exit);
    }

    fn terminate(&mut self, proc: ProcId, block: BlockId, t: Terminator) {
        let p = &mut self.procedures[proc.0 as usize];
        assert!(!p.terminated[block.0 as usize], "block {block} of {} terminated twice", p.name);
        p.blocks[block.0 as usize].terminator = t;
        p.terminated[block.0 as usize] = true;
    }

    /// Validates and produces the program.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: no procedures, a block
    /// left unterminated, or a structural validation failure.
    pub fn finish(self) -> Result<Program, String> {
        if self.procedures.is_empty() {
            return Err("program has no procedures".into());
        }
        let mut procedures = Vec::with_capacity(self.procedures.len());
        for p in self.procedures {
            if let Some(i) = p.terminated.iter().position(|&t| !t) {
                return Err(format!("{}: block B{i} was never terminated", p.name));
            }
            procedures.push(Procedure {
                name: p.name,
                blocks: p.blocks,
                int_vregs: p.next_int,
                float_vregs: p.next_float,
            });
        }
        let program =
            Program { name: self.name, procedures, patterns: self.patterns, entry: ProcId(0) };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;

    fn simple() -> Program {
        let mut b = ProgramBuilder::new("t");
        let hot = b.pattern(DataPattern::Hot { base: 0x0800_0000, len_words: 64 });
        let main = b.procedure("main");
        let helper_proc;
        let (b0, b1);
        {
            b0 = b.block(main);
            b1 = b.block(main);
            helper_proc = b.procedure("helper");
            let h0 = b.block(helper_proc);
            b.load(helper_proc, h0, hot);
            b.ret(helper_proc, h0);
        }
        b.int_ops(main, b0, 3);
        b.call(main, b0, helper_proc, b1);
        b.exit(main, b1);
        b.finish().unwrap()
    }

    #[test]
    fn built_programs_execute() {
        let p = simple();
        let events: Vec<_> = Executor::new(&p, 1).take(9).collect();
        // main.B0 -> helper.B0 -> main.B1 -> restart...
        assert_eq!(events[0].proc, ProcId(0));
        assert_eq!(events[1].proc, ProcId(1));
        assert_eq!(events[1].depth, 1);
        assert_eq!(events[2].proc, ProcId(0));
        assert_eq!(events[3].proc, ProcId(0)); // restarted
    }

    #[test]
    fn unterminated_blocks_are_rejected() {
        let mut b = ProgramBuilder::new("t");
        let main = b.procedure("main");
        let _ = b.block(main);
        let err = b.finish().unwrap_err();
        assert!(err.contains("never terminated"), "{err}");
    }

    #[test]
    fn empty_program_is_rejected() {
        assert!(ProgramBuilder::new("t").finish().is_err());
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_termination_panics() {
        let mut b = ProgramBuilder::new("t");
        let main = b.procedure("main");
        let b0 = b.block(main);
        b.exit(main, b0);
        b.exit(main, b0);
    }

    #[test]
    fn loop_latch_iterates() {
        let mut b = ProgramBuilder::new("t");
        let main = b.procedure("main");
        let body = b.block(main);
        b.int_ops(main, body, 1);
        let exit = b.block(main);
        b.count_loop(main, body, exit, 50.0);
        b.exit(main, exit);
        let p = b.finish().unwrap();
        // Over many events, body should execute ~50x as often as exit.
        let mut body_n = 0u64;
        let mut exit_n = 0u64;
        for ev in Executor::new(&p, 3).take(100_000) {
            if ev.block == body {
                body_n += 1;
            } else {
                exit_n += 1;
            }
        }
        let ratio = body_n as f64 / exit_n as f64;
        assert!((35.0..70.0).contains(&ratio), "trip ratio {ratio}");
    }

    #[test]
    fn compiles_through_the_whole_pipeline() {
        // The builder's output is a first-class program: it must survive
        // scheduling, assembly, and linking.
        let p = simple();
        let compiled = mhe_vliw_smoke::compile_smoke(&p);
        assert!(compiled > 0);
    }

    /// Minimal indirection so this crate's tests don't depend on mhe-vliw
    /// (which depends on us): just count static ops as a stand-in.
    mod mhe_vliw_smoke {
        pub fn compile_smoke(p: &crate::ir::Program) -> usize {
            p.static_ops()
        }
    }
}
