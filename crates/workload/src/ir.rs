//! Machine-independent program representation.
//!
//! A [`Program`] is a set of procedures, each a control-flow graph of
//! [`BasicBlock`]s whose operations are classified only by the functional
//! unit they need ([`OpClass`]) and, for memory operations, by the
//! [`crate::data::DataPattern`] that generates their addresses. This is the
//! common input to the VLIW back-end (`mhe-vliw`), the execution engine
//! ([`crate::exec`]), and ultimately the trace generator.

use std::fmt;

/// Identifies a procedure within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a basic block within a procedure (index into
/// [`Procedure::blocks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Identifies a static data-access pattern (index into
/// [`Program::patterns`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternId(pub u32);

/// Register class of a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// General-purpose integer register.
    Int,
    /// Floating-point register.
    Float,
    /// Predicate register (one bit).
    Pred,
}

/// A virtual register: class plus per-procedure index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vreg {
    /// Register class.
    pub class: RegClass,
    /// Index within the procedure's namespace for this class.
    pub index: u32,
}

impl Vreg {
    /// Convenience constructor for an integer virtual register.
    pub fn int(index: u32) -> Self {
        Self { class: RegClass::Int, index }
    }

    /// Convenience constructor for a floating-point virtual register.
    pub fn float(index: u32) -> Self {
        Self { class: RegClass::Float, index }
    }
}

/// Functional-unit class an operation executes on.
///
/// Mirrors the paper's four unit types (integer, float, memory, branch);
/// memory is split into loads and stores because only they carry data
/// patterns and because stores matter separately to cache simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU operation.
    IntAlu,
    /// Floating-point operation.
    FloatAlu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Branch/control operation.
    Branch,
}

impl OpClass {
    /// Nominal execution latency in cycles, used by the list scheduler.
    pub fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::FloatAlu => 2,
            OpClass::Load => 2,
            OpClass::Store => 1,
            OpClass::Branch => 1,
        }
    }

    /// Whether this class accesses data memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

/// One operation of a basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Functional-unit class.
    pub class: OpClass,
    /// Destination register, if the operation produces a value.
    pub dst: Option<Vreg>,
    /// Source registers.
    pub srcs: Vec<Vreg>,
    /// For [`OpClass::Load`]/[`OpClass::Store`]: the data pattern that
    /// generates this operation's addresses.
    pub pattern: Option<PatternId>,
}

impl Op {
    /// Creates a non-memory compute operation.
    pub fn compute(class: OpClass, dst: Option<Vreg>, srcs: Vec<Vreg>) -> Self {
        debug_assert!(!class.is_mem());
        Self { class, dst, srcs, pattern: None }
    }

    /// Creates a load from the given pattern.
    pub fn load(dst: Vreg, srcs: Vec<Vreg>, pattern: PatternId) -> Self {
        Self { class: OpClass::Load, dst: Some(dst), srcs, pattern: Some(pattern) }
    }

    /// Creates a store driven by the given pattern.
    pub fn store(srcs: Vec<Vreg>, pattern: PatternId) -> Self {
        Self { class: OpClass::Store, dst: None, srcs, pattern: Some(pattern) }
    }
}

/// Control transfer terminating a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump to a block in the same procedure.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Two-way conditional branch.
    Branch {
        /// Target when the branch is taken.
        taken: BlockId,
        /// Fall-through target.
        fall: BlockId,
        /// Probability the branch is taken (used by the execution engine and
        /// recorded as profile information for layout).
        p_taken: f64,
    },
    /// Call another procedure; control resumes at `ret` in this procedure.
    Call {
        /// Callee procedure.
        callee: ProcId,
        /// Block to resume at after the callee returns.
        ret: BlockId,
    },
    /// Return to the caller.
    Return,
    /// Terminate the program run.
    Exit,
}

impl Terminator {
    /// Whether this terminator occupies a branch unit in the schedule.
    ///
    /// Every control transfer except a pure fall-through needs an explicit
    /// branch operation; in this IR all terminators are explicit.
    pub fn needs_branch_op(&self) -> bool {
        true
    }
}

/// A basic block: straight-line operations plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Operations in program order (terminator excluded).
    pub ops: Vec<Op>,
    /// Control transfer out of the block.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Creates a block.
    pub fn new(ops: Vec<Op>, terminator: Terminator) -> Self {
        Self { ops, terminator }
    }

    /// Number of memory operations in the block.
    pub fn mem_op_count(&self) -> usize {
        self.ops.iter().filter(|o| o.class.is_mem()).count()
    }
}

/// A procedure: an entry block (index 0) plus its CFG.
#[derive(Debug, Clone, PartialEq)]
pub struct Procedure {
    /// Human-readable name.
    pub name: String,
    /// Blocks; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Count of integer virtual registers used.
    pub int_vregs: u32,
    /// Count of floating-point virtual registers used.
    pub float_vregs: u32,
}

impl Procedure {
    /// Validates intra-procedure block references.
    ///
    /// Returns an error string naming the first dangling reference, if any.
    pub fn validate(&self, program: &Program) -> Result<(), String> {
        let nb = self.blocks.len() as u32;
        let check = |b: BlockId, what: &str| -> Result<(), String> {
            if b.0 < nb {
                Ok(())
            } else {
                Err(format!("{}: {what} target {b} out of range ({nb} blocks)", self.name))
            }
        };
        for (i, blk) in self.blocks.iter().enumerate() {
            match &blk.terminator {
                Terminator::Jump { target } => check(*target, "jump")?,
                Terminator::Branch { taken, fall, p_taken } => {
                    check(*taken, "branch-taken")?;
                    check(*fall, "branch-fall")?;
                    if !(0.0..=1.0).contains(p_taken) {
                        return Err(format!(
                            "{} block {i}: p_taken {p_taken} outside [0,1]",
                            self.name
                        ));
                    }
                }
                Terminator::Call { callee, ret } => {
                    check(*ret, "call-return")?;
                    if callee.0 as usize >= program.procedures.len() {
                        return Err(format!(
                            "{} block {i}: callee {callee} out of range",
                            self.name
                        ));
                    }
                }
                Terminator::Return | Terminator::Exit => {}
            }
            for op in &blk.ops {
                if op.class.is_mem() {
                    let pid = op.pattern.ok_or_else(|| {
                        format!("{} block {i}: memory op without pattern", self.name)
                    })?;
                    if pid.0 as usize >= program.patterns.len() {
                        return Err(format!(
                            "{} block {i}: pattern {:?} out of range",
                            self.name, pid
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A whole program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (benchmark name for generated workloads).
    pub name: String,
    /// Procedures; [`Program::entry`] indexes into this.
    pub procedures: Vec<Procedure>,
    /// Static data-access patterns referenced by memory operations.
    pub patterns: Vec<crate::data::DataPattern>,
    /// Entry procedure.
    pub entry: ProcId,
}

impl Program {
    /// Validates the whole program (block references, pattern references,
    /// entry point).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.entry.0 as usize >= self.procedures.len() {
            return Err(format!("entry {} out of range", self.entry));
        }
        for proc in &self.procedures {
            proc.validate(self)?;
        }
        Ok(())
    }

    /// Total number of static operations, including one branch per block for
    /// the terminator.
    pub fn static_ops(&self) -> usize {
        self.procedures.iter().flat_map(|p| p.blocks.iter()).map(|b| b.ops.len() + 1).sum()
    }

    /// Total number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.procedures.iter().map(|p| p.blocks.len()).sum()
    }

    /// Looks up a procedure.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn proc(&self, id: ProcId) -> &Procedure {
        &self.procedures[id.0 as usize]
    }

    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn block(&self, proc: ProcId, block: BlockId) -> &BasicBlock {
        &self.procedures[proc.0 as usize].blocks[block.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataPattern;

    fn tiny_program() -> Program {
        Program {
            name: "tiny".into(),
            procedures: vec![Procedure {
                name: "main".into(),
                blocks: vec![
                    BasicBlock::new(
                        vec![
                            Op::compute(OpClass::IntAlu, Some(Vreg::int(0)), vec![]),
                            Op::load(Vreg::int(1), vec![Vreg::int(0)], PatternId(0)),
                        ],
                        Terminator::Branch { taken: BlockId(0), fall: BlockId(1), p_taken: 0.9 },
                    ),
                    BasicBlock::new(vec![], Terminator::Exit),
                ],
                int_vregs: 2,
                float_vregs: 0,
            }],
            patterns: vec![DataPattern::Hot { base: 0x100, len_words: 16 }],
            entry: ProcId(0),
        }
    }

    #[test]
    fn valid_program_passes_validation() {
        assert_eq!(tiny_program().validate(), Ok(()));
    }

    #[test]
    fn dangling_jump_fails_validation() {
        let mut p = tiny_program();
        p.procedures[0].blocks[1].terminator = Terminator::Jump { target: BlockId(99) };
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_probability_fails_validation() {
        let mut p = tiny_program();
        p.procedures[0].blocks[0].terminator =
            Terminator::Branch { taken: BlockId(0), fall: BlockId(1), p_taken: 1.5 };
        assert!(p.validate().is_err());
    }

    #[test]
    fn missing_pattern_fails_validation() {
        let mut p = tiny_program();
        p.procedures[0].blocks[0].ops[1].pattern = None;
        assert!(p.validate().is_err());
    }

    #[test]
    fn pattern_out_of_range_fails_validation() {
        let mut p = tiny_program();
        p.procedures[0].blocks[0].ops[1].pattern = Some(PatternId(7));
        assert!(p.validate().is_err());
    }

    #[test]
    fn static_op_count_includes_terminators() {
        let p = tiny_program();
        // 2 ops + 2 terminators.
        assert_eq!(p.static_ops(), 4);
        assert_eq!(p.block_count(), 2);
    }

    #[test]
    fn op_constructors_classify() {
        let l = Op::load(Vreg::int(0), vec![], PatternId(0));
        assert!(l.class.is_mem());
        let s = Op::store(vec![Vreg::int(0)], PatternId(0));
        assert!(s.class.is_mem());
        assert!(s.dst.is_none());
        let c = Op::compute(OpClass::FloatAlu, Some(Vreg::float(1)), vec![Vreg::float(0)]);
        assert!(!c.class.is_mem());
    }

    #[test]
    fn latencies_are_positive() {
        for c in
            [OpClass::IntAlu, OpClass::FloatAlu, OpClass::Load, OpClass::Store, OpClass::Branch]
        {
            assert!(c.latency() >= 1);
        }
    }
}
