//! Benchmark profiles: the ten applications of the paper's evaluation.
//!
//! The paper evaluates seven MediaBench programs (epic, ghostscript, mipmap,
//! pgpdecode, pgpencode, rasta, unepic) and three SPEC programs (085.gcc,
//! 099.go, 147.vortex), chosen for their relatively high instruction-cache
//! miss rates. We do not have those binaries or inputs; per DESIGN.md §4 each
//! is substituted by a seeded synthetic program whose *shape* (code size,
//! control structure, operation mix, data-access mix) is tuned to the same
//! qualitative regime. A [`Profile`] captures that shape; [`Benchmark`]
//! enumerates the presets.

use crate::gen::ProgramGenerator;
use crate::ir::Program;

/// Relative weights of the four data-access pattern kinds assigned to static
/// memory operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternMix {
    /// Frame-local scalar accesses.
    pub stack: f64,
    /// Small hot global regions.
    pub hot: f64,
    /// Streaming array accesses.
    pub stream: f64,
    /// Uniform random accesses within the working set.
    pub random: f64,
}

/// Shape parameters for synthesizing one benchmark-like program.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Benchmark name (matches the paper's tables).
    pub name: &'static str,
    /// Seed for program synthesis (execution uses a separate seed).
    pub seed: u64,
    /// Number of procedures.
    pub procs: usize,
    /// Inclusive range of the per-procedure region budget (roughly half the
    /// resulting block count).
    pub regions_per_proc: (usize, usize),
    /// Mean operations per basic block (geometric distribution, min 1).
    pub mean_ops_per_block: f64,
    /// Fraction of compute operations that are floating-point.
    pub frac_float: f64,
    /// Fraction of all block operations that are loads.
    pub frac_load: f64,
    /// Fraction of all block operations that are stores.
    pub frac_store: f64,
    /// Pattern-kind mix for memory operations.
    pub pattern_mix: PatternMix,
    /// Random-pattern working-set size in words.
    pub ws_words: u64,
    /// Inclusive range of streaming-array lengths in words.
    pub stream_len: (u64, u64),
    /// Total size of the shared hot regions in words.
    pub hot_words: u64,
    /// Mean loop trip count.
    pub mean_trip: f64,
    /// Probability that a structured region is a loop.
    pub p_loop: f64,
    /// Probability that a structured region is an if-then-else.
    pub p_if: f64,
    /// Probability that a structured region is a call site.
    pub p_call: f64,
    /// Inclusive range of independent dependence strands per block
    /// (models the loop-level parallelism an unrolling compiler exposes).
    pub ilp_strands: (u32, u32),
}

/// The ten benchmark presets used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// 085.gcc (SPECINT-92): very large, branchy integer code.
    Gcc,
    /// 099.go (SPECINT-95): large integer code, deep decision trees.
    Go,
    /// 147.vortex (SPECINT-95): large OO database code, call-heavy.
    Vortex,
    /// epic (MediaBench): image compression, small loop-heavy kernels.
    Epic,
    /// ghostscript (MediaBench): PostScript interpreter, very large code.
    Ghostscript,
    /// mipmap (MediaBench): 3D graphics mip-mapping, FP streaming.
    Mipmap,
    /// pgpdecode (MediaBench): crypto decode, integer + random access.
    PgpDecode,
    /// pgpencode (MediaBench): crypto encode, integer + random access.
    PgpEncode,
    /// rasta (MediaBench): speech recognition front-end, FP loops.
    Rasta,
    /// unepic (MediaBench): image decompression, small streaming kernels.
    Unepic,
}

impl Benchmark {
    /// All ten benchmarks in the paper's table order.
    pub const ALL: [Benchmark; 10] = [
        Benchmark::Gcc,
        Benchmark::Go,
        Benchmark::Vortex,
        Benchmark::Epic,
        Benchmark::Ghostscript,
        Benchmark::Mipmap,
        Benchmark::PgpDecode,
        Benchmark::PgpEncode,
        Benchmark::Rasta,
        Benchmark::Unepic,
    ];

    /// The benchmark's display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        self.profile().name
    }

    /// Shape parameters for this benchmark.
    pub fn profile(self) -> Profile {
        // Baseline mixes reused across related benchmarks.
        let int_mix = PatternMix { stack: 0.35, hot: 0.25, stream: 0.15, random: 0.25 };
        let media_mix = PatternMix { stack: 0.20, hot: 0.20, stream: 0.45, random: 0.15 };
        match self {
            Benchmark::Gcc => Profile {
                name: "085.gcc",
                seed: 0x6763_6301,
                procs: 150,
                regions_per_proc: (6, 22),
                mean_ops_per_block: 5.5,
                frac_float: 0.02,
                frac_load: 0.22,
                frac_store: 0.10,
                pattern_mix: int_mix,
                ws_words: 1 << 13,
                stream_len: (64, 1024),
                hot_words: 512,
                mean_trip: 6.0,
                p_loop: 0.16,
                p_if: 0.40,
                p_call: 0.18,
                ilp_strands: (1, 3),
            },
            Benchmark::Go => Profile {
                name: "099.go",
                seed: 0x676F_6F01,
                procs: 100,
                regions_per_proc: (8, 26),
                mean_ops_per_block: 6.5,
                frac_float: 0.01,
                frac_load: 0.24,
                frac_store: 0.08,
                pattern_mix: PatternMix { stack: 0.30, hot: 0.30, stream: 0.10, random: 0.30 },
                ws_words: 1 << 11,
                stream_len: (32, 512),
                hot_words: 768,
                mean_trip: 5.0,
                p_loop: 0.14,
                p_if: 0.46,
                p_call: 0.12,
                ilp_strands: (1, 3),
            },
            Benchmark::Vortex => Profile {
                name: "147.vortex",
                seed: 0x766F_7201,
                procs: 130,
                regions_per_proc: (6, 18),
                mean_ops_per_block: 7.0,
                frac_float: 0.01,
                frac_load: 0.26,
                frac_store: 0.13,
                pattern_mix: PatternMix { stack: 0.30, hot: 0.20, stream: 0.20, random: 0.30 },
                ws_words: 1 << 14,
                stream_len: (128, 2048),
                hot_words: 512,
                mean_trip: 7.0,
                p_loop: 0.15,
                p_if: 0.34,
                p_call: 0.22,
                ilp_strands: (1, 3),
            },
            Benchmark::Epic => Profile {
                name: "epic",
                seed: 0x6570_6901,
                procs: 32,
                regions_per_proc: (5, 14),
                mean_ops_per_block: 7.5,
                frac_float: 0.30,
                frac_load: 0.24,
                frac_store: 0.12,
                pattern_mix: media_mix,
                ws_words: 1 << 11,
                stream_len: (512, 8192),
                hot_words: 256,
                mean_trip: 18.0,
                p_loop: 0.30,
                p_if: 0.26,
                p_call: 0.12,
                ilp_strands: (2, 4),
            },
            Benchmark::Ghostscript => Profile {
                name: "ghostscript",
                seed: 0x6773_6301,
                procs: 170,
                regions_per_proc: (6, 20),
                mean_ops_per_block: 5.8,
                frac_float: 0.08,
                frac_load: 0.23,
                frac_store: 0.11,
                pattern_mix: PatternMix { stack: 0.30, hot: 0.22, stream: 0.23, random: 0.25 },
                ws_words: 1 << 13,
                stream_len: (128, 2048),
                hot_words: 640,
                mean_trip: 8.0,
                p_loop: 0.18,
                p_if: 0.38,
                p_call: 0.18,
                ilp_strands: (2, 4),
            },
            Benchmark::Mipmap => Profile {
                name: "mipmap",
                seed: 0x6D69_7001,
                procs: 48,
                regions_per_proc: (5, 16),
                mean_ops_per_block: 8.0,
                frac_float: 0.38,
                frac_load: 0.25,
                frac_store: 0.12,
                pattern_mix: media_mix,
                ws_words: 1 << 10,
                stream_len: (1024, 16384),
                hot_words: 256,
                mean_trip: 24.0,
                p_loop: 0.32,
                p_if: 0.22,
                p_call: 0.10,
                ilp_strands: (2, 4),
            },
            Benchmark::PgpDecode => Profile {
                name: "pgpdecode",
                seed: 0x7067_6401,
                procs: 64,
                regions_per_proc: (6, 18),
                mean_ops_per_block: 6.0,
                frac_float: 0.02,
                frac_load: 0.24,
                frac_store: 0.10,
                pattern_mix: PatternMix { stack: 0.25, hot: 0.25, stream: 0.20, random: 0.30 },
                ws_words: 1 << 12,
                stream_len: (256, 4096),
                hot_words: 384,
                mean_trip: 12.0,
                p_loop: 0.22,
                p_if: 0.34,
                p_call: 0.14,
                ilp_strands: (1, 3),
            },
            Benchmark::PgpEncode => Profile {
                name: "pgpencode",
                seed: 0x7067_6501,
                procs: 60,
                regions_per_proc: (6, 18),
                mean_ops_per_block: 6.2,
                frac_float: 0.02,
                frac_load: 0.23,
                frac_store: 0.11,
                pattern_mix: PatternMix { stack: 0.25, hot: 0.25, stream: 0.22, random: 0.28 },
                ws_words: 1 << 12,
                stream_len: (256, 4096),
                hot_words: 384,
                mean_trip: 11.0,
                p_loop: 0.22,
                p_if: 0.36,
                p_call: 0.13,
                ilp_strands: (1, 3),
            },
            Benchmark::Rasta => Profile {
                name: "rasta",
                seed: 0x7261_7301,
                procs: 40,
                regions_per_proc: (5, 15),
                mean_ops_per_block: 7.8,
                frac_float: 0.42,
                frac_load: 0.24,
                frac_store: 0.10,
                pattern_mix: media_mix,
                ws_words: 1 << 10,
                stream_len: (256, 4096),
                hot_words: 256,
                mean_trip: 20.0,
                p_loop: 0.30,
                p_if: 0.24,
                p_call: 0.12,
                ilp_strands: (2, 4),
            },
            Benchmark::Unepic => Profile {
                name: "unepic",
                seed: 0x756E_6501,
                procs: 28,
                regions_per_proc: (4, 12),
                mean_ops_per_block: 7.2,
                frac_float: 0.26,
                frac_load: 0.25,
                frac_store: 0.13,
                pattern_mix: media_mix,
                ws_words: 1 << 10,
                stream_len: (512, 8192),
                hot_words: 256,
                mean_trip: 16.0,
                p_loop: 0.28,
                p_if: 0.26,
                p_call: 0.12,
                ilp_strands: (2, 4),
            },
        }
    }

    /// Synthesizes this benchmark's program.
    ///
    /// The result is fully determined by the benchmark's profile (including
    /// its seed): calling this twice yields identical programs.
    ///
    /// # Examples
    ///
    /// ```
    /// use mhe_workload::Benchmark;
    /// let p = Benchmark::Epic.generate();
    /// assert!(p.validate().is_ok());
    /// assert!(p.block_count() > 100);
    /// ```
    pub fn generate(self) -> Program {
        ProgramGenerator::new(self.profile()).generate()
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_well_formed() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!(p.procs >= 4, "{}: too few procedures", p.name);
            assert!(p.regions_per_proc.0 <= p.regions_per_proc.1);
            assert!(p.frac_load + p.frac_store < 0.8, "{}: mem fraction too high", p.name);
            assert!((0.0..=1.0).contains(&p.frac_float));
            let s = p.p_loop + p.p_if + p.p_call;
            assert!(s < 1.0, "{}: region kind probabilities sum to {s}", p.name);
            assert!(p.mean_trip >= 2.0);
        }
    }

    #[test]
    fn names_are_unique_and_match_paper() {
        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(names.contains(&"085.gcc"));
        assert!(names.contains(&"ghostscript"));
        assert!(names.contains(&"unepic"));
    }

    #[test]
    fn seeds_are_unique() {
        let mut seeds: Vec<u64> = Benchmark::ALL.iter().map(|b| b.profile().seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10);
    }

    #[test]
    fn spec_benchmarks_are_larger_than_media_kernels() {
        let gcc = Benchmark::Gcc.profile();
        let epic = Benchmark::Epic.profile();
        assert!(gcc.procs > 3 * epic.procs);
    }
}
