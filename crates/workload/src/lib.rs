//! Synthetic workloads for memory-hierarchy evaluation.
//!
//! This crate is the substrate that stands in for the paper's benchmark
//! applications (a MediaBench subset plus three SPEC programs) and for the
//! IMPACT-based emulator that produced their event traces. It provides:
//!
//! * a machine-independent program IR ([`ir`]),
//! * deterministic data-access patterns and the counter-based address
//!   engine ([`data`]),
//! * seeded program synthesis with ten benchmark presets ([`gen`],
//!   [`profile`]),
//! * an execution engine producing basic-block event traces ([`exec`]).
//!
//! Everything downstream (the VLIW back-end, trace generation, cache
//! simulation, the dilation model) consumes these types.
//!
//! # Quick start
//!
//! ```
//! use mhe_workload::{Benchmark, exec::Executor};
//!
//! let program = Benchmark::Epic.generate();
//! assert!(program.validate().is_ok());
//!
//! // The event trace: a deterministic stream of executed basic blocks.
//! let trace: Vec<_> = Executor::new(&program, 42).take(100).collect();
//! assert_eq!(trace.len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod build;
pub mod data;
pub mod exec;
pub mod gen;
pub mod ir;
pub mod profile;
pub mod rng;

pub use build::ProgramBuilder;
pub use exec::{BlockEvent, BlockFrequencies, Executor};
pub use ir::Program;
pub use profile::{Benchmark, Profile};
