//! Small deterministic pseudo-random number generators.
//!
//! Workload generation and execution must be *bit-exact reproducible* across
//! platforms and dependency upgrades, so the crate carries its own tiny
//! generators instead of relying on an external crate's stream stability.
//!
//! [`SplitMix64`] is used for seeding; [`Xoshiro256`] (xoshiro256**) is the
//! workhorse stream generator.

/// SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256`], but it is a fine standalone generator as well.
///
/// # Examples
///
/// ```
/// use mhe_workload::rng::SplitMix64;
/// let mut rng = SplitMix64::new(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// // Re-seeding reproduces the stream exactly.
/// assert_eq!(SplitMix64::new(42).next_u64(), a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** generator (Blackman & Vigna 2018).
///
/// Fast, high-quality, and with a fixed, documented output stream — exactly
/// what deterministic workload synthesis needs.
///
/// # Examples
///
/// ```
/// use mhe_workload::rng::Xoshiro256;
/// let mut rng = Xoshiro256::seed_from(7);
/// let x = rng.range_u64(10);
/// assert!(x < 10);
/// let f = rng.f64();
/// assert!((0.0..1.0).contains(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed` via
    /// [`SplitMix64`].
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // A state of all zeros is the one forbidden state; SplitMix64 output
        // of four consecutive zeros is effectively impossible, but guard
        // anyway so the type upholds its invariant for every seed.
        let mut s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 top bits give a uniform dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range_u64 bound must be positive");
        // Lemire-style rejection-free-enough reduction. A slight modulo bias
        // is acceptable for workload synthesis; widen via 128-bit multiply to
        // keep it negligible.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn range_usize(&mut self, bound: usize) -> usize {
        self.range_u64(bound as u64) as usize
    }

    /// Returns a uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        lo + self.range_u64(hi - lo + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Samples an index according to non-negative `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && !weights.is_empty(),
            "weighted_index requires positive total weight"
        );
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Samples a geometric-ish integer with the given mean, at least 1.
    ///
    /// Used for trip counts and block sizes where a long positive tail is
    /// wanted.
    pub fn geometric_min1(&mut self, mean: f64) -> u64 {
        let mean = mean.max(1.0);
        if mean <= 1.0 + 1e-9 {
            return 1;
        }
        let p = 1.0 / mean;
        // Inverse-CDF sampling of geometric distribution on {1, 2, ...}.
        let u = self.f64().max(f64::MIN_POSITIVE);
        let k = (u.ln() / (1.0 - p).ln()).ceil();
        (k as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_value() {
        // Reference value from the published SplitMix64 algorithm, seed 0.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_streams_differ_by_seed() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from(99);
        for _ in 0..10_000 {
            let f = rng.f64();
            assert!((0.0..1.0).contains(&f), "f64 out of range: {f}");
        }
    }

    #[test]
    fn range_u64_respects_bound() {
        let mut rng = Xoshiro256::seed_from(5);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(rng.range_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn range_u64_covers_all_values() {
        let mut rng = Xoshiro256::seed_from(17);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.range_u64(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should occur");
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = Xoshiro256::seed_from(23);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            match rng.range_inclusive(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn weighted_index_prefers_heavier() {
        let mut rng = Xoshiro256::seed_from(31);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        // Rough proportion check for the dominant weight.
        assert!((counts[2] as f64 / 30_000.0 - 0.7).abs() < 0.05);
    }

    #[test]
    fn geometric_min1_mean_is_close() {
        let mut rng = Xoshiro256::seed_from(41);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| rng.geometric_min1(6.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.25, "observed mean {mean}");
    }

    #[test]
    fn geometric_min1_is_at_least_one() {
        let mut rng = Xoshiro256::seed_from(43);
        for _ in 0..1000 {
            assert!(rng.geometric_min1(1.0) >= 1);
            assert!(rng.geometric_min1(0.2) >= 1);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256::seed_from(47);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }
}
