//! **mhe-obs** — the workspace observability layer.
//!
//! Every pipeline stage of the evaluator (trace generation, `.mtr`
//! encode/decode, single-pass simulation, trace modeling, analytic
//! estimation, design-space walking, metric-cache traffic) carries
//! lightweight probes from this crate: monotonic span timers, relaxed
//! atomic counters, and byte/event gauges. The probes aggregate into a
//! process-global registry keyed by [`Phase`], snapshot at any moment via
//! [`Snapshot`], and render as a [`RunReport`] — human-readable text or a
//! single line of JSON — so every performance PR reports against the same
//! schema.
//!
//! # Cost model
//!
//! Observability is **off by default**. Every probe begins with one
//! relaxed load of a single `AtomicU8` and a branch; nothing else runs
//! when the level is [`ObsLevel::Off`], so instrumented hot paths keep
//! their uninstrumented timings (the `obs_overhead` bench bin in
//! `mhe-bench` enforces a <2% budget on the trace-replay workload).
//! Probes sit at batch boundaries — a simulation chunk, a codec frame, a
//! fan-out round — never inside per-address loops.
//!
//! # Selecting a sink
//!
//! The `MHE_OBS` environment variable selects the level on first probe
//! use: `json` → [`ObsLevel::Json`], `text`/`1`/`on`/`true` →
//! [`ObsLevel::Text`], anything else (including unset) →
//! [`ObsLevel::Off`]. [`set_level`] overrides it programmatically (the
//! `--obs`/`--obs-json` CLI flags do exactly that). Reports are emitted
//! to **stderr** by [`RunReport::emit`], keeping stdout clean for
//! experiment tables.
//!
//! # Example
//!
//! ```
//! use mhe_obs::{self as obs, ObsLevel, Phase, RunReport, Snapshot};
//!
//! obs::set_level(ObsLevel::Text);
//! let before = Snapshot::now();
//! {
//!     let _span = obs::span(Phase::Simulate);
//!     obs::add_events(Phase::Simulate, 1_000);
//! }
//! let report = RunReport::since("example", 1, &before);
//! assert_eq!(report.phases[0].events, 1_000);
//! obs::set_level(ObsLevel::Off);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// How much the probes record and how reports render.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ObsLevel {
    /// Probes compile to a branch on one relaxed atomic; nothing recorded.
    #[default]
    Off,
    /// Probes record; [`RunReport::emit`] prints human-readable text.
    Text,
    /// Probes record; [`RunReport::emit`] prints one JSON object per line.
    Json,
}

impl ObsLevel {
    /// Parses an `MHE_OBS`-style value: `json` selects [`ObsLevel::Json`];
    /// `text`, `1`, `on` or `true` select [`ObsLevel::Text`]; anything
    /// else is [`ObsLevel::Off`].
    pub fn parse(value: &str) -> ObsLevel {
        match value.trim().to_ascii_lowercase().as_str() {
            "json" => ObsLevel::Json,
            "text" | "1" | "on" | "true" => ObsLevel::Text,
            _ => ObsLevel::Off,
        }
    }

    /// Reads the level from the `MHE_OBS` environment variable
    /// ([`ObsLevel::Off`] when unset). This is the single place in the
    /// workspace where `MHE_OBS` is parsed.
    pub fn from_env() -> ObsLevel {
        match std::env::var("MHE_OBS") {
            Ok(v) => ObsLevel::parse(&v),
            Err(_) => ObsLevel::Off,
        }
    }

    /// Whether probes record at this level.
    pub fn is_enabled(self) -> bool {
        self != ObsLevel::Off
    }
}

impl fmt::Display for ObsLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ObsLevel::Off => "off",
            ObsLevel::Text => "text",
            ObsLevel::Json => "json",
        })
    }
}

/// Sentinel for "not yet initialised from the environment".
const LEVEL_UNSET: u8 = u8::MAX;

/// The process-global level. Initialised lazily from `MHE_OBS` on first
/// read; [`set_level`] stores directly.
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn level_from_u8(v: u8) -> ObsLevel {
    match v {
        1 => ObsLevel::Text,
        2 => ObsLevel::Json,
        _ => ObsLevel::Off,
    }
}

#[cold]
fn init_level_from_env() -> ObsLevel {
    let l = ObsLevel::from_env();
    // A racing initialiser computes the same value; last store wins.
    LEVEL.store(l as u8, Ordering::Relaxed);
    l
}

/// The current observability level (initialising from `MHE_OBS` on first
/// use).
pub fn level() -> ObsLevel {
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => init_level_from_env(),
        v => level_from_u8(v),
    }
}

/// Overrides the observability level for the whole process.
pub fn set_level(level: ObsLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether probes currently record. This is the guard every probe runs
/// first: one relaxed atomic load and a branch.
#[inline]
pub fn enabled() -> bool {
    match LEVEL.load(Ordering::Relaxed) {
        0 => false,
        LEVEL_UNSET => init_level_from_env().is_enabled(),
        _ => true,
    }
}

/// A pipeline stage the probes attribute work to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Block-frequency profiling of a program (`mhe-workload`).
    Profile,
    /// Compiling/scheduling a program for a machine (`mhe-vliw`).
    Compile,
    /// Address-trace generation, plain or dilated (`mhe-trace`).
    TraceGen,
    /// Encoding traces to `.mtr` frames or `din` text (`mhe-trace`).
    Encode,
    /// Decoding traces from `.mtr` frames or `din` text (`mhe-trace`).
    Decode,
    /// Single-pass and direct cache simulation (`mhe-cache`).
    Simulate,
    /// AHH trace-parameter modeling (`mhe-model`).
    Model,
    /// Analytic miss estimation — Lemma 1 / Eq. 4.12 / Eq. 4.15
    /// (`mhe-core`).
    Estimate,
    /// Design-space walking and per-design fan-out (`mhe-spacewalk`).
    Walk,
    /// Evaluation-cache persistence (`mhe-spacewalk`).
    Db,
    /// Distributed-walk coordination and shard evaluation
    /// (`mhe-spacewalk` fleet).
    Fleet,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 11] = [
        Phase::Profile,
        Phase::Compile,
        Phase::TraceGen,
        Phase::Encode,
        Phase::Decode,
        Phase::Simulate,
        Phase::Model,
        Phase::Estimate,
        Phase::Walk,
        Phase::Db,
        Phase::Fleet,
    ];

    /// The phase's snake_case report name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Profile => "profile",
            Phase::Compile => "compile",
            Phase::TraceGen => "trace_gen",
            Phase::Encode => "encode",
            Phase::Decode => "decode",
            Phase::Simulate => "simulate",
            Phase::Model => "model",
            Phase::Estimate => "estimate",
            Phase::Walk => "walk",
            Phase::Db => "db",
            Phase::Fleet => "fleet",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named scalar counter, reported alongside the phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Counter {
    /// Evaluation-cache lookups answered from memory.
    DbHit,
    /// Evaluation-cache lookups that had to compute.
    DbMiss,
    /// Bytes written to or read from persistent metric databases.
    DbPersistBytes,
    /// Heuristic-walk waves processed.
    WalkWaves,
    /// Designs evaluated across all heuristic waves.
    WalkWaveDesigns,
    /// Largest Pareto frontier observed during a walk (high-water mark).
    WalkFrontierPeak,
    /// Worker panics caught and isolated by a parallel sweep.
    WorkerPanic,
    /// Task attempts retried after an isolated worker panic.
    TaskRetry,
    /// Faults fired by the deterministic fault-injection harness.
    FaultInjected,
    /// Crash-safe checkpoint saves of the evaluation cache.
    CheckpointSave,
    /// Shard leases granted by a fleet coordinator.
    ShardLease,
    /// Shards reclaimed from dead or stalled workers and reassigned.
    ShardSteal,
    /// Evaluated points merged by a fleet coordinator.
    FleetPoints,
    /// Warm daemon sessions evicted by the TTL/LRU bound.
    SessionEvict,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 14] = [
        Counter::DbHit,
        Counter::DbMiss,
        Counter::DbPersistBytes,
        Counter::WalkWaves,
        Counter::WalkWaveDesigns,
        Counter::WalkFrontierPeak,
        Counter::WorkerPanic,
        Counter::TaskRetry,
        Counter::FaultInjected,
        Counter::CheckpointSave,
        Counter::ShardLease,
        Counter::ShardSteal,
        Counter::FleetPoints,
        Counter::SessionEvict,
    ];

    /// The counter's snake_case report name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::DbHit => "db_hit",
            Counter::DbMiss => "db_miss",
            Counter::DbPersistBytes => "db_persist_bytes",
            Counter::WalkWaves => "walk_waves",
            Counter::WalkWaveDesigns => "walk_wave_designs",
            Counter::WalkFrontierPeak => "walk_frontier_peak",
            Counter::WorkerPanic => "worker_panic",
            Counter::TaskRetry => "task_retry",
            Counter::FaultInjected => "fault_injected",
            Counter::CheckpointSave => "checkpoint_save",
            Counter::ShardLease => "shard_lease",
            Counter::ShardSteal => "shard_steal",
            Counter::FleetPoints => "fleet_points",
            Counter::SessionEvict => "session_evict",
        }
    }
}

const PHASES: usize = Phase::ALL.len();
const COUNTERS: usize = Counter::ALL.len();

/// One phase's atomic accumulators.
#[derive(Debug)]
struct PhaseCell {
    spans: AtomicU64,
    busy_ns: AtomicU64,
    wall_ns: AtomicU64,
    events: AtomicU64,
    bytes: AtomicU64,
}

impl PhaseCell {
    const fn new() -> Self {
        Self {
            spans: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            wall_ns: AtomicU64::new(0),
            events: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const PHASE_CELL_ZERO: PhaseCell = PhaseCell::new();
#[allow(clippy::declare_interior_mutable_const)]
const COUNTER_ZERO: AtomicU64 = AtomicU64::new(0);

static CELLS: [PhaseCell; PHASES] = [PHASE_CELL_ZERO; PHASES];
static COUNTER_CELLS: [AtomicU64; COUNTERS] = [COUNTER_ZERO; COUNTERS];

fn cell(phase: Phase) -> &'static PhaseCell {
    &CELLS[phase as usize]
}

/// Records events (addresses, accesses, designs…) against a phase.
#[inline]
pub fn add_events(phase: Phase, n: u64) {
    if enabled() {
        cell(phase).events.fetch_add(n, Ordering::Relaxed);
    }
}

/// Records bytes moved (encoded, decoded, persisted) against a phase.
#[inline]
pub fn add_bytes(phase: Phase, n: u64) {
    if enabled() {
        cell(phase).bytes.fetch_add(n, Ordering::Relaxed);
    }
}

/// Records already-measured busy time against a phase (the span-free
/// probe for callers that keep their own clocks, e.g. per-worker busy
/// accounting in the parallel sweep).
#[inline]
pub fn add_busy(phase: Phase, d: Duration) {
    if enabled() {
        let c = cell(phase);
        c.busy_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        c.spans.fetch_add(1, Ordering::Relaxed);
    }
}

/// Bumps a named counter.
#[inline]
pub fn count(counter: Counter, n: u64) {
    if enabled() {
        COUNTER_CELLS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Raises a named counter to `v` if it is below (high-water mark).
#[inline]
pub fn record_max(counter: Counter, v: u64) {
    if enabled() {
        COUNTER_CELLS[counter as usize].fetch_max(v, Ordering::Relaxed);
    }
}

/// Zeroes every phase and counter accumulator. Intended for
/// single-purpose binaries that measure several configurations in one
/// process (e.g. the `obs_overhead` bench bin); racing probes may leak a
/// few events across the reset.
pub fn reset() {
    for c in &CELLS {
        c.spans.store(0, Ordering::Relaxed);
        c.busy_ns.store(0, Ordering::Relaxed);
        c.wall_ns.store(0, Ordering::Relaxed);
        c.events.store(0, Ordering::Relaxed);
        c.bytes.store(0, Ordering::Relaxed);
    }
    for c in &COUNTER_CELLS {
        c.store(0, Ordering::Relaxed);
    }
}

/// An RAII busy-time span: created by [`span`], it adds its lifetime to
/// the phase's busy time (and span count) on drop. When observability is
/// off the constructor is a branch and the drop a no-op.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            add_busy_raw(self.phase, start.elapsed());
        }
    }
}

fn add_busy_raw(phase: Phase, d: Duration) {
    let c = cell(phase);
    c.busy_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    c.spans.fetch_add(1, Ordering::Relaxed);
}

/// Starts a busy-time span for `phase`.
#[inline]
pub fn span(phase: Phase) -> Span {
    Span { phase, start: if enabled() { Some(Instant::now()) } else { None } }
}

/// An RAII wall-time span: like [`Span`] but charged to the phase's wall
/// clock, used around parallel fan-outs whose per-worker busy time is
/// recorded separately (wall < busy ⇒ overlap; efficiency = busy / (wall
/// × threads)).
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct WallSpan {
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for WallSpan {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            cell(self.phase)
                .wall_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// Starts a wall-time span for `phase`.
#[inline]
pub fn wall_span(phase: Phase) -> WallSpan {
    WallSpan { phase, start: if enabled() { Some(Instant::now()) } else { None } }
}

/// A point-in-time copy of every accumulator, used to scope a
/// [`RunReport`] to one region of execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    phases: [[u64; 5]; PHASES],
    counters: [u64; COUNTERS],
}

impl Snapshot {
    /// The zero snapshot (process start).
    pub fn zero() -> Self {
        Self { phases: [[0; 5]; PHASES], counters: [0; COUNTERS] }
    }

    /// Captures the current accumulator values.
    pub fn now() -> Self {
        let mut s = Self::zero();
        for (i, c) in CELLS.iter().enumerate() {
            s.phases[i] = [
                c.spans.load(Ordering::Relaxed),
                c.busy_ns.load(Ordering::Relaxed),
                c.wall_ns.load(Ordering::Relaxed),
                c.events.load(Ordering::Relaxed),
                c.bytes.load(Ordering::Relaxed),
            ];
        }
        for (i, c) in COUNTER_CELLS.iter().enumerate() {
            s.counters[i] = c.load(Ordering::Relaxed);
        }
        s
    }
}

/// One phase's aggregated numbers inside a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    /// Report name of the phase (see [`Phase::name`]).
    pub phase: &'static str,
    /// Completed spans (simulation passes, codec frames, fan-out rounds…).
    pub spans: u64,
    /// Summed busy time across all spans and workers, in nanoseconds.
    pub busy_ns: u64,
    /// Wall time of the phase's enclosing regions, in nanoseconds
    /// (0 when no wall span was recorded).
    pub wall_ns: u64,
    /// Events processed (addresses, accesses, designs…).
    pub events: u64,
    /// Bytes moved (encoded, decoded, persisted).
    pub bytes: u64,
}

impl PhaseStats {
    fn is_empty(&self) -> bool {
        self.spans == 0
            && self.busy_ns == 0
            && self.wall_ns == 0
            && self.events == 0
            && self.bytes == 0
    }

    /// The denominator throughput rates divide by: wall time when a wall
    /// span was recorded (parallel phases), busy time otherwise.
    fn rate_ns(&self) -> u64 {
        if self.wall_ns > 0 {
            self.wall_ns
        } else {
            self.busy_ns
        }
    }

    /// Events per second; 0 when no time was recorded.
    pub fn events_per_sec(&self) -> f64 {
        per_sec(self.events, self.rate_ns())
    }

    /// Bytes per second; 0 when no time was recorded.
    pub fn bytes_per_sec(&self) -> f64 {
        per_sec(self.bytes, self.rate_ns())
    }

    /// Spans per second (e.g. simulation passes per second); 0 when no
    /// time was recorded.
    pub fn spans_per_sec(&self) -> f64 {
        per_sec(self.spans, self.rate_ns())
    }

    /// Parallel efficiency of the phase: busy time divided by wall time ×
    /// `threads`. `None` when no wall span was recorded. 1.0 means every
    /// worker was busy the whole phase; lower means idle workers.
    pub fn parallel_efficiency(&self, threads: usize) -> Option<f64> {
        if self.wall_ns == 0 || threads == 0 {
            None
        } else {
            Some(self.busy_ns as f64 / (self.wall_ns as f64 * threads as f64))
        }
    }
}

fn per_sec(n: u64, ns: u64) -> f64 {
    if ns == 0 {
        0.0
    } else {
        n as f64 / (ns as f64 / 1e9)
    }
}

/// Schema version of the line-JSON report format. Bump when a field is
/// added, renamed, or removed; the golden test in `tests/` pins the
/// rendering for this version.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// The aggregated picture of one run (or run region): every non-empty
/// phase plus every non-zero counter, labelled.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// What was run (binary or operation name).
    pub label: String,
    /// Worker threads the run was configured with (0 = unknown).
    pub threads: usize,
    /// Non-empty phases, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseStats>,
    /// Non-zero counters, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
}

impl RunReport {
    /// Builds a report of everything recorded since `before`.
    pub fn since(label: impl Into<String>, threads: usize, before: &Snapshot) -> Self {
        let now = Snapshot::now();
        let mut phases = Vec::new();
        for (i, p) in Phase::ALL.iter().enumerate() {
            let d: Vec<u64> =
                (0..5).map(|j| now.phases[i][j].saturating_sub(before.phases[i][j])).collect();
            let stats = PhaseStats {
                phase: p.name(),
                spans: d[0],
                busy_ns: d[1],
                wall_ns: d[2],
                events: d[3],
                bytes: d[4],
            };
            if !stats.is_empty() {
                phases.push(stats);
            }
        }
        let mut counters = Vec::new();
        for (i, c) in Counter::ALL.iter().enumerate() {
            let v = now.counters[i].saturating_sub(before.counters[i]);
            if v > 0 {
                counters.push((c.name(), v));
            }
        }
        Self { label: label.into(), threads, phases, counters }
    }

    /// Builds a report of everything recorded since process start.
    pub fn capture(label: impl Into<String>, threads: usize) -> Self {
        Self::since(label, threads, &Snapshot::zero())
    }

    /// Renders the report as one line of JSON (the `MHE_OBS=json` sink
    /// format). The schema is pinned by [`REPORT_SCHEMA_VERSION`] and a
    /// golden test:
    ///
    /// ```json
    /// {"v":1,"report":"<label>","threads":N,
    ///  "phases":[{"phase":"simulate","spans":..,"busy_ns":..,"wall_ns":..,
    ///             "events":..,"bytes":..,"events_per_s":..,"bytes_per_s":..,
    ///             "efficiency":..}, ...],
    ///  "counters":{"db_hit":..,...}}
    /// ```
    ///
    /// `efficiency` is `null` for phases without a wall span.
    pub fn to_json_line(&self) -> String {
        use fmt::Write;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"v\":{REPORT_SCHEMA_VERSION},\"report\":{},\"threads\":{}",
            json_string(&self.label),
            self.threads
        );
        out.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"phase\":\"{}\",\"spans\":{},\"busy_ns\":{},\"wall_ns\":{},\
                 \"events\":{},\"bytes\":{},\"events_per_s\":{:.1},\"bytes_per_s\":{:.1},\
                 \"efficiency\":{}}}",
                p.phase,
                p.spans,
                p.busy_ns,
                p.wall_ns,
                p.events,
                p.bytes,
                p.events_per_sec(),
                p.bytes_per_sec(),
                match p.parallel_efficiency(self.threads) {
                    Some(e) => format!("{e:.3}"),
                    None => "null".to_string(),
                },
            );
        }
        out.push_str("],\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("}}");
        out
    }

    /// Emits the report to stderr according to the current [`level`]:
    /// nothing when off, [`fmt::Display`] text per phase when text, one
    /// [`RunReport::to_json_line`] line when json.
    pub fn emit(&self) {
        match level() {
            ObsLevel::Off => {}
            ObsLevel::Text => eprintln!("{self}"),
            ObsLevel::Json => eprintln!("{}", self.to_json_line()),
        }
    }
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[obs] {} (threads = {})", self.label, self.threads)?;
        for p in &self.phases {
            write!(
                f,
                "[obs]   {:<9} {:>7} spans  busy {:>9.3}s",
                p.phase,
                p.spans,
                p.busy_ns as f64 / 1e9,
            )?;
            if p.wall_ns > 0 {
                write!(f, "  wall {:>9.3}s", p.wall_ns as f64 / 1e9)?;
                if let Some(e) = p.parallel_efficiency(self.threads) {
                    write!(f, "  eff {:>5.1}%", e * 100.0)?;
                }
            }
            if p.events > 0 {
                write!(f, "  {} events ({:.2} M/s)", p.events, p.events_per_sec() / 1e6)?;
            }
            if p.bytes > 0 {
                write!(f, "  {} bytes ({:.1} MB/s)", p.bytes, p.bytes_per_sec() / 1e6)?;
            }
            writeln!(f)?;
        }
        for (name, v) in &self.counters {
            writeln!(f, "[obs]   {name:<22} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests mutating the global level/registry take this lock so the
    /// default multi-threaded test harness cannot interleave them.
    static GLOBAL: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        GLOBAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn level_parsing_covers_the_documented_values() {
        assert_eq!(ObsLevel::parse("json"), ObsLevel::Json);
        assert_eq!(ObsLevel::parse("JSON "), ObsLevel::Json);
        for v in ["text", "1", "on", "true", "TEXT"] {
            assert_eq!(ObsLevel::parse(v), ObsLevel::Text, "{v}");
        }
        for v in ["", "0", "off", "false", "none", "garbage"] {
            assert_eq!(ObsLevel::parse(v), ObsLevel::Off, "{v}");
        }
        assert_eq!(ObsLevel::Json.to_string(), "json");
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = locked();
        set_level(ObsLevel::Off);
        let before = Snapshot::now();
        {
            let _s = span(Phase::Simulate);
            let _w = wall_span(Phase::Simulate);
            add_events(Phase::Simulate, 10);
            add_bytes(Phase::Encode, 10);
            add_busy(Phase::Model, Duration::from_millis(1));
            count(Counter::DbHit, 5);
            record_max(Counter::WalkFrontierPeak, 9);
        }
        let r = RunReport::since("off", 1, &before);
        assert!(r.phases.is_empty(), "{r:?}");
        assert!(r.counters.is_empty(), "{r:?}");
    }

    #[test]
    fn spans_and_counters_accumulate_and_delta() {
        let _g = locked();
        set_level(ObsLevel::Text);
        let before = Snapshot::now();
        {
            let _s = span(Phase::Decode);
            add_events(Phase::Decode, 100);
            add_bytes(Phase::Decode, 800);
        }
        add_busy(Phase::Simulate, Duration::from_micros(50));
        count(Counter::DbMiss, 3);
        record_max(Counter::WalkFrontierPeak, 7);
        record_max(Counter::WalkFrontierPeak, 4); // lower: must not regress
        let r = RunReport::since("test", 2, &before);
        set_level(ObsLevel::Off);

        let decode = r.phases.iter().find(|p| p.phase == "decode").expect("decode phase");
        assert_eq!(decode.spans, 1);
        assert_eq!(decode.events, 100);
        assert_eq!(decode.bytes, 800);
        assert!(decode.busy_ns > 0);
        let sim = r.phases.iter().find(|p| p.phase == "simulate").expect("simulate phase");
        assert!(sim.busy_ns >= 50_000);
        assert!(r.counters.contains(&("db_miss", 3)));
        assert!(r.counters.iter().any(|&(n, v)| n == "walk_frontier_peak" && v >= 7));
    }

    #[test]
    fn wall_spans_feed_parallel_efficiency() {
        let stats = PhaseStats {
            phase: "simulate",
            spans: 4,
            busy_ns: 8_000,
            wall_ns: 2_000,
            events: 0,
            bytes: 0,
        };
        // 8000 busy over 2000 wall on 4 threads: perfectly parallel.
        assert!((stats.parallel_efficiency(4).unwrap() - 1.0).abs() < 1e-12);
        assert!((stats.parallel_efficiency(8).unwrap() - 0.5).abs() < 1e-12);
        let serial = PhaseStats { wall_ns: 0, ..stats };
        assert_eq!(serial.parallel_efficiency(4), None);
    }

    #[test]
    fn rates_divide_by_wall_when_present_else_busy() {
        let p = PhaseStats {
            phase: "decode",
            spans: 2,
            busy_ns: 1_000_000_000,
            wall_ns: 0,
            events: 5_000,
            bytes: 2_000,
        };
        assert!((p.events_per_sec() - 5_000.0).abs() < 1e-6);
        assert!((p.bytes_per_sec() - 2_000.0).abs() < 1e-6);
        assert!((p.spans_per_sec() - 2.0).abs() < 1e-9);
        let par = PhaseStats { wall_ns: 500_000_000, ..p };
        assert!((par.events_per_sec() - 10_000.0).abs() < 1e-6);
        let zero = PhaseStats { busy_ns: 0, wall_ns: 0, ..p };
        assert_eq!(zero.events_per_sec(), 0.0);
    }

    #[test]
    fn text_rendering_names_phases_and_counters() {
        let r = RunReport {
            label: "demo".into(),
            threads: 4,
            phases: vec![PhaseStats {
                phase: "simulate",
                spans: 3,
                busy_ns: 4_000_000,
                wall_ns: 1_000_000,
                events: 123,
                bytes: 0,
            }],
            counters: vec![("db_hit", 17)],
        };
        let text = r.to_string();
        assert!(text.contains("demo"), "{text}");
        assert!(text.contains("simulate"), "{text}");
        assert!(text.contains("eff 100.0%"), "{text}");
        assert!(text.contains("db_hit"), "{text}");
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn emit_respects_off_level() {
        let _g = locked();
        set_level(ObsLevel::Off);
        // Nothing to assert on stderr here; this just exercises the
        // no-op path for coverage and must not panic.
        RunReport::capture("noop", 1).emit();
    }
}
