//! Property tests for the evaluation-cache binary persistence.
//!
//! The properties: `save` → `load` reproduces *exactly* the entries that
//! were stored — every key, and every value down to the f64 bit pattern
//! (the format stores `f64::to_bits`, so NaNs and signed zeros survive) —
//! and any truncation or single-bit flip of a saved file is detected by
//! the whole-file CRC-32 footer, never loaded as plausible data.
//! The hit/compute counters do **not** round-trip: a loaded database
//! documents this by starting at `(0, 0)` — they describe the current
//! process's lookups, not the file's history.

use mhe_cache::CacheConfig;
use mhe_spacewalk::cache_db::{EvaluationCache, MetricKey};
use mhe_spacewalk::cost::CacheDesign;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn unique_path(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mhe_swpt_{tag}_{}_{n}.mhec", std::process::id()))
}

/// Application names exercise empty, spaces, tabs, and non-ASCII — the
/// binary format length-prefixes strings, so none of these may confuse it.
fn app_strategy() -> impl Strategy<Value = Arc<str>> {
    prop_oneof![
        Just(Arc::from("unepic")),
        Just(Arc::from("085.gcc")),
        Just(Arc::from("")),
        Just(Arc::from("name with spaces")),
        Just(Arc::from("tab\tand\nnewline")),
        Just(Arc::from("bénch-märk")),
    ]
}

fn design_strategy() -> impl Strategy<Value = CacheDesign> {
    (0u32..12, 0u32..4, 0u32..5, 1u32..4).prop_map(|(s, a, l, ports)| CacheDesign {
        config: CacheConfig::new(1 << s, 1 << a, 1 << l),
        ports,
    })
}

/// Values from raw bit patterns: covers NaNs, infinities, subnormals and
/// signed zeros — everything decimal text formatting would mangle.
fn value_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        (0u64..u64::MAX).prop_map(f64::from_bits),
        Just(0.0f64),
        Just(-0.0f64),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::MIN_POSITIVE),
        Just(0.1 + 0.2),
    ]
}

fn key_strategy() -> impl Strategy<Value = MetricKey> {
    (app_strategy(), design_strategy(), 0u32..20_000, 0u8..4).prop_map(
        |(app, design, millis, tag)| match tag {
            0 => MetricKey::IcacheMisses { app, design, dilation_millis: millis },
            1 => MetricKey::DcacheMisses { app, design },
            2 => MetricKey::UcacheMisses { app, design, dilation_millis: millis },
            _ => MetricKey::ProcCycles { app, proc: Arc::from(format!("p{millis}")) },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_persistence_round_trips_bit_exactly(
        entries in prop::collection::vec((key_strategy(), value_strategy()), 0..60)
    ) {
        let cache = EvaluationCache::new();
        for (k, v) in &entries {
            cache.insert(k.clone(), *v);
        }
        let path = unique_path("rt");
        cache.save(&path).expect("save");
        let loaded = EvaluationCache::load(&path).expect("load");
        std::fs::remove_file(&path).ok();

        let before = cache.entries();
        let after = loaded.entries();
        prop_assert_eq!(before.len(), after.len());
        for ((ka, va), (kb, vb)) in before.iter().zip(&after) {
            prop_assert_eq!(ka, kb);
            prop_assert_eq!(va.to_bits(), vb.to_bits(), "value bits changed for {}", ka);
        }
        // Counters are process-local, not persisted.
        prop_assert_eq!(loaded.stats(), (0, 0));
    }

    #[test]
    fn corruption_is_always_detected(
        entries in prop::collection::vec((key_strategy(), value_strategy()), 1..12),
        cut in 0usize..200,
        flip in 0usize..200,
        bit in 0u32..8,
    ) {
        let cache = EvaluationCache::new();
        for (k, v) in &entries {
            cache.insert(k.clone(), *v);
        }
        let path = unique_path("corrupt");
        cache.save(&path).expect("save");
        let mut bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Truncation: since v2 the whole file is covered by a CRC-32
        // footer, so every strict prefix — empty file included — must
        // error, never panic, never load as a smaller database.
        let trunc = unique_path("trunc");
        std::fs::write(&trunc, &bytes[..cut.min(bytes.len().saturating_sub(1))]).unwrap();
        prop_assert!(EvaluationCache::load(&trunc).is_err(), "truncated file loaded");
        std::fs::remove_file(&trunc).ok();

        // A single flipped bit anywhere — header, entries, value bits, or
        // the CRC footer itself — must be detected (CRC-32 catches every
        // single-bit error), not silently decoded to a different value.
        let i = flip % bytes.len();
        bytes[i] ^= 1u8 << bit;
        let flipped = unique_path("flip");
        std::fs::write(&flipped, &bytes).unwrap();
        prop_assert!(EvaluationCache::load(&flipped).is_err(), "bit-flipped file loaded");
        std::fs::remove_file(&flipped).ok();
    }
}
