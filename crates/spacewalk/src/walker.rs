//! Walkers: exhaustive exploration of the cache and system design spaces.
//!
//! Mirrors the paper's `MemoryWalker`/`IcacheWalker`/... hierarchy: each
//! walker binds (application, design, dilation) into experiments, obtains
//! metrics through the [`EvaluationCache`], and accumulates Pareto sets.
//! Because cache stalls are additive and independent across the three
//! caches (given a dilation), the memory walker may combine the
//! *per-cache* Pareto survivors instead of the raw cross product — a large
//! reduction that loses no Pareto-optimal combination (any combination
//! containing a dominated component is itself dominated by swapping that
//! component; the inclusion constraint is checked on the combined design).
//!
//! # Parallelism and determinism
//!
//! Per-design evaluation fans out over a [`ParallelSweep`] against the
//! shared concurrent cache; the worker count comes from the evaluation's
//! [`EvalConfig::worker_threads`]. Results come back in the input
//! enumeration order and are merged into the [`ParetoSet`] serially in
//! that order, so the frontier is **bit-identical regardless of thread
//! count** — only the wall clock changes.

use crate::cache_db::{EvaluationCache, MetricKey};
use crate::ckpt::Checkpointer;
use crate::cost::{cache_area, CacheDesign};
use crate::pareto::ParetoSet;
use crate::space::{CacheSpace, SystemSpace};
use mhe_cache::{MemoryDesign, Penalties};
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_core::parallel::ParallelSweep;
use mhe_core::system::processor_cycles;
use mhe_core::{CancelToken, MheError};
use mhe_vliw::Mdes;
use mhe_workload::ir::Program;
use std::sync::Arc;

/// Scale factor translating [`Mdes::cost`] units into the cache-area units
/// of [`crate::cost::cache_area`], so system cost is a single number.
pub const PROCESSOR_AREA_SCALE: f64 = 25.0;

/// A complete memory-hierarchy design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryPoint {
    /// Instruction cache.
    pub icache: CacheDesign,
    /// Data cache.
    pub dcache: CacheDesign,
    /// Unified cache.
    pub ucache: CacheDesign,
}

impl MemoryPoint {
    /// The geometry-only view.
    pub fn design(&self) -> MemoryDesign {
        MemoryDesign {
            icache: self.icache.config,
            dcache: self.dcache.config,
            ucache: self.ucache.config,
        }
    }
}

/// A complete system design point.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemPoint {
    /// The processor.
    pub processor: Mdes,
    /// The memory hierarchy.
    pub memory: MemoryPoint,
}

/// Builds the reference evaluation needed to walk `space`.
///
/// This is the only simulation work in the whole exploration; everything
/// after is analytic.
pub fn prepare_evaluation(
    program: Program,
    reference: &Mdes,
    config: EvalConfig,
    space: &SystemSpace,
) -> ReferenceEvaluation {
    ReferenceEvaluation::build(
        program,
        reference,
        config,
        &space.icache.configs(),
        &space.dcache.configs(),
        &space.ucache.configs(),
    )
}

/// The application key for an evaluation's program, shared by every metric
/// the walkers derive from it.
fn app_of(eval: &ReferenceEvaluation) -> Arc<str> {
    Arc::from(eval.program().name.as_str())
}

std::thread_local! {
    /// The cancel token every sweep built by [`fan_out`] on this thread
    /// attaches (scoped by [`with_walk_cancel`]). Thread-local rather
    /// than a parameter so the whole `walk_*` family stays cancellation-
    /// agnostic: batch runs and fleet workers never set it, while the
    /// daemon scopes one token around each served request.
    static WALK_CANCEL: std::cell::RefCell<Option<CancelToken>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with `cancel` attached to every [`fan_out`] sweep this thread
/// constructs, restoring the previous token (usually none) afterwards —
/// panic-safe via an RAII guard, since the service catches request
/// panics and reuses the thread.
pub fn with_walk_cancel<R>(cancel: CancelToken, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WALK_CANCEL.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(WALK_CANCEL.with(|c| c.borrow_mut().replace(cancel)));
    f()
}

/// The token scoped onto this thread by [`with_walk_cancel`], if any.
fn current_cancel() -> Option<CancelToken> {
    WALK_CANCEL.with(|c| c.borrow().clone())
}

/// Fans `items` out over `threads` workers in contiguous chunks, returning
/// results in input order.
///
/// Per-design evaluations are microseconds; chunking amortizes the
/// per-job dispatch so the sweep wins even on small spaces. `threads * 4`
/// chunks keeps the tail balanced without losing order — the flatten
/// concatenates chunk results exactly as enumerated.
///
/// Workers are panic-isolated: a panicking evaluation surfaces as
/// [`MheError::WorkerFailed`] (after any configured retries) instead of
/// aborting the process, and the first failure in enumeration order wins.
pub(crate) fn fan_out<T: Send + Sync, R: Send>(
    threads: usize,
    items: Vec<T>,
    f: impl Fn(&T) -> Result<R, MheError> + Sync,
) -> Result<Vec<R>, MheError> {
    let threads = threads.max(1);
    mhe_obs::add_events(mhe_obs::Phase::Walk, items.len() as u64);
    let mut sweep = ParallelSweep::with_threads(threads).with_label("walk");
    if let Some(cancel) = current_cancel() {
        sweep = sweep.with_cancel(cancel);
    }
    if threads == 1 || items.len() <= 1 {
        return sweep.try_map_in(Some(mhe_obs::Phase::Walk), &items, f).map_err(MheError::from);
    }
    let chunk_len = items.len().div_ceil(threads * 4).max(1);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(items.len().div_ceil(chunk_len));
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    Ok(sweep
        .try_map_in(Some(mhe_obs::Phase::Walk), &chunks, |chunk| {
            chunk.iter().map(&f).collect::<Result<Vec<R>, MheError>>()
        })
        .map_err(MheError::from)?
        .into_iter()
        .flatten()
        .collect())
}

/// Walks one cache space: fans the enumerated designs out, resolving each
/// metric through the shared cache, then merges serially in enumeration
/// order.
fn walk_cache_space(
    eval: &ReferenceEvaluation,
    space: &CacheSpace,
    db: &EvaluationCache,
    key: impl Fn(CacheDesign) -> MetricKey + Sync,
    metric: impl Fn(CacheDesign) -> Result<f64, MheError> + Sync,
) -> Result<ParetoSet<CacheDesign>, MheError> {
    let results = fan_out(eval.config().worker_threads(), space.enumerate(), |design| {
        db.get_or_try_insert_with(key(*design), || metric(*design)).map(|time| (*design, time))
    })?;
    let mut pareto = ParetoSet::new();
    for (design, time) in results {
        pareto.insert(design, cache_area(&design), time);
    }
    Ok(pareto)
}

/// Walks the instruction-cache space at one dilation; time = estimated
/// misses.
///
/// # Errors
///
/// Returns [`MheError::MissingSimulation`] if the dilation needs a line
/// size outside the pre-simulated space.
pub fn walk_icache(
    eval: &ReferenceEvaluation,
    space: &CacheSpace,
    dilation: f64,
    db: &EvaluationCache,
) -> Result<ParetoSet<CacheDesign>, MheError> {
    let app = app_of(eval);
    walk_cache_space(
        eval,
        space,
        db,
        |design| MetricKey::icache(&app, design, dilation),
        |design| eval.estimate_icache_misses(design.config, dilation),
    )
}

/// Walks the data-cache space (dilation-independent by Eq. 4.1).
///
/// # Errors
///
/// Returns [`MheError::MissingSimulation`] if a configuration was not
/// simulated.
pub fn walk_dcache(
    eval: &ReferenceEvaluation,
    space: &CacheSpace,
    db: &EvaluationCache,
) -> Result<ParetoSet<CacheDesign>, MheError> {
    let app = app_of(eval);
    walk_cache_space(
        eval,
        space,
        db,
        |design| MetricKey::dcache(&app, design),
        |design| eval.dcache_misses(design.config).map(|m| m as f64),
    )
}

/// Walks the unified-cache space at one dilation.
///
/// # Errors
///
/// Returns [`MheError::MissingSimulation`] if a configuration was not
/// simulated.
pub fn walk_ucache(
    eval: &ReferenceEvaluation,
    space: &CacheSpace,
    dilation: f64,
    db: &EvaluationCache,
) -> Result<ParetoSet<CacheDesign>, MheError> {
    let app = app_of(eval);
    walk_cache_space(
        eval,
        space,
        db,
        |design| MetricKey::ucache(&app, design, dilation),
        |design| eval.estimate_ucache_misses(design.config, dilation),
    )
}

/// Walks the whole memory space at one dilation; time = stall cycles.
///
/// # Errors
///
/// Propagates any [`MheError`] from the three per-cache walks.
pub fn walk_memory(
    eval: &ReferenceEvaluation,
    space: &SystemSpace,
    dilation: f64,
    penalties: Penalties,
    db: &EvaluationCache,
) -> Result<ParetoSet<MemoryPoint>, MheError> {
    let ic = walk_icache(eval, &space.icache, dilation, db)?;
    let dc = walk_dcache(eval, &space.dcache, db)?;
    let uc = walk_ucache(eval, &space.ucache, dilation, db)?;
    let mut pareto = ParetoSet::new();
    for i in ic.points() {
        for d in dc.points() {
            for u in uc.points() {
                let point = MemoryPoint { icache: i.design, dcache: d.design, ucache: u.design };
                if !point.design().satisfies_inclusion() {
                    continue;
                }
                let stalls = (i.time + d.time) * penalties.l1_miss as f64
                    + u.time * penalties.l2_miss as f64;
                let cost = i.cost + d.cost + u.cost;
                pareto.insert(point, cost, stalls);
            }
        }
    }
    Ok(pareto)
}

/// Walks the joint processor × memory space; time = total execution cycles.
///
/// The expensive per-processor work — compiling the target and symbolically
/// executing it for compute cycles — fans out over a [`ParallelSweep`]
/// against the shared cache; each processor's memory walk then fans out its
/// own designs. Frontier merges happen serially in processor order, so the
/// result is bit-identical at any thread count.
///
/// # Errors
///
/// Propagates any [`MheError`] from the per-processor memory walks.
pub fn walk_system(
    eval: &ReferenceEvaluation,
    space: &SystemSpace,
    penalties: Penalties,
    db: &EvaluationCache,
) -> Result<ParetoSet<SystemPoint>, MheError> {
    walk_system_with(eval, space, penalties, db, None)
}

/// [`walk_system`] with an optional crash-safe checkpoint hook.
///
/// When `checkpoint` is given, the shared [`EvaluationCache`] is persisted
/// atomically after every processor's memory walk, so a killed run can be
/// resumed by reloading the checkpoint and re-walking: every already-done
/// evaluation is a cache hit and the frontier comes out bit-identical to an
/// uninterrupted run (the merge itself is deterministic and cheap — only
/// the metric evaluations are worth saving).
///
/// # Errors
///
/// Propagates any [`MheError`] from the per-processor memory walks; a
/// failed checkpoint write surfaces as [`MheError::WorkerFailed`].
pub fn walk_system_with(
    eval: &ReferenceEvaluation,
    space: &SystemSpace,
    penalties: Penalties,
    db: &EvaluationCache,
    checkpoint: Option<&Checkpointer>,
) -> Result<ParetoSet<SystemPoint>, MheError> {
    let app = app_of(eval);
    let cfg = *eval.config();
    let procs: Vec<&Mdes> = space.processors.iter().collect();
    let prepared = fan_out(cfg.worker_threads(), procs, |proc| {
        let compiled = eval.compile_target(proc);
        let d = compiled.text_words() as f64 / eval.reference().text_words() as f64;
        let cycles = db.get_or_insert_with(MetricKey::proc_cycles(&app, &proc.name), || {
            processor_cycles(eval.program(), &compiled, cfg.seed, cfg.events) as f64
        });
        Ok((d, cycles))
    })?;
    if let Some(ckpt) = checkpoint {
        ckpt.save(db).map_err(|e| MheError::worker_failed("checkpoint save", e.to_string()))?;
    }
    let mut pareto = ParetoSet::new();
    for (proc, (d, compute)) in space.processors.iter().zip(prepared) {
        let memory = walk_memory(eval, space, d, penalties, db)?;
        for m in memory.points() {
            let time = compute + m.time;
            let cost = proc.cost() * PROCESSOR_AREA_SCALE + m.cost;
            pareto.insert(SystemPoint { processor: proc.clone(), memory: m.design }, cost, time);
        }
        if let Some(ckpt) = checkpoint {
            ckpt.save(db).map_err(|e| MheError::worker_failed("checkpoint save", e.to_string()))?;
        }
    }
    Ok(pareto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhe_cache::Policy;
    use mhe_vliw::ProcessorKind;
    use mhe_workload::Benchmark;

    fn small_space() -> SystemSpace {
        SystemSpace {
            processors: vec![ProcessorKind::P1111.mdes(), ProcessorKind::P3221.mdes()],
            icache: CacheSpace {
                sizes_bytes: vec![1024, 4096],
                assocs: vec![1, 2],
                line_bytes: vec![32],
                ports: vec![1],
                policies: vec![Policy::Lru],
            },
            dcache: CacheSpace {
                sizes_bytes: vec![1024, 4096],
                assocs: vec![1],
                line_bytes: vec![32],
                ports: vec![1],
                policies: vec![Policy::Lru],
            },
            ucache: CacheSpace {
                sizes_bytes: vec![16 << 10, 64 << 10],
                assocs: vec![2],
                line_bytes: vec![64],
                ports: vec![1],
                policies: vec![Policy::Lru],
            },
        }
    }

    fn eval_for(space: &SystemSpace) -> ReferenceEvaluation {
        prepare_evaluation(
            Benchmark::Unepic.generate(),
            &ProcessorKind::P1111.mdes(),
            EvalConfig { events: 40_000, ..EvalConfig::default() },
            space,
        )
    }

    #[test]
    fn icache_walk_produces_frontier() {
        let space = small_space();
        let eval = eval_for(&space);
        let db = EvaluationCache::new();
        let p = walk_icache(&eval, &space.icache, 1.5, &db).unwrap();
        assert!(!p.is_empty());
        assert!(p.len() <= space.icache.enumerate().len());
        // Frontier is strictly improving in time as cost rises.
        let pts = p.points();
        for w in pts.windows(2) {
            assert!(w[0].time > w[1].time);
        }
    }

    #[test]
    fn evaluation_cache_avoids_recomputation() {
        let space = small_space();
        let eval = eval_for(&space);
        let db = EvaluationCache::new();
        let _ = walk_icache(&eval, &space.icache, 1.5, &db).unwrap();
        let before = db.stats();
        let _ = walk_icache(&eval, &space.icache, 1.5, &db).unwrap();
        let after = db.stats();
        assert_eq!(before.1, after.1, "second walk must be all hits");
        assert!(after.0 > before.0);
    }

    #[test]
    fn walks_are_deterministic_across_thread_counts() {
        let space = small_space();
        let mut eval = eval_for(&space);
        let mut frontiers = Vec::new();
        for threads in [1, 2, 8] {
            eval.override_worker_threads(threads);
            let db = EvaluationCache::new();
            let p = walk_icache(&eval, &space.icache, 1.5, &db).unwrap();
            let bits: Vec<(CacheDesign, u64, u64)> = p
                .points()
                .iter()
                .map(|pt| (pt.design, pt.cost.to_bits(), pt.time.to_bits()))
                .collect();
            frontiers.push(bits);
        }
        assert_eq!(frontiers[0], frontiers[1]);
        assert_eq!(frontiers[0], frontiers[2]);
    }

    #[test]
    fn missing_simulation_is_an_error_not_a_panic() {
        let space = small_space();
        let eval = eval_for(&space);
        let db = EvaluationCache::new();
        // Dilation far beyond max_dilation needs line sizes that were never
        // simulated: the walker must report, not panic.
        let err = walk_icache(&eval, &space.icache, 64.0, &db);
        assert!(matches!(err, Err(MheError::MissingSimulation { .. })));
    }

    #[test]
    fn memory_walk_respects_inclusion() {
        let space = small_space();
        let eval = eval_for(&space);
        let db = EvaluationCache::new();
        let p = walk_memory(&eval, &space, 1.0, Penalties::default(), &db).unwrap();
        assert!(!p.is_empty());
        for pt in p.points() {
            assert!(pt.design.design().satisfies_inclusion());
        }
    }

    #[test]
    fn system_walk_contains_multiple_processors_or_dominates() {
        let space = small_space();
        let eval = eval_for(&space);
        let db = EvaluationCache::new();
        let p = walk_system(&eval, &space, Penalties::default(), &db).unwrap();
        assert!(!p.is_empty());
        // The cheapest system should use the narrow processor.
        let cheapest = p.cheapest().unwrap();
        assert_eq!(cheapest.design.processor.name, "1111");
        // With memory stalls priced at zero the wide processor's compute
        // advantage must win outright — the interesting case is that with
        // real penalties it may not (that tension is the paper's premise).
        let free_mem = Penalties { l1_miss: 0, l2_miss: 0 };
        let q = walk_system(&eval, &space, free_mem, &db).unwrap();
        assert_eq!(q.fastest().unwrap().design.processor.name, "3221");
    }

    #[test]
    fn scoped_cancel_aborts_the_walk_and_does_not_leak() {
        let space = small_space();
        let eval = eval_for(&space);
        let db = EvaluationCache::new();
        let token = CancelToken::new();
        token.cancel();
        let err = with_walk_cancel(token, || walk_icache(&eval, &space.icache, 1.5, &db))
            .expect_err("pre-cancelled walk must abort");
        assert!(matches!(err, MheError::Cancelled), "{err}");
        // The scope restored: the same thread walks normally afterwards,
        // reusing whatever the cancelled attempt already warmed.
        assert!(walk_icache(&eval, &space.icache, 1.5, &db).is_ok());
    }

    #[test]
    fn dcache_walk_is_dilation_independent() {
        let space = small_space();
        let eval = eval_for(&space);
        let db = EvaluationCache::new();
        let p = walk_dcache(&eval, &space.dcache, &db).unwrap();
        assert!(!p.is_empty());
    }
}
