//! Walkers: exhaustive exploration of the cache and system design spaces.
//!
//! Mirrors the paper's `MemoryWalker`/`IcacheWalker`/... hierarchy: each
//! walker binds (application, design, dilation) into experiments, obtains
//! metrics through the [`EvaluationCache`], and accumulates Pareto sets.
//! Because cache stalls are additive and independent across the three
//! caches (given a dilation), the memory walker may combine the
//! *per-cache* Pareto survivors instead of the raw cross product — a large
//! reduction that loses no Pareto-optimal combination (any combination
//! containing a dominated component is itself dominated by swapping that
//! component; the inclusion constraint is checked on the combined design).

use crate::cache_db::EvaluationCache;
use crate::cost::{cache_area, CacheDesign};
use crate::pareto::ParetoSet;
use crate::space::{CacheSpace, SystemSpace};
use mhe_cache::{MemoryDesign, Penalties};
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_core::parallel::ParallelSweep;
use mhe_core::system::processor_cycles;
use mhe_vliw::Mdes;
use mhe_workload::ir::Program;

/// Scale factor translating [`Mdes::cost`] units into the cache-area units
/// of [`crate::cost::cache_area`], so system cost is a single number.
pub const PROCESSOR_AREA_SCALE: f64 = 25.0;

/// A complete memory-hierarchy design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryPoint {
    /// Instruction cache.
    pub icache: CacheDesign,
    /// Data cache.
    pub dcache: CacheDesign,
    /// Unified cache.
    pub ucache: CacheDesign,
}

impl MemoryPoint {
    /// The geometry-only view.
    pub fn design(&self) -> MemoryDesign {
        MemoryDesign {
            icache: self.icache.config,
            dcache: self.dcache.config,
            ucache: self.ucache.config,
        }
    }
}

/// A complete system design point.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemPoint {
    /// The processor.
    pub processor: Mdes,
    /// The memory hierarchy.
    pub memory: MemoryPoint,
}

/// Builds the reference evaluation needed to walk `space`.
///
/// This is the only simulation work in the whole exploration; everything
/// after is analytic.
pub fn prepare_evaluation(
    program: Program,
    reference: &Mdes,
    config: EvalConfig,
    space: &SystemSpace,
) -> ReferenceEvaluation {
    ReferenceEvaluation::build(
        program,
        reference,
        config,
        &space.icache.configs(),
        &space.dcache.configs(),
        &space.ucache.configs(),
    )
}

/// Walks the instruction-cache space at one dilation; time = estimated
/// misses.
pub fn walk_icache(
    eval: &ReferenceEvaluation,
    space: &CacheSpace,
    dilation: f64,
    db: &mut EvaluationCache,
) -> ParetoSet<CacheDesign> {
    let mut pareto = ParetoSet::new();
    for design in space.enumerate() {
        let key = format!(
            "{}/ic/{}/p{}/d{dilation:.3}",
            eval.program().name,
            design.config,
            design.ports
        );
        let misses = db.get_or_insert_with(&key, || {
            eval.estimate_icache_misses(design.config, dilation)
                .expect("icache space was pre-simulated")
        });
        pareto.insert(design, cache_area(&design), misses);
    }
    pareto
}

/// Walks the data-cache space (dilation-independent by Eq. 4.1).
pub fn walk_dcache(
    eval: &ReferenceEvaluation,
    space: &CacheSpace,
    db: &mut EvaluationCache,
) -> ParetoSet<CacheDesign> {
    let mut pareto = ParetoSet::new();
    for design in space.enumerate() {
        let key = format!("{}/dc/{}/p{}", eval.program().name, design.config, design.ports);
        let misses = db.get_or_insert_with(&key, || {
            eval.dcache_misses(design.config).expect("dcache space was pre-simulated") as f64
        });
        pareto.insert(design, cache_area(&design), misses);
    }
    pareto
}

/// Walks the unified-cache space at one dilation.
pub fn walk_ucache(
    eval: &ReferenceEvaluation,
    space: &CacheSpace,
    dilation: f64,
    db: &mut EvaluationCache,
) -> ParetoSet<CacheDesign> {
    let mut pareto = ParetoSet::new();
    for design in space.enumerate() {
        let key = format!(
            "{}/uc/{}/p{}/d{dilation:.3}",
            eval.program().name,
            design.config,
            design.ports
        );
        let misses = db.get_or_insert_with(&key, || {
            eval.estimate_ucache_misses(design.config, dilation)
                .expect("ucache space was pre-simulated")
        });
        pareto.insert(design, cache_area(&design), misses);
    }
    pareto
}

/// Walks the whole memory space at one dilation; time = stall cycles.
pub fn walk_memory(
    eval: &ReferenceEvaluation,
    space: &SystemSpace,
    dilation: f64,
    penalties: Penalties,
    db: &mut EvaluationCache,
) -> ParetoSet<MemoryPoint> {
    let ic = walk_icache(eval, &space.icache, dilation, db);
    let dc = walk_dcache(eval, &space.dcache, db);
    let uc = walk_ucache(eval, &space.ucache, dilation, db);
    let mut pareto = ParetoSet::new();
    for i in ic.points() {
        for d in dc.points() {
            for u in uc.points() {
                let point = MemoryPoint { icache: i.design, dcache: d.design, ucache: u.design };
                if !point.design().satisfies_inclusion() {
                    continue;
                }
                let stalls = (i.time + d.time) * penalties.l1_miss as f64
                    + u.time * penalties.l2_miss as f64;
                let cost = i.cost + d.cost + u.cost;
                pareto.insert(point, cost, stalls);
            }
        }
    }
    pareto
}

/// Walks the joint processor × memory space; time = total execution cycles.
///
/// For each processor this computes its dilation and compute cycles once,
/// then combines with the memory frontier at that dilation. The expensive
/// per-processor work — compiling the target and symbolically executing it
/// for compute cycles — is independent across processors, so it fans out
/// over a [`ParallelSweep`]; the [`EvaluationCache`] is consulted before
/// the fan-out and updated after it, in processor order, so the walk is
/// deterministic and the cache's hit/compute accounting is unchanged.
pub fn walk_system(
    eval: &ReferenceEvaluation,
    space: &SystemSpace,
    penalties: Penalties,
    db: &mut EvaluationCache,
) -> ParetoSet<SystemPoint> {
    let mut pareto = ParetoSet::new();
    let cfg = *eval.config();
    let cycles_key = |proc: &Mdes| format!("{}/proc/{}/cycles", eval.program().name, proc.name);
    let jobs: Vec<(&Mdes, bool)> =
        space.processors.iter().map(|proc| (proc, db.get(&cycles_key(proc)).is_some())).collect();
    let prepared = ParallelSweep::new().map(jobs, |(proc, cached)| {
        let compiled = eval.compile_target(proc);
        let d = compiled.text_words() as f64 / eval.reference().text_words() as f64;
        let cycles = if cached {
            None
        } else {
            Some(processor_cycles(eval.program(), &compiled, cfg.seed, cfg.events) as f64)
        };
        (d, cycles)
    });
    for (proc, (d, cycles)) in space.processors.iter().zip(prepared) {
        let compute = db.get_or_insert_with(&cycles_key(proc), || {
            cycles.expect("cycles computed for uncached processor")
        });
        let memory = walk_memory(eval, space, d, penalties, db);
        for m in memory.points() {
            let time = compute + m.time;
            let cost = proc.cost() * PROCESSOR_AREA_SCALE + m.cost;
            pareto.insert(SystemPoint { processor: proc.clone(), memory: m.design }, cost, time);
        }
    }
    pareto
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhe_vliw::ProcessorKind;
    use mhe_workload::Benchmark;

    fn small_space() -> SystemSpace {
        SystemSpace {
            processors: vec![ProcessorKind::P1111.mdes(), ProcessorKind::P3221.mdes()],
            icache: CacheSpace {
                sizes_bytes: vec![1024, 4096],
                assocs: vec![1, 2],
                line_bytes: vec![32],
                ports: vec![1],
            },
            dcache: CacheSpace {
                sizes_bytes: vec![1024, 4096],
                assocs: vec![1],
                line_bytes: vec![32],
                ports: vec![1],
            },
            ucache: CacheSpace {
                sizes_bytes: vec![16 << 10, 64 << 10],
                assocs: vec![2],
                line_bytes: vec![64],
                ports: vec![1],
            },
        }
    }

    fn eval_for(space: &SystemSpace) -> ReferenceEvaluation {
        prepare_evaluation(
            Benchmark::Unepic.generate(),
            &ProcessorKind::P1111.mdes(),
            EvalConfig { events: 40_000, ..EvalConfig::default() },
            space,
        )
    }

    #[test]
    fn icache_walk_produces_frontier() {
        let space = small_space();
        let eval = eval_for(&space);
        let mut db = EvaluationCache::new();
        let p = walk_icache(&eval, &space.icache, 1.5, &mut db);
        assert!(!p.is_empty());
        assert!(p.len() <= space.icache.enumerate().len());
        // Frontier is strictly improving in time as cost rises.
        let pts = p.points();
        for w in pts.windows(2) {
            assert!(w[0].time > w[1].time);
        }
    }

    #[test]
    fn evaluation_cache_avoids_recomputation() {
        let space = small_space();
        let eval = eval_for(&space);
        let mut db = EvaluationCache::new();
        let _ = walk_icache(&eval, &space.icache, 1.5, &mut db);
        let before = db.stats();
        let _ = walk_icache(&eval, &space.icache, 1.5, &mut db);
        let after = db.stats();
        assert_eq!(before.1, after.1, "second walk must be all hits");
        assert!(after.0 > before.0);
    }

    #[test]
    fn memory_walk_respects_inclusion() {
        let space = small_space();
        let eval = eval_for(&space);
        let mut db = EvaluationCache::new();
        let p = walk_memory(&eval, &space, 1.0, Penalties::default(), &mut db);
        assert!(!p.is_empty());
        for pt in p.points() {
            assert!(pt.design.design().satisfies_inclusion());
        }
    }

    #[test]
    fn system_walk_contains_multiple_processors_or_dominates() {
        let space = small_space();
        let eval = eval_for(&space);
        let mut db = EvaluationCache::new();
        let p = walk_system(&eval, &space, Penalties::default(), &mut db);
        assert!(!p.is_empty());
        // The cheapest system should use the narrow processor.
        let cheapest = p.cheapest().unwrap();
        assert_eq!(cheapest.design.processor.name, "1111");
        // With memory stalls priced at zero the wide processor's compute
        // advantage must win outright — the interesting case is that with
        // real penalties it may not (that tension is the paper's premise).
        let free_mem = Penalties { l1_miss: 0, l2_miss: 0 };
        let q = walk_system(&eval, &space, free_mem, &mut db);
        assert_eq!(q.fastest().unwrap().design.processor.name, "3221");
    }

    #[test]
    fn dcache_walk_is_dilation_independent() {
        let space = small_space();
        let eval = eval_for(&space);
        let mut db = EvaluationCache::new();
        let p = walk_dcache(&eval, &space.dcache, &mut db);
        assert!(!p.is_empty());
    }
}
