//! Area-cost models for caches and systems.
//!
//! The paper computes "the area cost of a particular cache configuration
//! […] readily from the cache parameters". This module provides a simple
//! CACTI-flavoured analytical model: data + tag RAM bits, scaled by a port
//! factor (multi-ported RAM cells grow roughly quadratically in the port
//! count).

use mhe_cache::CacheConfig;

/// A cache design point: geometry plus port count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheDesign {
    /// Geometry.
    pub config: CacheConfig,
    /// Access ports (≥ 1).
    pub ports: u32,
}

impl CacheDesign {
    /// Single-ported design.
    pub fn single_ported(config: CacheConfig) -> Self {
        Self { config, ports: 1 }
    }
}

/// Physical word-address width assumed by the tag model.
const ADDR_BITS: u32 = 32;

/// Area of a cache in arbitrary units (thousands of bit-equivalents).
///
/// `area = (data_bits + tag_bits) · port_factor / 1000`, with
/// `port_factor = 1 + 0.6·(ports−1) + 0.3·(ports−1)²`.
///
/// # Examples
///
/// ```
/// use mhe_cache::CacheConfig;
/// use mhe_spacewalk::cost::{cache_area, CacheDesign};
/// let small = CacheDesign::single_ported(CacheConfig::from_bytes(1024, 1, 32));
/// let large = CacheDesign::single_ported(CacheConfig::from_bytes(16 * 1024, 2, 32));
/// assert!(cache_area(&large) > 10.0 * cache_area(&small));
/// ```
pub fn cache_area(design: &CacheDesign) -> f64 {
    let c = design.config;
    let lines = u64::from(c.sets) * u64::from(c.assoc);
    let data_bits = c.size_bytes() * 8;
    // Tag: address bits minus set-index and line-offset bits, plus valid +
    // LRU state per line.
    let offset_bits = (c.line_words * 4).trailing_zeros();
    let index_bits = c.sets.trailing_zeros();
    let tag_width =
        ADDR_BITS.saturating_sub(offset_bits + index_bits) + 1 + c.assoc.max(2).trailing_zeros();
    let tag_bits = lines * u64::from(tag_width);
    let p = f64::from(design.ports.max(1) - 1);
    let port_factor = 1.0 + 0.6 * p + 0.3 * p * p;
    (data_bits + tag_bits) as f64 * port_factor / 1000.0
}

/// Total memory-system area: the three caches of a hierarchy.
pub fn memory_area(icache: &CacheDesign, dcache: &CacheDesign, ucache: &CacheDesign) -> f64 {
    cache_area(icache) + cache_area(dcache) + cache_area(ucache)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_grows_with_size() {
        let mut prev = 0.0;
        for kb in [1u64, 2, 4, 8, 16, 32] {
            let a =
                cache_area(&CacheDesign::single_ported(CacheConfig::from_bytes(kb * 1024, 1, 32)));
            assert!(a > prev);
            prev = a;
        }
    }

    #[test]
    fn ports_scale_superlinearly() {
        let cfg = CacheConfig::from_bytes(8 * 1024, 2, 32);
        let a1 = cache_area(&CacheDesign { config: cfg, ports: 1 });
        let a2 = cache_area(&CacheDesign { config: cfg, ports: 2 });
        let a3 = cache_area(&CacheDesign { config: cfg, ports: 3 });
        assert!(a2 > a1);
        assert!(a3 - a2 > a2 - a1, "marginal port cost must grow");
    }

    #[test]
    fn smaller_lines_mean_more_tag_area() {
        // Same capacity, smaller lines -> more lines -> more tag bits.
        let coarse =
            cache_area(&CacheDesign::single_ported(CacheConfig::from_bytes(8 * 1024, 1, 64)));
        let fine =
            cache_area(&CacheDesign::single_ported(CacheConfig::from_bytes(8 * 1024, 1, 16)));
        assert!(fine > coarse);
    }

    #[test]
    fn memory_area_is_additive() {
        let c = CacheDesign::single_ported(CacheConfig::from_bytes(1024, 1, 32));
        let u = CacheDesign::single_ported(CacheConfig::from_bytes(16 * 1024, 2, 64));
        let total = memory_area(&c, &c, &u);
        assert!((total - (2.0 * cache_area(&c) + cache_area(&u))).abs() < 1e-9);
    }
}
