//! Design-space specifications.
//!
//! A [`CacheSpace`] names ranges for each cache parameter (size,
//! associativity, line size, ports) and enumerates the feasible
//! [`CacheDesign`]s inside them — the role of the paper's
//! `DesignSpaceSpec` input. [`SystemSpace`] adds the processor dimension.

use crate::cost::CacheDesign;
use mhe_cache::{CacheConfig, Policy};
use mhe_vliw::Mdes;

/// Parameter ranges for one cache's design space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSpace {
    /// Capacities in bytes (each a power of two).
    pub sizes_bytes: Vec<u64>,
    /// Associativities.
    pub assocs: Vec<u32>,
    /// Line sizes in bytes.
    pub line_bytes: Vec<u32>,
    /// Port counts.
    pub ports: Vec<u32>,
    /// Replacement policies to explore.
    pub policies: Vec<Policy>,
}

impl CacheSpace {
    /// A small instruction/data-cache space comparable to the paper's
    /// "20 or more possible cache designs for each of the three cache
    /// types".
    pub fn level1_default() -> Self {
        Self {
            sizes_bytes: vec![1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10],
            assocs: vec![1, 2],
            line_bytes: vec![16, 32],
            ports: vec![1],
            policies: vec![Policy::Lru],
        }
    }

    /// A default unified-cache (L2) space.
    pub fn level2_default() -> Self {
        Self {
            sizes_bytes: vec![16 << 10, 32 << 10, 64 << 10, 128 << 10],
            assocs: vec![2, 4],
            line_bytes: vec![64],
            ports: vec![1],
            policies: vec![Policy::Lru],
        }
    }

    /// The same ranges under a different set of replacement policies.
    pub fn with_policies(mut self, policies: Vec<Policy>) -> Self {
        self.policies = policies;
        self
    }

    /// Enumerates every feasible design in the space.
    ///
    /// Combinations whose size is not divisible into power-of-two sets are
    /// skipped (infeasible geometry), mirroring the feasibility rule of the
    /// paper. An empty `policies` list means LRU only, so pre-policy space
    /// literals keep their meaning.
    pub fn enumerate(&self) -> Vec<CacheDesign> {
        let policies: &[Policy] =
            if self.policies.is_empty() { &[Policy::Lru] } else { &self.policies };
        let mut out = Vec::new();
        for &size in &self.sizes_bytes {
            for &assoc in &self.assocs {
                for &line in &self.line_bytes {
                    let denom = u64::from(assoc) * u64::from(line);
                    if size % denom != 0 {
                        continue;
                    }
                    let sets = size / denom;
                    if sets == 0 || !sets.is_power_of_two() || sets > u64::from(u32::MAX) {
                        continue;
                    }
                    for &policy in policies {
                        for &ports in &self.ports {
                            out.push(CacheDesign {
                                config: CacheConfig::from_bytes(size, assoc, line)
                                    .with_policy(policy),
                                ports,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// The distinct line sizes (in words) of the space — the number of
    /// single-pass simulation runs needed per stream.
    pub fn distinct_line_words(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.line_bytes.iter().map(|b| b / 4).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Plain geometry list (ports stripped), deduplicated.
    pub fn configs(&self) -> Vec<CacheConfig> {
        let mut v: Vec<CacheConfig> = self.enumerate().iter().map(|d| d.config).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// The complete system design space.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpace {
    /// Candidate processors.
    pub processors: Vec<Mdes>,
    /// Instruction-cache space.
    pub icache: CacheSpace,
    /// Data-cache space.
    pub dcache: CacheSpace,
    /// Unified-cache space.
    pub ucache: CacheSpace,
}

impl SystemSpace {
    /// The paper's experimental space: the five processors and the default
    /// cache spaces.
    pub fn paper_default() -> Self {
        Self {
            processors: mhe_vliw::ProcessorKind::ALL.iter().map(|k| k.mdes()).collect(),
            icache: CacheSpace::level1_default(),
            dcache: CacheSpace::level1_default(),
            ucache: CacheSpace::level2_default(),
        }
    }

    /// Total number of raw design combinations (the quantity that makes
    /// exhaustive simulation infeasible).
    pub fn combinations(&self) -> u64 {
        self.processors.len() as u64
            * self.icache.enumerate().len() as u64
            * self.dcache.enumerate().len() as u64
            * self.ucache.enumerate().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spaces_are_nontrivial() {
        let l1 = CacheSpace::level1_default();
        assert!(l1.enumerate().len() >= 20, "paper speaks of 20+ designs");
        let l2 = CacheSpace::level2_default();
        assert!(l2.enumerate().len() >= 8);
    }

    #[test]
    fn enumerate_skips_infeasible_geometry() {
        let space = CacheSpace {
            sizes_bytes: vec![1024],
            assocs: vec![3], // 1024 / (3*32) is not an integer
            line_bytes: vec![32],
            ports: vec![1],
            policies: vec![Policy::Lru],
        };
        assert!(space.enumerate().is_empty());
    }

    #[test]
    fn policies_multiply_the_space() {
        let base = CacheSpace::level1_default();
        let multi = base.clone().with_policies(vec![Policy::Lru, Policy::Fifo]);
        assert_eq!(multi.enumerate().len(), 2 * base.enumerate().len());
        let configs = multi.configs();
        assert!(configs.iter().any(|c| c.policy == Policy::Fifo));
        assert!(configs.iter().any(|c| c.policy == Policy::Lru));
    }

    #[test]
    fn empty_policy_list_means_lru() {
        let mut space = CacheSpace::level1_default();
        space.policies = vec![];
        assert_eq!(space.enumerate(), CacheSpace::level1_default().enumerate());
    }

    #[test]
    fn distinct_line_words_deduplicates() {
        let l1 = CacheSpace::level1_default();
        assert_eq!(l1.distinct_line_words(), vec![4, 8]);
    }

    #[test]
    fn combinations_are_large() {
        let s = SystemSpace::paper_default();
        assert!(s.combinations() > 10_000, "got {}", s.combinations());
    }

    #[test]
    fn configs_strip_ports() {
        let mut space = CacheSpace::level1_default();
        space.ports = vec![1, 2];
        let designs = space.enumerate();
        let configs = space.configs();
        assert_eq!(designs.len(), 2 * configs.len());
    }
}
