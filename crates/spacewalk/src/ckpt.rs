//! Crash-safe checkpointing for long explorations.
//!
//! The only expensive state in an exploration is the [`EvaluationCache`]:
//! the Pareto merge is deterministic and cheap to redo. A checkpoint is
//! therefore just the cache persisted atomically (tmp sibling + fsync +
//! rename, CRC-32 footer — see [`EvaluationCache::save`]) into a
//! directory. Resuming means reloading the cache and re-running the same
//! deterministic walk: every already-evaluated design is a hit, so the
//! run fast-forwards to where it was killed and the final frontier is
//! bit-identical to an uninterrupted run.

use crate::cache_db::EvaluationCache;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the cache database inside a checkpoint directory.
pub const CACHE_FILE: &str = "cache.mhec";

/// Persists the [`EvaluationCache`] into a directory at walk milestones.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    dir: PathBuf,
}

impl Checkpointer {
    /// Binds a checkpoint directory, creating it if needed.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (with the path in its message) if
    /// the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", dir.display())))?;
        Ok(Self { dir })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the persisted cache database.
    pub fn cache_path(&self) -> PathBuf {
        self.dir.join(CACHE_FILE)
    }

    /// Loads the checkpointed cache, or a fresh one if no checkpoint
    /// exists yet (a first run and a resume share one code path).
    ///
    /// # Errors
    ///
    /// Returns an error if a checkpoint file exists but is corrupt or
    /// unreadable — a half-written or bit-rotted checkpoint must surface,
    /// not silently restart the exploration from scratch.
    pub fn load(&self) -> io::Result<EvaluationCache> {
        let path = self.cache_path();
        if path.exists() {
            EvaluationCache::load(&path)
        } else {
            Ok(EvaluationCache::new())
        }
    }

    /// Atomically persists `db` into the checkpoint directory.
    ///
    /// A reader (or a resumed run) sees either the previous checkpoint or
    /// the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing or renaming the database.
    pub fn save(&self, db: &EvaluationCache) -> io::Result<()> {
        db.save(self.cache_path())?;
        mhe_obs::count(mhe_obs::Counter::CheckpointSave, 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_db::MetricKey;
    use crate::cost::CacheDesign;
    use mhe_cache::CacheConfig;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mhe_ckpt_{tag}_{}", std::process::id()))
    }

    fn key(n: u64) -> MetricKey {
        let app: Arc<str> = Arc::from("ckpt");
        MetricKey::dcache(
            &app,
            CacheDesign { config: CacheConfig::from_bytes(1024 * n, 1, 32), ports: 1 },
        )
    }

    #[test]
    fn fresh_directory_loads_an_empty_cache() {
        let dir = tmp_dir("fresh");
        let ckpt = Checkpointer::new(&dir).unwrap();
        assert_eq!(ckpt.load().unwrap().len(), 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn save_then_load_roundtrips_the_cache() {
        let dir = tmp_dir("roundtrip");
        let ckpt = Checkpointer::new(&dir).unwrap();
        let db = EvaluationCache::new();
        db.insert(key(1), 10.0);
        db.insert(key(2), 20.0);
        ckpt.save(&db).unwrap();
        let back = ckpt.load().unwrap();
        assert_eq!(back.entries(), db.entries());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_a_silent_restart() {
        let dir = tmp_dir("corrupt");
        let ckpt = Checkpointer::new(&dir).unwrap();
        let db = EvaluationCache::new();
        db.insert(key(1), 10.0);
        ckpt.save(&db).unwrap();
        let path = ckpt.cache_path();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        assert!(ckpt.load().is_err());
        std::fs::remove_dir_all(dir).ok();
    }
}
