//! Distributed spacewalk: a sharded worker fleet with a deterministic
//! frontier merge.
//!
//! The distribution unit is the *metric evaluation*, not the frontier:
//! every fleet member independently enumerates the identical work plan
//! (the exact [`crate::cache_db::MetricKey`] set a batch walk resolves)
//! and partitions it by a build-stable FNV-1a hash of each key's
//! canonical byte encoding ([`plan::shard_of`]). The coordinator leases
//! shards to workers over the v2 `MHES` protocol, merges their streamed
//! `(key, value)` points into one [`crate::cache_db::EvaluationCache`],
//! steals shards back from dead or silent workers (re-offering the
//! already-merged points as a prefill so finished work is never
//! redone), and checkpoints the merged cache through the PR-5
//! [`crate::ckpt::Checkpointer`] format.
//!
//! When the fleet finishes, the caller runs the ordinary serial
//! [`crate::walker::walk_system_with`] over the fully-warm merged cache.
//! Every metric lookup hits; the walk degenerates to the deterministic
//! Pareto merge — so the distributed frontier is **bit-identical** to a
//! single-process run at any worker count, by construction rather than
//! by a merge protocol that must be proven order-insensitive.

pub mod coordinator;
pub mod plan;
pub mod worker;

pub use coordinator::{Coordinator, FleetConfig, FleetJob, FleetSummary, HaltHandle};
pub use plan::{evaluate_item, shard_of, work_plan, Task, WorkItem};
pub use worker::{run_worker, PreparedWorker, WorkerOptions, WorkerOutcome};
