//! The fleet worker: evaluates leased shards and streams points home.
//!
//! A worker is a full evaluation node: it rebuilds the reference
//! evaluation from the job's spec text (one simulation per worker —
//! the fleet distributes the *walk*, not the reference build), computes
//! the same deterministic work plan as every other fleet member, and
//! then loops lease → evaluate → stream until the coordinator says
//! `NoMoreWork`. Prefilled keys that arrive with a stolen shard are
//! skipped, which is exactly the "never recompute a dead worker's
//! finished points" guarantee.
//!
//! A heartbeat thread renews the worker's leases about once a second so
//! a long shard is not mistaken for a dead worker; conversely the
//! worker's own read deadline ([`WorkerOptions::reply_timeout`]) is its
//! dead-coordinator detector — the coordinator sends `Wait` frames
//! while a worker is parked, so silence longer than the deadline means
//! the coordinator is gone and the worker exits with the
//! server-unavailable contract (exit code 5).

use super::plan::{evaluate_item, shard_of, work_plan, WorkItem};
use crate::cache_db::MetricKey;
use crate::service::client::{ClientError, RetrySchedule};
use crate::service::proto::{
    client_hello, decode_coord_frame, encode_worker_frame, read_frame, write_frame, CoordFrame,
    JobOffer, WorkerFrame, FEATURE_AUTH, FEATURE_FLEET, VERSION,
};
use crate::space::SystemSpace;
use crate::spec::Spec;
use crate::walker;
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_vliw::ProcessorKind;
use std::collections::{HashMap, HashSet};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Points per `Points` frame: small enough that a killed worker loses
/// little streamed work, large enough to amortize framing.
const POINT_BATCH: usize = 256;
/// Heartbeat period; well inside the coordinator's default lease timeout.
const HEARTBEAT_PERIOD: Duration = Duration::from_secs(1);

/// A pre-built evaluation for in-process workers (tests, benches): skips
/// the per-worker reference build when the caller already has one for
/// the job's spec.
#[derive(Debug, Clone)]
pub struct PreparedWorker {
    /// The shared reference evaluation.
    pub eval: Arc<ReferenceEvaluation>,
    /// The (policy-overridden) system space the evaluation was built for.
    pub space: SystemSpace,
}

/// Tunables for one worker process.
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Evaluation thread count (`None`/0 = auto via `MHE_THREADS`).
    pub threads: Option<usize>,
    /// How long coordinator silence is tolerated before the worker
    /// declares it dead. `None` uses a 30-second default.
    pub reply_timeout: Option<Duration>,
    /// Fault-injection hook: stream exactly this many points, then drop
    /// the connection and fail — simulates a worker killed mid-shard for
    /// the steal/resume tests and the fleet smoke script.
    pub die_after_points: Option<u64>,
    /// Skip the reference build and use this evaluation instead.
    pub prepared: Option<PreparedWorker>,
    /// How many times a lost coordinator is redialed before the worker
    /// gives up (default 0: one attach, no retry). Redials survive a
    /// coordinator handoff — the worker keeps its built evaluation and
    /// resumes against the standby.
    pub redial_retries: u32,
    /// Base pause between redials (default 200 ms), doubling per attempt
    /// with deterministic jitter (see [`RetrySchedule`]).
    pub redial_backoff: Option<Duration>,
    /// The shared token answering a [`FEATURE_AUTH`] coordinator's
    /// challenge (default: `MHE_AUTH_TOKEN` from the environment).
    pub auth_token: Option<String>,
}

/// What one worker contributed to a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// The coordinator-assigned worker id (`u32::MAX` when the sweep
    /// was already complete at attach time and no id was assigned).
    pub worker_id: u32,
    /// Shards this worker completed.
    pub shards: u64,
    /// Points this worker evaluated and streamed.
    pub points: u64,
    /// Plan items skipped because a prefill already carried their value.
    pub skipped_prefilled: u64,
}

/// Sends one frame under the shared writer lock (the heartbeat thread
/// shares the socket).
fn send(writer: &Mutex<TcpStream>, frame: &WorkerFrame) -> Result<(), ClientError> {
    let payload = encode_worker_frame(frame).map_err(|e| ClientError::Protocol(e.to_string()))?;
    let mut guard = match writer.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    write_frame(&mut *guard, &payload).map_err(|e| ClientError::Unavailable(format!("send: {e}")))
}

/// Receives the next coordinator frame on the read half.
fn recv(reader: &mut TcpStream, timeout: Duration) -> Result<CoordFrame, ClientError> {
    let payload = read_frame(reader).map_err(|e| match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::Unavailable(format!(
            "coordinator silent past the {timeout:?} reply deadline"
        )),
        io::ErrorKind::InvalidData => ClientError::Protocol(e.to_string()),
        _ => ClientError::Unavailable(format!("receive: {e}")),
    })?;
    decode_coord_frame(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
}

/// Attaches to a coordinator at `addr` and works shards until the sweep
/// ends, redialing a lost coordinator up to
/// [`WorkerOptions::redial_retries`] times. Blocks for the whole sweep.
///
/// Across redials the worker keeps its built reference evaluation (the
/// expensive part of attaching) and the outcome accumulates — a handoff
/// costs a reconnect, not a rebuild.
///
/// # Errors
///
/// [`ClientError::Unavailable`] when the coordinator cannot be reached
/// or goes silent past the reply deadline (exit code 5, after the
/// redial budget is spent), [`ClientError::UnsupportedVersion`] on
/// protocol skew, [`ClientError::Remote`] when the coordinator aborts
/// the sweep, denies the auth proof, or the injected-death hook fires,
/// [`ClientError::Protocol`] on wire trouble.
pub fn run_worker(addr: &str, opts: WorkerOptions) -> Result<WorkerOutcome, ClientError> {
    let mut prepared = opts.prepared.clone();
    let mut outcome =
        WorkerOutcome { worker_id: u32::MAX, shards: 0, points: 0, skipped_prefilled: 0 };
    let backoff = opts.redial_backoff.unwrap_or(Duration::from_millis(200));
    let seed = addr.bytes().fold(0x5EED_0002u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
    let mut schedule = RetrySchedule::new(backoff, opts.redial_retries, None, seed);
    let started = std::time::Instant::now();
    loop {
        match attach_once(addr, &opts, &mut prepared, &mut outcome) {
            Ok(()) => return Ok(outcome),
            Err(e @ ClientError::Unavailable(_)) => match schedule.next_delay(started.elapsed()) {
                Some(delay) => {
                    eprintln!(
                        "spacewalker: {e}; redial {}/{}",
                        schedule.attempts(),
                        opts.redial_retries
                    );
                    std::thread::sleep(delay);
                }
                None => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
}

/// One attach: connect, handshake, auth, then the shard loop until the
/// sweep ends (`Ok`) or the connection dies (`Err`). Progress lands in
/// `outcome` as it happens, so a dropped connection loses nothing
/// already counted; the built evaluation is parked in `prepared` for
/// the next attempt.
fn attach_once(
    addr: &str,
    opts: &WorkerOptions,
    prepared: &mut Option<PreparedWorker>,
    outcome: &mut WorkerOutcome,
) -> Result<(), ClientError> {
    let timeout = opts.reply_timeout.unwrap_or(Duration::from_secs(30));
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| ClientError::Unavailable(format!("connect {addr:?}: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| ClientError::Unavailable(format!("configure socket: {e}")))?;
    let _ = stream.set_nodelay(true);
    let auth_token =
        opts.auth_token.clone().or_else(|| mhe_core::env::auth_token().map(str::to_string));
    let features = FEATURE_FLEET | if auth_token.is_some() { FEATURE_AUTH } else { 0 };
    let coordinator = client_hello(&mut stream, features).map_err(|e| {
        if e.kind() == io::ErrorKind::InvalidData {
            ClientError::Protocol(e.to_string())
        } else {
            ClientError::Unavailable(format!("handshake: {e}"))
        }
    })?;
    if coordinator.version != VERSION {
        return Err(ClientError::UnsupportedVersion {
            server: coordinator.version,
            client: VERSION,
        });
    }
    if coordinator.features & FEATURE_FLEET == 0 {
        return Err(ClientError::Protocol(format!(
            "peer is not a fleet coordinator (features {:#x})",
            coordinator.features
        )));
    }
    // The auth exchange runs on the undivided socket, before the
    // heartbeat thread exists — the proof must be the very next frame
    // the coordinator reads, and a stray heartbeat would break that.
    if coordinator.features & FEATURE_AUTH != 0 {
        let Some(token) = auth_token.as_deref() else {
            return Err(ClientError::Remote {
                code: mhe_core::EXIT_UNAUTHORIZED,
                message: "coordinator requires an auth token (set --auth-token or MHE_AUTH_TOKEN)"
                    .into(),
            });
        };
        match recv(&mut stream, timeout)? {
            CoordFrame::AuthChallenge { nonce } => {
                let proof = mhe_core::auth::proof(token, &nonce);
                let payload = encode_worker_frame(&WorkerFrame::Auth { proof })
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                write_frame(&mut stream, &payload)
                    .map_err(|e| ClientError::Unavailable(format!("send auth: {e}")))?;
            }
            other => {
                return Err(ClientError::Protocol(format!("expected AuthChallenge, got {other:?}")))
            }
        }
    }

    let mut reader =
        stream.try_clone().map_err(|e| ClientError::Unavailable(format!("split socket: {e}")))?;
    let writer = Arc::new(Mutex::new(stream));
    let hb_stop = Arc::new(AtomicBool::new(false));
    let hb = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&hb_stop);
        std::thread::spawn(move || {
            // Short ticks so stopping the thread is cheap; beats go out
            // once per HEARTBEAT_PERIOD regardless.
            let mut since_beat = Duration::ZERO;
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(20));
                since_beat += Duration::from_millis(20);
                if since_beat >= HEARTBEAT_PERIOD {
                    since_beat = Duration::ZERO;
                    if send(&writer, &WorkerFrame::Heartbeat).is_err() {
                        break; // socket gone; the main thread will notice
                    }
                }
            }
        })
    };
    let result = drive(&mut reader, &writer, timeout, opts, prepared, outcome);
    hb_stop.store(true, Ordering::SeqCst);
    let _ = hb.join();
    result
}

/// The post-handshake protocol conversation. Progress accumulates into
/// `outcome` so a severed connection keeps everything already streamed.
fn drive(
    reader: &mut TcpStream,
    writer: &Mutex<TcpStream>,
    timeout: Duration,
    opts: &WorkerOptions,
    prepared: &mut Option<PreparedWorker>,
    outcome: &mut WorkerOutcome,
) -> Result<(), ClientError> {
    send(writer, &WorkerFrame::Hello)?;
    let job = match recv(reader, timeout)? {
        CoordFrame::Job(job) => job,
        CoordFrame::NoMoreWork => {
            // The sweep finished before this worker was admitted;
            // contributing nothing is a clean outcome, not an error.
            return Ok(());
        }
        CoordFrame::Abort { message } => {
            return Err(ClientError::Remote { code: mhe_core::EXIT_WORKER_FAILURE, message })
        }
        CoordFrame::Denied { message } => {
            return Err(ClientError::Remote { code: mhe_core::EXIT_UNAUTHORIZED, message })
        }
        other => return Err(ClientError::Protocol(format!("expected Job, got {other:?}"))),
    };

    let (eval, space) = build_evaluation(&job, opts, prepared)?;
    // Park the build for redials: a handoff costs a reconnect, never a
    // reference rebuild.
    *prepared = Some(PreparedWorker { eval: Arc::clone(&eval), space: space.clone() });
    // The whole fleet computes this plan identically (golden-pinned
    // shard hash over canonical key bytes), so a shard id alone names
    // the same work on every node.
    let mut by_shard: HashMap<u32, Vec<WorkItem>> = HashMap::new();
    for item in work_plan(&eval, &space) {
        by_shard.entry(shard_of(&item.key, job.shard_count)).or_default().push(item);
    }

    outcome.worker_id = job.worker_id;
    loop {
        send(writer, &WorkerFrame::NeedShard)?;
        let assignment = loop {
            match recv(reader, timeout)? {
                CoordFrame::Wait => continue,
                CoordFrame::Assign { shard, prefill } => break Some((shard, prefill)),
                CoordFrame::NoMoreWork => break None,
                CoordFrame::Abort { message } => {
                    return Err(ClientError::Remote {
                        code: mhe_core::EXIT_WORKER_FAILURE,
                        message,
                    })
                }
                CoordFrame::Denied { message } => {
                    return Err(ClientError::Remote { code: mhe_core::EXIT_UNAUTHORIZED, message })
                }
                other => {
                    return Err(ClientError::Protocol(format!("expected Assign, got {other:?}")))
                }
            }
        };
        let Some((shard, prefill)) = assignment else {
            if mhe_obs::enabled() {
                mhe_obs::RunReport::capture(
                    format!("spacewalker-worker-{}", job.worker_id),
                    eval.config().worker_threads(),
                )
                .emit();
            }
            return Ok(());
        };
        work_shard(writer, &eval, &mut by_shard, shard, prefill, opts, outcome)?;
        send(writer, &WorkerFrame::ShardDone { shard })?;
        outcome.shards += 1;
    }
}

/// Builds (or adopts) the evaluation and policy-overridden space for a job.
fn build_evaluation(
    job: &JobOffer,
    opts: &WorkerOptions,
    cached: &Option<PreparedWorker>,
) -> Result<(Arc<ReferenceEvaluation>, SystemSpace), ClientError> {
    if let Some(prepared) = cached.as_ref().or(opts.prepared.as_ref()) {
        return Ok((Arc::clone(&prepared.eval), prepared.space.clone()));
    }
    let mut spec =
        Spec::parse(&job.spec_text).map_err(|e| ClientError::Protocol(format!("job spec: {e}")))?;
    if let Some(p) = &job.policies {
        spec.space.icache.policies.clone_from(p);
        spec.space.dcache.policies.clone_from(p);
        spec.space.ucache.policies.clone_from(p);
    }
    let _span = mhe_obs::span(mhe_obs::Phase::Fleet);
    let eval = walker::prepare_evaluation(
        spec.benchmark.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig {
            events: spec.events,
            sampling: job.sampling,
            threads: opts.threads.unwrap_or(0),
            ..EvalConfig::default()
        },
        &spec.space,
    );
    Ok((Arc::new(eval), spec.space))
}

/// Evaluates one leased shard and streams its points in batches.
fn work_shard(
    writer: &Mutex<TcpStream>,
    eval: &ReferenceEvaluation,
    by_shard: &mut HashMap<u32, Vec<WorkItem>>,
    shard: u32,
    prefill: Vec<(MetricKey, f64)>,
    opts: &WorkerOptions,
    outcome: &mut WorkerOutcome,
) -> Result<(), ClientError> {
    let known: HashSet<MetricKey> = prefill.into_iter().map(|(key, _)| key).collect();
    let items: Vec<WorkItem> = by_shard
        .remove(&shard)
        .unwrap_or_default()
        .into_iter()
        .filter(|item| {
            let have = known.contains(&item.key);
            if have {
                outcome.skipped_prefilled += 1;
            }
            !have
        })
        .collect();

    let _span = mhe_obs::span(mhe_obs::Phase::Fleet);
    let results = walker::fan_out(eval.config().worker_threads(), items, |item| {
        evaluate_item(eval, item).map(|value| (item.key.clone(), value))
    })
    .map_err(|e| ClientError::Remote {
        code: e.exit_code(),
        message: format!("shard {shard}: {e}"),
    })?;

    let mut batch: Vec<(MetricKey, f64)> = Vec::with_capacity(POINT_BATCH);
    for point in results {
        batch.push(point);
        outcome.points += 1;
        let dying = opts.die_after_points.is_some_and(|n| outcome.points >= n);
        if batch.len() >= POINT_BATCH || dying {
            send(writer, &WorkerFrame::Points { shard, points: std::mem::take(&mut batch) })?;
            if dying {
                // Simulated kill: the partial stream is flushed (those
                // points must survive as prefill), then the socket dies.
                let guard = match writer.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let _ = guard.shutdown(std::net::Shutdown::Both);
                return Err(ClientError::Remote {
                    code: mhe_core::EXIT_WORKER_FAILURE,
                    message: format!(
                        "injected worker death after {} streamed points",
                        outcome.points
                    ),
                });
            }
        }
    }
    if !batch.is_empty() {
        send(writer, &WorkerFrame::Points { shard, points: batch })?;
    }
    Ok(())
}
