//! The fleet coordinator: a shard-lease and point-merge server.
//!
//! The coordinator owns no reference evaluation — it is a pure
//! bookkeeper over the shared [`EvaluationCache`]. It partitions the
//! shard-id space `0..shard_count`, leases shards to whichever worker
//! asks first, merges every streamed `(key, value)` point into the
//! cache, and reclaims leases the moment a worker disconnects (or stops
//! renewing), handing the shard — together with every point already
//! merged for it as a *prefill* — to the next free worker. A killed
//! worker therefore costs the fleet only the points it had not yet
//! streamed; nothing completed is ever recomputed.
//!
//! Determinism is structural, not protocolary: point values are
//! deterministic functions of their keys, the cache is first-writer-wins
//! on identical values, and the frontier is produced *after* the fleet
//! by an ordinary serial walk over the merged cache. Worker count,
//! attach order, steals, and duplicate deliveries can change wall-clock
//! and counters, never bytes.

use super::plan::shard_of;
use crate::cache_db::EvaluationCache;
use crate::ckpt::Checkpointer;
use crate::service::proto::{
    decode_worker_frame, encode_coord_frame, handshake, read_exact_or_stop, write_frame,
    CoordFrame, FrameReader, Handshake, JobOffer, WorkerFrame, FEATURE_AUTH, FEATURE_FLEET,
    HANDSHAKE_LEN, MAGIC, VERSION,
};
use mhe_cache::Policy;
use mhe_core::{MheError, SamplingConfig};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Connection read timeout doubling as the handlers' stop-poll period.
const HANDLER_POLL: Duration = Duration::from_millis(100);
/// How often a parked worker is told to keep waiting.
const WAIT_PERIOD: Duration = Duration::from_secs(1);

/// Tunables for a fleet sweep.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// How many shards the key space is partitioned into. More shards
    /// mean finer-grained stealing; the default suits single-digit
    /// worker counts.
    pub shard_count: u32,
    /// A lease not renewed (by points, completion, or heartbeat) within
    /// this window is reclaimed and reassigned.
    pub lease_timeout: Duration,
    /// If *no* shard completes and no points arrive for this long while
    /// work remains, the sweep is abandoned with a worker-failure error.
    pub stall_timeout: Duration,
    /// When set, every attaching worker must answer a challenge with an
    /// HMAC proof over this token before it is offered the job (the
    /// default adopts `MHE_AUTH_TOKEN` from the environment).
    pub auth_token: Option<String>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shard_count: 32,
            lease_timeout: Duration::from_secs(15),
            stall_timeout: Duration::from_secs(120),
            auth_token: mhe_core::env::auth_token().map(str::to_string),
        }
    }
}

/// The job every attaching worker is handed (minus its worker id).
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Verbatim spec-file text; workers rebuild the evaluation from it.
    pub spec_text: String,
    /// Interval-sampling override.
    pub sampling: Option<SamplingConfig>,
    /// Replacement-policy override.
    pub policies: Option<Vec<Policy>>,
}

/// What a completed fleet sweep looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSummary {
    /// Distinct workers that attached over the sweep's lifetime.
    pub workers: u32,
    /// Points merged into the cache (first deliveries only).
    pub points: u64,
    /// Shards reclaimed from dead or expired workers and reassigned.
    pub steals: u64,
    /// Point deliveries whose key was already merged (stolen-shard
    /// overlap); harmless — values are deterministic.
    pub duplicates: u64,
    /// Total shard count of the partition.
    pub shards: u32,
}

#[derive(Debug)]
struct Lease {
    worker: u32,
    renewed: Instant,
}

#[derive(Debug)]
struct State {
    pending: VecDeque<u32>,
    leases: HashMap<u32, Lease>,
    done: HashSet<u32>,
    next_worker: u32,
    steals: u64,
    duplicates: u64,
    points: u64,
    last_progress: Instant,
    abort: Option<String>,
}

#[derive(Debug)]
struct Shared {
    job: FleetJob,
    cfg: FleetConfig,
    db: Arc<EvaluationCache>,
    state: Mutex<State>,
    halt: Arc<AtomicBool>,
}

impl Shared {
    fn all_done(&self) -> bool {
        self.locked(|s| s.done.len() as u32) == self.cfg.shard_count
    }

    fn aborted(&self) -> Option<String> {
        self.locked(|s| s.abort.clone())
    }

    fn halted(&self) -> bool {
        self.halt.load(Ordering::SeqCst)
    }

    fn locked<R>(&self, f: impl FnOnce(&mut State) -> R) -> R {
        match self.state.lock() {
            Ok(mut s) => f(&mut s),
            // A poisoned lock means a handler panicked mid-update; the
            // bookkeeping is still consistent (every update is a single
            // guarded section), so keep going rather than deadlock.
            Err(poisoned) => f(&mut poisoned.into_inner()),
        }
    }
}

/// A remote stop switch for a running [`Coordinator`] — the handoff
/// primitive. Halting is *not* aborting: connections close without an
/// `Abort` frame, so workers see silence, map it to the
/// server-unavailable contract, and redial (landing on the standby that
/// rebinds the port and resumes from the shared checkpoint).
#[derive(Debug, Clone)]
pub struct HaltHandle {
    halt: Arc<AtomicBool>,
}

impl HaltHandle {
    /// Asks the coordinator to stop brokering and return. Idempotent.
    pub fn halt(&self) {
        self.halt.store(true, Ordering::SeqCst);
    }

    /// Whether a halt was requested.
    pub fn is_halted(&self) -> bool {
        self.halt.load(Ordering::SeqCst)
    }
}

/// A bound fleet coordinator, ready to [`Coordinator::run`].
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and prepares the shard
    /// partition. `db` is the merge target — preloading it (from `--db`
    /// or a checkpoint) turns already-known points into prefills that no
    /// worker recomputes.
    ///
    /// # Errors
    ///
    /// Propagates bind / socket-configuration failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        job: FleetJob,
        cfg: FleetConfig,
        db: Arc<EvaluationCache>,
    ) -> io::Result<Coordinator> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let state = State {
            pending: (0..cfg.shard_count).collect(),
            leases: HashMap::new(),
            done: HashSet::new(),
            next_worker: 0,
            steals: 0,
            duplicates: 0,
            points: 0,
            last_progress: Instant::now(),
            abort: None,
        };
        let shared = Arc::new(Shared {
            job,
            cfg,
            db,
            state: Mutex::new(state),
            halt: Arc::new(AtomicBool::new(false)),
        });
        Ok(Coordinator { listener, shared })
    }

    /// The actually-bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A cloneable stop switch for handing this coordinator's role to a
    /// standby; see [`HaltHandle`].
    pub fn halt_handle(&self) -> HaltHandle {
        HaltHandle { halt: Arc::clone(&self.shared.halt) }
    }

    /// Accepts workers and brokers shards until every shard is done (or
    /// the sweep stalls), merging streamed points into the cache.
    ///
    /// When `checkpoint` is given, the merged cache is persisted after
    /// every newly completed shard — only from this thread, so saves
    /// never race.
    ///
    /// # Errors
    ///
    /// [`MheError::WorkerFailed`] when the sweep stalls past
    /// [`FleetConfig::stall_timeout`] or a checkpoint write fails.
    pub fn run(&self, checkpoint: Option<&Checkpointer>) -> Result<FleetSummary, MheError> {
        let _span = mhe_obs::span(mhe_obs::Phase::Fleet);
        let mut handlers = Vec::new();
        let mut saved_done = 0usize;
        let result = loop {
            let (done, stalled) = self.shared.locked(|s| {
                // Reclaim leases whose worker stopped renewing without
                // the TCP layer noticing (hung process, half-open link).
                let cutoff = self.shared.cfg.lease_timeout;
                let expired: Vec<u32> = s
                    .leases
                    .iter()
                    .filter(|(_, l)| l.renewed.elapsed() > cutoff)
                    .map(|(&shard, _)| shard)
                    .collect();
                for shard in expired {
                    s.leases.remove(&shard);
                    s.pending.push_back(shard);
                    s.steals += 1;
                    mhe_obs::count(mhe_obs::Counter::ShardSteal, 1);
                }
                (s.done.len(), s.last_progress.elapsed() > self.shared.cfg.stall_timeout)
            });
            if let Some(message) = self.shared.aborted() {
                break Err(MheError::worker_failed("fleet", message));
            }
            if done == self.shared.cfg.shard_count as usize {
                break Ok(());
            }
            if self.shared.halted() {
                // Handoff: stop brokering and report the unfinished
                // sweep. Handlers observe the halt and close every
                // worker connection *without* an Abort — silence makes
                // workers redial; the checkpoint is written after they
                // drain (below), so it carries every merged point.
                break Err(MheError::worker_failed(
                    "coordinator",
                    format!(
                        "halted for handoff with {done} of {} shards done",
                        self.shared.cfg.shard_count
                    ),
                ));
            }
            if stalled {
                let message = format!(
                    "no progress for {:?} with {} of {} shards done",
                    self.shared.cfg.stall_timeout, done, self.shared.cfg.shard_count
                );
                self.shared.locked(|s| s.abort = Some(message.clone()));
                break Err(MheError::worker_failed("fleet", message));
            }
            if done > saved_done {
                if let Some(ckpt) = checkpoint {
                    ckpt.save(&self.shared.db).map_err(|e| {
                        MheError::worker_failed("fleet checkpoint save", e.to_string())
                    })?;
                }
                saved_done = done;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    handlers.push(std::thread::spawn(move || {
                        // Per-worker failures end that worker only.
                        let _ = serve_worker(stream, &shared);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => break Err(MheError::worker_failed("fleet accept", e.to_string())),
            }
        };
        // Final checkpoint of the fully-merged cache, then let every
        // handler observe the terminal state and unwind.
        if result.is_ok() {
            if let Some(ckpt) = checkpoint {
                ckpt.save(&self.shared.db)
                    .map_err(|e| MheError::worker_failed("fleet checkpoint save", e.to_string()))?;
            }
            // Admit stragglers still parked in the accept backlog (a
            // worker that connected as the last shard finished): each
            // gets a handshake and a NoMoreWork instead of a timeout.
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let shared = Arc::clone(&self.shared);
                        handlers.push(std::thread::spawn(move || {
                            let _ = serve_worker(stream, &shared);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }
        for h in handlers {
            let _ = h.join();
        }
        // On a halt, the cache is persisted only now — after every
        // handler finished merging its in-flight points — so the standby
        // resumes from the most complete frontier this node ever held.
        if self.shared.halted() {
            if let Some(ckpt) = checkpoint {
                ckpt.save(&self.shared.db)
                    .map_err(|e| MheError::worker_failed("fleet checkpoint save", e.to_string()))?;
            }
        }
        result?;
        Ok(self.shared.locked(|s| FleetSummary {
            workers: s.next_worker,
            points: s.points,
            steals: s.steals,
            duplicates: s.duplicates,
            shards: self.shared.cfg.shard_count,
        }))
    }
}

/// Serves one worker connection: handshake, job offer, then the
/// lease/points loop until the sweep finishes or the worker goes away.
fn serve_worker(mut stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(HANDLER_POLL))?;
    stream.set_nodelay(true)?;
    let features = FEATURE_FLEET | if shared.cfg.auth_token.is_some() { FEATURE_AUTH } else { 0 };
    stream.write_all(&handshake(features))?;
    stream.flush()?;
    let mut reader_stream = stream.try_clone()?;
    let stop = || shared.all_done() || shared.aborted().is_some() || shared.halted();

    // The handshake reply gets its own patience: a worker admitted from
    // the post-sweep backlog drain must still complete it (so it can be
    // told NoMoreWork), while a port scanner that never answers cannot
    // pin the handler — only an abort or the deadline stops the wait.
    let hs_deadline = Instant::now();
    let hs_stop = || shared.aborted().is_some() || hs_deadline.elapsed() > Duration::from_secs(10);
    let mut hs = [0u8; HANDSHAKE_LEN];
    if !read_exact_or_stop(&mut reader_stream, &mut hs, &hs_stop)? {
        return Ok(());
    }
    if hs[..4] != MAGIC {
        return abort_worker(&mut stream, "unsupported protocol: expected a v2 fleet handshake");
    }
    let peer = Handshake::decode(&hs)?;
    if peer.version != VERSION {
        return abort_worker(
            &mut stream,
            &format!(
                "unsupported protocol version {} (this coordinator speaks {VERSION})",
                peer.version
            ),
        );
    }
    if peer.features & FEATURE_FLEET == 0 {
        return abort_worker(&mut stream, "peer did not announce fleet support");
    }

    let mut worker_id = None;
    let mut reader = FrameReader::new(reader_stream);

    // Trust gate: a tokened coordinator challenges before offering the
    // job. The proof must be the very next frame; anything else (or a
    // bad proof) earns a structured `Denied` and the connection ends.
    if let Some(token) = shared.cfg.auth_token.as_deref() {
        let nonce = mhe_core::auth::fresh_nonce();
        write_frame(&mut stream, &encode_coord_frame(&CoordFrame::AuthChallenge { nonce })?)?;
        let Some(payload) = reader.read_frame(&hs_stop)? else {
            return Ok(());
        };
        let verified = matches!(
            decode_worker_frame(&payload),
            Ok(WorkerFrame::Auth { proof }) if mhe_core::auth::verify(token, &nonce, &proof)
        );
        if !verified {
            let frame = CoordFrame::Denied {
                message: "authentication failed (bad or missing token)".into(),
            };
            return write_frame(&mut stream, &encode_coord_frame(&frame)?);
        }
    }
    let outcome = loop {
        let payload = match reader.read_frame(&stop)? {
            Some(payload) => payload,
            None => {
                // Terminal state observed at a frame boundary: tell the
                // worker why before closing (best-effort — the worker
                // may already be gone), so a worker racing its final
                // NeedShard against sweep completion still exits clean.
                // A halt says nothing: the closed socket is the signal
                // that makes the worker redial the standby.
                if shared.halted() {
                } else if let Some(message) = shared.aborted() {
                    let frame = CoordFrame::Abort { message };
                    let _ = write_frame(&mut stream, &encode_coord_frame(&frame)?);
                } else if shared.all_done() {
                    let _ = write_frame(&mut stream, &encode_coord_frame(&CoordFrame::NoMoreWork)?);
                }
                break Ok(());
            }
        };
        match decode_worker_frame(&payload)? {
            WorkerFrame::Hello => {
                if shared.all_done() {
                    // Attached after the last shard finished: no job to
                    // offer, and no point making the worker build an
                    // evaluation just to hear it.
                    write_frame(&mut stream, &encode_coord_frame(&CoordFrame::NoMoreWork)?)?;
                    break Ok(());
                }
                let id = shared.locked(|s| {
                    let id = s.next_worker;
                    s.next_worker += 1;
                    id
                });
                worker_id = Some(id);
                let job = CoordFrame::Job(JobOffer {
                    worker_id: id,
                    spec_text: shared.job.spec_text.clone(),
                    sampling: shared.job.sampling,
                    policies: shared.job.policies.clone(),
                    shard_count: shared.cfg.shard_count,
                });
                write_frame(&mut stream, &encode_coord_frame(&job)?)?;
            }
            WorkerFrame::NeedShard => {
                let Some(id) = worker_id else {
                    break Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "NeedShard before Hello",
                    ));
                };
                if !offer_shard(&mut stream, shared, id)? {
                    break Ok(()); // NoMoreWork or Abort was sent
                }
            }
            WorkerFrame::Points { shard, points } => {
                shared.locked(|s| {
                    for (key, value) in points {
                        if shared.db.get(&key).is_some() {
                            s.duplicates += 1;
                        } else {
                            shared.db.insert(key, value);
                            s.points += 1;
                            mhe_obs::count(mhe_obs::Counter::FleetPoints, 1);
                        }
                    }
                    if let Some(lease) = s.leases.get_mut(&shard) {
                        if Some(lease.worker) == worker_id {
                            lease.renewed = Instant::now();
                        }
                    }
                    s.last_progress = Instant::now();
                });
            }
            WorkerFrame::ShardDone { shard } => {
                shared.locked(|s| {
                    // Accept completion from any worker: even after a
                    // steal, the slow owner's points were all merged.
                    s.leases.remove(&shard);
                    s.pending.retain(|&p| p != shard);
                    s.done.insert(shard);
                    s.last_progress = Instant::now();
                });
            }
            WorkerFrame::Heartbeat => {
                if let Some(id) = worker_id {
                    shared.locked(|s| {
                        let now = Instant::now();
                        for lease in s.leases.values_mut().filter(|l| l.worker == id) {
                            lease.renewed = now;
                        }
                    });
                }
            }
            WorkerFrame::Auth { .. } => {
                break Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected auth frame (authentication is pre-Hello)",
                ));
            }
        }
    };
    // Whatever ends this connection, the worker's leases go back in the
    // pool immediately — disconnection is the fast steal path.
    if let Some(id) = worker_id {
        shared.locked(|s| {
            let mine: Vec<u32> =
                s.leases.iter().filter(|(_, l)| l.worker == id).map(|(&shard, _)| shard).collect();
            for shard in mine {
                s.leases.remove(&shard);
                s.pending.push_back(shard);
                s.steals += 1;
                mhe_obs::count(mhe_obs::Counter::ShardSteal, 1);
            }
        });
    }
    outcome
}

/// Parks a `NeedShard` request until a shard frees up (sending periodic
/// `Wait`s), then leases it with its prefill. Returns `false` when the
/// conversation is over (`NoMoreWork`/`Abort` sent).
fn offer_shard(stream: &mut TcpStream, shared: &Shared, worker: u32) -> io::Result<bool> {
    let mut last_wait = Instant::now();
    loop {
        if shared.halted() {
            // Close without a frame; the worker redials the standby.
            return Ok(false);
        }
        if let Some(message) = shared.aborted() {
            write_frame(stream, &encode_coord_frame(&CoordFrame::Abort { message })?)?;
            return Ok(false);
        }
        enum Next {
            Assign(u32),
            Finished,
            Park,
        }
        let next = shared.locked(|s| {
            if let Some(shard) = s.pending.pop_front() {
                s.leases.insert(shard, Lease { worker, renewed: Instant::now() });
                mhe_obs::count(mhe_obs::Counter::ShardLease, 1);
                Next::Assign(shard)
            } else if s.done.len() == shared.cfg.shard_count as usize {
                Next::Finished
            } else {
                Next::Park
            }
        });
        match next {
            Next::Assign(shard) => {
                // Everything already merged for this shard rides along,
                // so a stolen shard resumes instead of restarting.
                let prefill: Vec<_> = shared
                    .db
                    .entries()
                    .into_iter()
                    .filter(|(key, _)| shard_of(key, shared.cfg.shard_count) == shard)
                    .collect();
                write_frame(stream, &encode_coord_frame(&CoordFrame::Assign { shard, prefill })?)?;
                return Ok(true);
            }
            Next::Finished => {
                write_frame(stream, &encode_coord_frame(&CoordFrame::NoMoreWork)?)?;
                return Ok(false);
            }
            Next::Park => {
                if last_wait.elapsed() >= WAIT_PERIOD {
                    write_frame(stream, &encode_coord_frame(&CoordFrame::Wait)?)?;
                    last_wait = Instant::now();
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Sends a final `Abort` and ends the conversation.
fn abort_worker(stream: &mut TcpStream, message: &str) -> io::Result<()> {
    let frame = CoordFrame::Abort { message: message.to_string() };
    write_frame(stream, &encode_coord_frame(&frame)?)
}
