//! The distributed walk's work plan and deterministic shard partition.
//!
//! A fleet does not distribute frontiers — it distributes the *metric
//! evaluations* that make frontiers cheap. The plan enumerates exactly
//! the [`MetricKey`] set a batch [`crate::walker::walk_system`] would
//! resolve for the same evaluation and space, pairing each key with the
//! recipe to compute its value. Workers evaluate plan items; the
//! coordinator merges the resulting `(key, value)` points into one
//! [`crate::cache_db::EvaluationCache`]; the final frontier then falls
//! out of an ordinary serial walk over the fully-warm cache — which is
//! what makes the distributed result bit-identical to a single-process
//! run by construction, at any worker count.
//!
//! Sharding must be stable across processes, builds, and platforms
//! (workers and coordinator partition independently and must agree), so
//! it hashes the key's canonical cache-db byte encoding with FNV-1a
//! rather than relying on `DefaultHasher`, whose algorithm is
//! unspecified.

use crate::cache_db::{self, MetricKey};
use crate::cost::CacheDesign;
use crate::space::SystemSpace;
use mhe_core::evaluator::ReferenceEvaluation;
use mhe_core::system::processor_cycles;
use mhe_core::MheError;
use mhe_vliw::Mdes;
use std::collections::HashSet;
use std::io;
use std::sync::Arc;

/// The recipe for one metric value, mirroring the closures the batch
/// walkers pass to the evaluation cache.
#[derive(Debug, Clone)]
pub enum Task {
    /// Compile the target processor and symbolically execute it.
    ProcCycles {
        /// The processor to compile and execute.
        proc: Mdes,
    },
    /// Estimate instruction-cache misses at a text dilation.
    Icache {
        /// The cache design.
        design: CacheDesign,
        /// The exact (unquantized) text dilation.
        dilation: f64,
    },
    /// Count data-cache misses (dilation-independent).
    Dcache {
        /// The cache design.
        design: CacheDesign,
    },
    /// Estimate unified-cache misses at a text dilation.
    Ucache {
        /// The cache design.
        design: CacheDesign,
        /// The exact (unquantized) text dilation.
        dilation: f64,
    },
}

/// One unit of distributable work: a cache-db key plus its recipe.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// The evaluation-cache key the result is stored under.
    pub key: MetricKey,
    /// How to compute the value.
    pub task: Task,
}

/// Enumerates the exact key set a batch walk would resolve: per-processor
/// cycle counts, the dilation-independent data-cache designs, and the
/// instruction/unified designs at every *distinct* processor dilation
/// (deduplicated by key, as the shared cache would).
pub fn work_plan(eval: &ReferenceEvaluation, space: &SystemSpace) -> Vec<WorkItem> {
    let app: Arc<str> = Arc::from(eval.program().name.as_str());
    let mut seen: HashSet<MetricKey> = HashSet::new();
    let mut plan = Vec::new();
    let mut push = |plan: &mut Vec<WorkItem>, key: MetricKey, task: Task| {
        if seen.insert(key.clone()) {
            plan.push(WorkItem { key, task });
        }
    };
    for proc in &space.processors {
        push(
            &mut plan,
            MetricKey::proc_cycles(&app, &proc.name),
            Task::ProcCycles { proc: proc.clone() },
        );
    }
    for design in space.dcache.enumerate() {
        push(&mut plan, MetricKey::dcache(&app, design), Task::Dcache { design });
    }
    for proc in &space.processors {
        let dilation = eval.dilation_of(proc);
        for design in space.icache.enumerate() {
            push(
                &mut plan,
                MetricKey::icache(&app, design, dilation),
                Task::Icache { design, dilation },
            );
        }
        for design in space.ucache.enumerate() {
            push(
                &mut plan,
                MetricKey::ucache(&app, design, dilation),
                Task::Ucache { design, dilation },
            );
        }
    }
    plan
}

/// Computes one plan item, exactly as the corresponding batch walker
/// closure would.
///
/// # Errors
///
/// Propagates the walker-level [`MheError`] (e.g. a dilation outside the
/// pre-simulated space).
pub fn evaluate_item(eval: &ReferenceEvaluation, item: &WorkItem) -> Result<f64, MheError> {
    match &item.task {
        Task::ProcCycles { proc } => {
            let cfg = eval.config();
            let compiled = eval.compile_target(proc);
            Ok(processor_cycles(eval.program(), &compiled, cfg.seed, cfg.events) as f64)
        }
        Task::Icache { design, dilation } => eval.estimate_icache_misses(design.config, *dilation),
        Task::Dcache { design } => eval.dcache_misses(design.config).map(|m| m as f64),
        Task::Ucache { design, dilation } => eval.estimate_ucache_misses(design.config, *dilation),
    }
}

/// FNV-1a accumulator presented as a writer, so the key's canonical
/// cache-db encoding can be hashed without allocating.
struct FnvWriter(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl io::Write for FnvWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for &b in buf {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The shard a key belongs to: FNV-1a over the key's canonical byte
/// encoding, reduced modulo `shard_count`. Stable across processes,
/// platforms, and Rust versions — every fleet member partitions the key
/// space identically.
pub fn shard_of(key: &MetricKey, shard_count: u32) -> u32 {
    let mut h = FnvWriter(FNV_OFFSET);
    // Writing into the in-memory accumulator cannot fail.
    let _ = cache_db::write_key(&mut h, key);
    (h.0 % u64::from(shard_count.max(1))) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhe_cache::CacheConfig;

    fn key(bytes: u64) -> MetricKey {
        let app: Arc<str> = Arc::from("unepic");
        MetricKey::icache(
            &app,
            CacheDesign::single_ported(CacheConfig::from_bytes(bytes, 1, 32)),
            1.25,
        )
    }

    /// Golden pins: the shard partition is part of the fleet protocol.
    /// If these move, coordinator and workers from different builds
    /// would partition the space differently.
    #[test]
    fn shard_hash_is_pinned() {
        let app: Arc<str> = Arc::from("unepic");
        assert_eq!(shard_of(&key(1024), 32), 30);
        assert_eq!(shard_of(&key(4096), 32), 15);
        assert_eq!(shard_of(&MetricKey::proc_cycles(&app, "3221"), 32), 2);
        // Modulo 1 degenerates to a single shard; 0 is clamped to 1.
        assert_eq!(shard_of(&key(1024), 1), 0);
        assert_eq!(shard_of(&key(1024), 0), 0);
    }

    #[test]
    fn shard_is_stable_across_calls_and_spreads() {
        let spread: HashSet<u32> = (0..10).map(|i| shard_of(&key(1024 << i), 16)).collect();
        assert!(spread.len() > 3, "10 keys landed on {} shards", spread.len());
        for i in 0..10 {
            assert_eq!(shard_of(&key(1024 << i), 16), shard_of(&key(1024 << i), 16));
        }
    }
}
