//! Design-space exploration: the spacewalker.
//!
//! Reproduces the paper's exploration layer (Figure 4's `Walkers` /
//! `Pareto` / `EvaluationCache` stack):
//!
//! * [`space`] — design-space specifications and enumeration;
//! * [`cost`] — cache/memory area models;
//! * [`pareto`] — Pareto-frontier accumulation;
//! * [`cache_db`] — typed [`MetricKey`]s in a sharded concurrent store
//!   with versioned binary persistence;
//! * [`walker`] — instruction/data/unified/memory/system walkers built on
//!   the dilation-model evaluator from `mhe-core`, fanning per-design
//!   evaluation out over worker threads with a deterministic merge;
//! * [`service`] — the shared `Send + Sync` evaluation service (warm
//!   sessions, scope-shared caches, admission control) plus the daemon
//!   wire protocol, server loop, and client used by `mhe-server` and
//!   `spacewalker serve`/`connect`;
//! * [`fleet`] — the distributed walk: deterministic shard partition,
//!   coordinator with work-stealing leases and checkpointed merges, and
//!   the worker loop behind `spacewalker fleet`/`worker`.
//!
//! # Quick start
//!
//! ```no_run
//! use mhe_core::evaluator::EvalConfig;
//! use mhe_cache::Penalties;
//! use mhe_spacewalk::{cache_db::EvaluationCache, space::SystemSpace, walker};
//! use mhe_vliw::ProcessorKind;
//! use mhe_workload::Benchmark;
//!
//! let space = SystemSpace::paper_default();
//! let eval = walker::prepare_evaluation(
//!     Benchmark::Epic.generate(),
//!     &ProcessorKind::P1111.mdes(),
//!     EvalConfig::default(),
//!     &space,
//! );
//! let db = EvaluationCache::new();
//! let frontier = walker::walk_system(&eval, &space, Penalties::default(), &db)?;
//! for p in frontier.points() {
//!     println!("{}  cost={:.0}  cycles={:.0}", p.design.processor.name, p.cost, p.time);
//! }
//! # Ok::<(), mhe_core::MheError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache_db;
pub mod ckpt;
pub mod cost;
pub mod fleet;
pub mod heuristic;
pub mod pareto;
pub mod service;
pub mod space;
pub mod spec;
pub mod walker;

pub use cache_db::{dilation_millis, EvaluationCache, MetricKey};
pub use ckpt::Checkpointer;
pub use cost::{cache_area, CacheDesign};
pub use fleet::{
    run_worker, Coordinator, FleetConfig, FleetJob, FleetSummary, HaltHandle, PreparedWorker,
    WorkerOptions, WorkerOutcome,
};
pub use heuristic::{walk_heuristic, HeuristicResult};
pub use pareto::{ParetoPoint, ParetoSet};
pub use service::{
    client::{Client, ClientBuilder, ClientError, RetrySchedule},
    render_frontier, report_from,
    server::Server,
    AdmissionGate, EvalService, ServiceConfig, ServiceError, ServiceLimits,
};
pub use space::{CacheSpace, SystemSpace};
pub use walker::{walk_memory, walk_system, walk_system_with, MemoryPoint, SystemPoint};
