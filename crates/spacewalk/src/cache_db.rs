//! The evaluation cache: a typed, concurrent metric store with persistence.
//!
//! The paper's `EvaluationCache` "first looks in a persistent disk-based
//! database if a particular metric for a design is available; otherwise it
//! invokes the Evaluators layer". This module provides that contract for
//! *concurrent* walkers: metrics are keyed by a typed [`MetricKey`] (no
//! string formatting, no float-formatting collisions), stored in sharded
//! `Mutex<HashMap>`s so parallel design sweeps share one cache through
//! `&self`, and persisted in a versioned binary format that round-trips
//! every `f64` bit-exactly. A tab-separated text export remains for
//! debugging, but it is export-only: decimal formatting is lossy.
//!
//! # Dilation quantization
//!
//! Dilations are carried in keys as integer **millis** (`d * 1000`,
//! rounded), so `MetricKey` is `Eq + Hash + Ord` without touching float
//! bits. Two dilations within `0.5e-3` of each other coalesce to the same
//! key — the same contract the old `{:.3}` string keys had, now explicit.

use crate::cost::CacheDesign;
use mhe_cache::{CacheConfig, Policy};
use mhe_trace::integrity::{Crc32Reader, Crc32Writer};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Converts a dilation factor to the integer-millis form carried in keys.
///
/// # Panics
///
/// Panics if `d` is negative or not finite (a dilation is a text-size
/// ratio; there is no meaningful key for NaN).
pub fn dilation_millis(d: f64) -> u32 {
    assert!(d.is_finite() && d >= 0.0, "dilation must be finite and non-negative, got {d}");
    (d * 1000.0).round() as u32
}

/// A typed metric identity: *which number* about *which design* under
/// *which dilation* for *which application*.
///
/// The application name is part of the key so one persistent database can
/// serve several workloads without cross-contamination. `Arc<str>` makes
/// the per-design clones in walker hot loops a refcount bump.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MetricKey {
    /// Estimated instruction-cache misses of `design` at a dilation.
    IcacheMisses {
        /// Application (program) name.
        app: Arc<str>,
        /// The instruction-cache design.
        design: CacheDesign,
        /// Dilation in integer millis (see [`dilation_millis`]).
        dilation_millis: u32,
    },
    /// Measured data-cache misses of `design` (dilation-independent,
    /// Eq. 4.1).
    DcacheMisses {
        /// Application (program) name.
        app: Arc<str>,
        /// The data-cache design.
        design: CacheDesign,
    },
    /// Estimated unified-cache misses of `design` at a dilation.
    UcacheMisses {
        /// Application (program) name.
        app: Arc<str>,
        /// The unified-cache design.
        design: CacheDesign,
        /// Dilation in integer millis (see [`dilation_millis`]).
        dilation_millis: u32,
    },
    /// Dynamic compute cycles of a processor (no cache effects).
    ProcCycles {
        /// Application (program) name.
        app: Arc<str>,
        /// Processor (machine description) name.
        proc: Arc<str>,
    },
}

impl MetricKey {
    /// Instruction-cache misses key.
    pub fn icache(app: &Arc<str>, design: CacheDesign, d: f64) -> Self {
        MetricKey::IcacheMisses {
            app: Arc::clone(app),
            design,
            dilation_millis: dilation_millis(d),
        }
    }

    /// Data-cache misses key.
    pub fn dcache(app: &Arc<str>, design: CacheDesign) -> Self {
        MetricKey::DcacheMisses { app: Arc::clone(app), design }
    }

    /// Unified-cache misses key.
    pub fn ucache(app: &Arc<str>, design: CacheDesign, d: f64) -> Self {
        MetricKey::UcacheMisses {
            app: Arc::clone(app),
            design,
            dilation_millis: dilation_millis(d),
        }
    }

    /// Processor-cycles key.
    pub fn proc_cycles(app: &Arc<str>, proc: &str) -> Self {
        MetricKey::ProcCycles { app: Arc::clone(app), proc: Arc::from(proc) }
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricKey::IcacheMisses { app, design, dilation_millis } => {
                write!(f, "{app}/ic/{}/p{}/d{dilation_millis}m", design.config, design.ports)
            }
            MetricKey::DcacheMisses { app, design } => {
                write!(f, "{app}/dc/{}/p{}", design.config, design.ports)
            }
            MetricKey::UcacheMisses { app, design, dilation_millis } => {
                write!(f, "{app}/uc/{}/p{}/d{dilation_millis}m", design.config, design.ports)
            }
            MetricKey::ProcCycles { app, proc } => write!(f, "{app}/cycles/{proc}"),
        }
    }
}

/// Number of lock shards. Power of two; enough that eight walker threads
/// rarely contend on one mutex.
const SHARDS: usize = 16;

/// File magic for the binary database format.
const MAGIC: &[u8; 4] = b"MHEC";
/// Current binary format version. Version 2 appended a whole-file
/// CRC-32/IEEE footer (4 LE bytes over everything before it), so storage
/// corruption — a flipped bit, a torn write — surfaces as `InvalidData`
/// instead of silently loading plausible-but-wrong metrics. Version 3
/// adds the replacement policy to every serialized design (a policy tag
/// varint after `ports`, plus a seed varint for `random`); v2 files are
/// rejected with a clear message — delete and re-evaluate, the cache is
/// a memo, not a source of truth.
const VERSION: u8 = 3;

/// Sharded, concurrent memoization table for design metrics.
///
/// All operations take `&self`: walkers running on a [`ParallelSweep`]
/// share one cache without cloning or locking the whole table. Lookups
/// lock only the shard owning the key; computations run *outside* any
/// lock, so a slow evaluation never blocks unrelated designs. If two
/// threads race to compute the same key, the first insert wins and both
/// observe the same value (evaluations are deterministic, so the loser's
/// result is identical anyway).
///
/// [`ParallelSweep`]: mhe_core::ParallelSweep
#[derive(Debug)]
pub struct EvaluationCache {
    shards: Vec<Mutex<HashMap<MetricKey, f64>>>,
    hits: AtomicU64,
    computes: AtomicU64,
}

impl Default for EvaluationCache {
    /// Same as [`EvaluationCache::new`]: the derived `Default` would
    /// produce a shard-less cache that panics on first access.
    fn default() -> Self {
        EvaluationCache::new()
    }
}

impl EvaluationCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            computes: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &MetricKey) -> &Mutex<HashMap<MetricKey, f64>> {
        use std::hash::{Hash, Hasher};
        // DefaultHasher::new() is deterministic (fixed keys), so the shard
        // assignment — and with it the lock pattern — is reproducible.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks up a metric, computing and recording it on a miss.
    ///
    /// The computation runs outside the shard lock.
    pub fn get_or_insert_with(&self, key: MetricKey, compute: impl FnOnce() -> f64) -> f64 {
        match self.get_or_try_insert_with(key, || Ok::<f64, std::convert::Infallible>(compute())) {
            Ok(v) => v,
        }
    }

    /// Fallible variant of [`get_or_insert_with`]: a failed computation
    /// stores nothing and the error propagates to the caller.
    ///
    /// [`get_or_insert_with`]: EvaluationCache::get_or_insert_with
    ///
    /// # Errors
    ///
    /// Returns whatever `compute` returns.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: MetricKey,
        compute: impl FnOnce() -> Result<f64, E>,
    ) -> Result<f64, E> {
        let shard = self.shard(&key);
        if let Some(&v) = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner).get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            mhe_obs::count(mhe_obs::Counter::DbHit, 1);
            return Ok(v);
        }
        let v = compute()?;
        self.computes.fetch_add(1, Ordering::Relaxed);
        mhe_obs::count(mhe_obs::Counter::DbMiss, 1);
        // First writer wins: racing threads computed the same deterministic
        // value, so returning the incumbent keeps every observer agreeing.
        Ok(*shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner).entry(key).or_insert(v))
    }

    /// Looks up a metric without computing.
    pub fn get(&self, key: &MetricKey) -> Option<f64> {
        self.shard(key).lock().unwrap_or_else(std::sync::PoisonError::into_inner).get(key).copied()
    }

    /// Records a metric unconditionally.
    pub fn insert(&self, key: MetricKey, value: f64) {
        self.shard(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, value);
    }

    /// Number of stored metrics.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, computes)` counters for the `get_or_*` lookups. A freshly
    /// loaded database starts at `(0, 0)`: the counters describe this
    /// process's lookup behaviour, not the file's history.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.computes.load(Ordering::Relaxed))
    }

    /// All entries, sorted by key — the canonical order used by both
    /// persistence forms.
    pub fn entries(&self) -> Vec<(MetricKey, f64)> {
        let mut out: Vec<(MetricKey, f64)> = Vec::with_capacity(self.len());
        for s in &self.shards {
            out.extend(
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .iter()
                    .map(|(k, v)| (k.clone(), *v)),
            );
        }
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Saves the database in the versioned binary format, **atomically**.
    ///
    /// Layout: `b"MHEC"`, a version byte, a varint entry count, sorted
    /// entries, then a CRC-32/IEEE footer (4 LE bytes) over everything
    /// before it. Each entry is a tag byte, the key fields (strings as
    /// varint length + UTF-8 bytes, geometry/ports/millis as varints) and
    /// the value as its `f64::to_bits` in 8 little-endian bytes —
    /// bit-exact by construction.
    ///
    /// The write is crash-safe: the bytes land in a `*.tmp` sibling,
    /// which is fsynced and then renamed over `path` (with the parent
    /// directory fsynced after the rename). A process killed at any
    /// instant leaves either the complete old file or the complete new
    /// file — never a torn mix.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let _obs = mhe_obs::span(mhe_obs::Phase::Db);
        let path = path.as_ref();
        let tmp = tmp_sibling(path);
        let file = std::fs::File::create(&tmp)?;
        let mut w = Crc32Writer::new(io::BufWriter::new(file));
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION])?;
        let entries = self.entries();
        write_varint(&mut w, entries.len() as u64)?;
        for (key, value) in &entries {
            write_key(&mut w, key)?;
            w.write_all(&value.to_bits().to_le_bytes())?;
        }
        // The footer goes through the inner writer so it stays outside
        // its own digest.
        let crc = w.digest();
        let mut buf = w.into_inner();
        buf.write_all(&crc.to_le_bytes())?;
        let file = buf.into_inner().map_err(|e| e.into_error())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        // Persist the rename itself: fsync the parent directory.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Ok(dir) = std::fs::File::open(parent) {
                dir.sync_all().ok();
            }
        }
        mhe_obs::add_events(mhe_obs::Phase::Db, entries.len() as u64);
        if let Ok(meta) = std::fs::metadata(path) {
            mhe_obs::add_bytes(mhe_obs::Phase::Db, meta.len());
            mhe_obs::count(mhe_obs::Counter::DbPersistBytes, meta.len());
        }
        Ok(())
    }

    /// Loads a database written by [`EvaluationCache::save`].
    ///
    /// The hit/compute counters start at zero (see
    /// [`stats`](EvaluationCache::stats)).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a bad magic, unsupported version, truncated
    /// entry, CRC mismatch, or trailing bytes produce
    /// [`std::io::ErrorKind::InvalidData`]. Every error names `path`.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let _obs = mhe_obs::span(mhe_obs::Phase::Db);
        let path = path.as_ref();
        let file = std::fs::File::open(path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        if let Ok(meta) = file.metadata() {
            mhe_obs::add_bytes(mhe_obs::Phase::Db, meta.len());
        }
        let mut r = Crc32Reader::new(io::BufReader::new(file));
        Self::load_from(&mut r)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))
    }

    /// The body of [`EvaluationCache::load`], path-agnostic so the caller
    /// can attach file context to every error in one place.
    fn load_from<R: Read>(r: &mut Crc32Reader<R>) -> io::Result<Self> {
        let mut header = [0u8; 5];
        r.read_exact(&mut header)?;
        if &header[..4] != MAGIC {
            return Err(bad_data("not an MHEC evaluation database"));
        }
        if header[4] != VERSION {
            return Err(bad_data(format!(
                "unsupported database version {} (expected {VERSION})",
                header[4]
            )));
        }
        let cache = Self::new();
        let count = read_varint(r)?;
        mhe_obs::add_events(mhe_obs::Phase::Db, count);
        for i in 0..count {
            let entry = (|| -> io::Result<(MetricKey, f64)> {
                let key = read_key(r)?;
                let mut bits = [0u8; 8];
                r.read_exact(&mut bits)?;
                Ok((key, f64::from_bits(u64::from_le_bytes(bits))))
            })()
            .map_err(|e| io::Error::new(e.kind(), format!("entry {i} of {count}: {e}")))?;
            cache.insert(entry.0, entry.1);
        }
        // Footer: CRC over everything read so far, then exact EOF. Read
        // it through the inner reader so it stays outside the digest.
        let computed = r.digest();
        let inner = r.get_mut();
        let mut footer = [0u8; 4];
        inner
            .read_exact(&mut footer)
            .map_err(|e| io::Error::new(e.kind(), format!("file CRC footer: {e}")))?;
        let stored = u32::from_le_bytes(footer);
        if stored != computed {
            return Err(bad_data(format!(
                "file CRC mismatch (stored {stored:08x}, computed {computed:08x}): \
                 the database is corrupt"
            )));
        }
        if inner.read(&mut [0u8; 1])? != 0 {
            return Err(bad_data("trailing bytes after CRC footer"));
        }
        Ok(cache)
    }

    /// Writes a human-readable tab-separated listing: one
    /// `key<TAB>value<TAB>hex-bits` line per entry, sorted. Export-only —
    /// the decimal rendering is for eyes, the binary format is the one
    /// that round-trips.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn export_text(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        for (key, value) in self.entries() {
            writeln!(w, "{key}\t{value}\t{:016x}", value.to_bits())?;
        }
        w.flush()
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The `*.tmp` sibling a crash-safe save stages its bytes in.
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

// --- LEB128 varints, in the mhe-trace codec style -----------------------

fn write_varint(w: &mut impl Write, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(bad_data("varint overflows u64"));
        }
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_varint(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn read_str(r: &mut impl Read) -> io::Result<Arc<str>> {
    let len = read_varint(r)?;
    if len > 1 << 20 {
        return Err(bad_data(format!("string length {len} implausibly large")));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map(Arc::from).map_err(|e| bad_data(format!("bad UTF-8: {e}")))
}

/// Policy wire tags (v3). Append-only: new policies get new tags.
const POLICY_LRU: u64 = 0;
const POLICY_FIFO: u64 = 1;
const POLICY_PLRU: u64 = 2;
const POLICY_RANDOM: u64 = 3;

fn write_design(w: &mut impl Write, d: &CacheDesign) -> io::Result<()> {
    write_varint(w, u64::from(d.config.sets))?;
    write_varint(w, u64::from(d.config.assoc))?;
    write_varint(w, u64::from(d.config.line_words))?;
    write_varint(w, u64::from(d.ports))?;
    match d.config.policy {
        Policy::Lru => write_varint(w, POLICY_LRU),
        Policy::Fifo => write_varint(w, POLICY_FIFO),
        Policy::PlruTree => write_varint(w, POLICY_PLRU),
        Policy::Random(seed) => {
            write_varint(w, POLICY_RANDOM)?;
            write_varint(w, seed)
        }
    }
}

fn read_design(r: &mut impl Read) -> io::Result<CacheDesign> {
    let sets = read_u32(r)?;
    let assoc = read_u32(r)?;
    let line_words = read_u32(r)?;
    let ports = read_u32(r)?;
    // Validate here rather than let `CacheConfig::new` assert: a corrupted
    // file must surface as `InvalidData`, never a panic.
    if !sets.is_power_of_two() || !line_words.is_power_of_two() || assoc == 0 {
        return Err(bad_data(format!(
            "infeasible cache geometry in database: sets={sets} assoc={assoc} \
             line_words={line_words}"
        )));
    }
    let policy = match read_varint(r)? {
        POLICY_LRU => Policy::Lru,
        POLICY_FIFO => Policy::Fifo,
        POLICY_PLRU => Policy::PlruTree,
        POLICY_RANDOM => Policy::Random(read_varint(r)?),
        other => return Err(bad_data(format!("unknown replacement-policy tag {other}"))),
    };
    Ok(CacheDesign { config: CacheConfig::new(sets, assoc, line_words).with_policy(policy), ports })
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    u32::try_from(read_varint(r)?).map_err(|_| bad_data("field overflows u32"))
}

const TAG_ICACHE: u8 = 0;
const TAG_DCACHE: u8 = 1;
const TAG_UCACHE: u8 = 2;
const TAG_PROC: u8 = 3;

pub(crate) fn write_key(w: &mut impl Write, key: &MetricKey) -> io::Result<()> {
    match key {
        MetricKey::IcacheMisses { app, design, dilation_millis } => {
            w.write_all(&[TAG_ICACHE])?;
            write_str(w, app)?;
            write_design(w, design)?;
            write_varint(w, u64::from(*dilation_millis))
        }
        MetricKey::DcacheMisses { app, design } => {
            w.write_all(&[TAG_DCACHE])?;
            write_str(w, app)?;
            write_design(w, design)
        }
        MetricKey::UcacheMisses { app, design, dilation_millis } => {
            w.write_all(&[TAG_UCACHE])?;
            write_str(w, app)?;
            write_design(w, design)?;
            write_varint(w, u64::from(*dilation_millis))
        }
        MetricKey::ProcCycles { app, proc } => {
            w.write_all(&[TAG_PROC])?;
            write_str(w, app)?;
            write_str(w, proc)
        }
    }
}

pub(crate) fn read_key(r: &mut impl Read) -> io::Result<MetricKey> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    match tag[0] {
        TAG_ICACHE => Ok(MetricKey::IcacheMisses {
            app: read_str(r)?,
            design: read_design(r)?,
            dilation_millis: read_u32(r)?,
        }),
        TAG_DCACHE => Ok(MetricKey::DcacheMisses { app: read_str(r)?, design: read_design(r)? }),
        TAG_UCACHE => Ok(MetricKey::UcacheMisses {
            app: read_str(r)?,
            design: read_design(r)?,
            dilation_millis: read_u32(r)?,
        }),
        TAG_PROC => Ok(MetricKey::ProcCycles { app: read_str(r)?, proc: read_str(r)? }),
        other => Err(bad_data(format!("unknown metric tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> Arc<str> {
        Arc::from("unepic")
    }

    fn design(bytes: u64) -> CacheDesign {
        CacheDesign::single_ported(CacheConfig::from_bytes(bytes, 1, 32))
    }

    #[test]
    fn memoization_computes_once() {
        let c = EvaluationCache::new();
        let key = MetricKey::icache(&app(), design(1024), 1.4);
        let mut calls = 0;
        for _ in 0..5 {
            let v = c.get_or_insert_with(key.clone(), || {
                calls += 1;
                42.0
            });
            assert_eq!(v, 42.0);
        }
        assert_eq!(calls, 1);
        assert_eq!(c.stats(), (4, 1));
    }

    #[test]
    fn dilation_quantizes_to_millis() {
        // Within half a milli -> same key; the old float-formatted string
        // keys had the same coalescing, now it is explicit.
        let a = MetricKey::icache(&app(), design(1024), 1.4);
        let b = MetricKey::icache(&app(), design(1024), 1.4002);
        let c = MetricKey::icache(&app(), design(1024), 1.41);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(dilation_millis(1.0), 1000);
    }

    #[test]
    fn failed_computations_store_nothing() {
        let c = EvaluationCache::new();
        let key = MetricKey::dcache(&app(), design(1024));
        let r: Result<f64, &str> = c.get_or_try_insert_with(key.clone(), || Err("boom"));
        assert_eq!(r, Err("boom"));
        assert_eq!(c.get(&key), None);
        let v: Result<f64, &str> = c.get_or_try_insert_with(key.clone(), || Ok(7.0));
        assert_eq!(v, Ok(7.0));
        assert_eq!(c.get(&key), Some(7.0));
    }

    #[test]
    fn concurrent_inserts_agree() {
        let c = EvaluationCache::new();
        let keys: Vec<MetricKey> = (0..200)
            .map(|i| MetricKey::icache(&app(), design(1024 << (i % 4)), 1.0 + i as f64 / 100.0))
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for (i, k) in keys.iter().enumerate() {
                        let v = c.get_or_insert_with(k.clone(), || i as f64);
                        assert_eq!(v, i as f64);
                    }
                });
            }
        });
        let distinct: std::collections::HashSet<&MetricKey> = keys.iter().collect();
        assert_eq!(c.len(), distinct.len());
    }

    #[test]
    fn binary_roundtrip_is_bit_exact() {
        let c = EvaluationCache::new();
        c.insert(MetricKey::icache(&app(), design(1024), 1.333), 0.1 + 0.2); // not representable tidily
        c.insert(MetricKey::dcache(&app(), design(4096)), -3.25e10);
        c.insert(MetricKey::ucache(&app(), design(16 * 1024), 4.0), f64::MIN_POSITIVE);
        c.insert(MetricKey::proc_cycles(&app(), "3221"), 123456789.0);
        let path =
            std::env::temp_dir().join(format!("mhe_cache_db_rt_{}.mhec", std::process::id()));
        c.save(&path).unwrap();
        let loaded = EvaluationCache::load(&path).unwrap();
        let (a, b) = (c.entries(), loaded.entries());
        assert_eq!(a.len(), b.len());
        for ((ka, va), (kb, vb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits());
        }
        assert_eq!(loaded.stats(), (0, 0), "loaded counters must reset");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn policies_roundtrip_and_key_distinct_designs() {
        let base = CacheConfig::from_bytes(1024, 2, 32);
        let c = EvaluationCache::new();
        for (i, p) in Policy::all().into_iter().enumerate() {
            let d = CacheDesign::single_ported(base.with_policy(p));
            c.insert(MetricKey::icache(&app(), d, 1.5), i as f64);
        }
        // Distinct-seed randoms are distinct designs too.
        let r7 = CacheDesign::single_ported(base.with_policy(Policy::Random(7)));
        c.insert(MetricKey::icache(&app(), r7, 1.5), 99.0);
        assert_eq!(c.len(), Policy::all().len() + 1);
        let path =
            std::env::temp_dir().join(format!("mhe_cache_db_pol_{}.mhec", std::process::id()));
        c.save(&path).unwrap();
        let loaded = EvaluationCache::load(&path).unwrap();
        assert_eq!(loaded.entries(), c.entries());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir();
        let bad_magic = dir.join(format!("mhe_cache_db_badmagic_{}.mhec", std::process::id()));
        std::fs::write(&bad_magic, b"NOPE\x01").unwrap();
        assert_eq!(
            EvaluationCache::load(&bad_magic).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        std::fs::remove_file(&bad_magic).ok();

        let bad_version = dir.join(format!("mhe_cache_db_badver_{}.mhec", std::process::id()));
        std::fs::write(&bad_version, b"MHEC\xff").unwrap();
        assert_eq!(
            EvaluationCache::load(&bad_version).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        std::fs::remove_file(&bad_version).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_tmp_file() {
        let c = EvaluationCache::new();
        c.insert(MetricKey::dcache(&app(), design(1024)), 1.0);
        let path =
            std::env::temp_dir().join(format!("mhe_cache_db_atomic_{}.mhec", std::process::id()));
        c.save(&path).unwrap();
        assert!(!tmp_sibling(&path).exists(), "staging file must be renamed away");
        // Overwriting an existing database is also atomic.
        c.insert(MetricKey::dcache(&app(), design(2048)), 2.0);
        c.save(&path).unwrap();
        assert_eq!(EvaluationCache::load(&path).unwrap().len(), 2);
        assert!(!tmp_sibling(&path).exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn any_single_byte_corruption_is_detected() {
        let c = EvaluationCache::new();
        c.insert(MetricKey::icache(&app(), design(1024), 1.25), 42.5);
        c.insert(MetricKey::proc_cycles(&app(), "3221"), 1e9);
        let path =
            std::env::temp_dir().join(format!("mhe_cache_db_flip_{}.mhec", std::process::id()));
        c.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();
        for pos in 0..good.len() {
            let mut bad = good.clone();
            bad[pos] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            // A flip in a length field may surface as UnexpectedEof instead of
            // InvalidData; either way the load must fail and name the file.
            let err = EvaluationCache::load(&path)
                .expect_err(&format!("flip at byte {pos} must not load"));
            assert!(
                err.to_string().contains("mhe_cache_db_flip"),
                "byte {pos}: error must name the file, got {err}"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncation_is_detected_and_errors_name_the_path() {
        let c = EvaluationCache::new();
        c.insert(MetricKey::ucache(&app(), design(8192), 2.0), 7.0);
        let path =
            std::env::temp_dir().join(format!("mhe_cache_db_trunc_{}.mhec", std::process::id()));
        c.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();
        for cut in 0..good.len() {
            std::fs::write(&path, &good[..cut]).unwrap();
            let err = EvaluationCache::load(&path)
                .expect_err(&format!("cut at byte {cut} must not load"));
            assert!(
                err.to_string().contains("mhe_cache_db_trunc"),
                "cut {cut}: error must name the file, got {err}"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_export_is_sorted_and_carries_bits() {
        let c = EvaluationCache::new();
        c.insert(MetricKey::proc_cycles(&app(), "6332"), 2.0);
        c.insert(MetricKey::dcache(&app(), design(1024)), 1.5);
        let path =
            std::env::temp_dir().join(format!("mhe_cache_db_txt_{}.tsv", std::process::id()));
        c.export_text(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("/dc/"), "keys sort dcache before proc: {lines:?}");
        assert!(lines[0].ends_with(&format!("{:016x}", 1.5f64.to_bits())));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_cache_reports_empty() {
        let c = EvaluationCache::new();
        assert!(c.is_empty());
        assert_eq!(c.get(&MetricKey::dcache(&app(), design(1024))), None);
    }
}
