//! The evaluation cache: memoized metrics with optional persistence.
//!
//! The paper's `EvaluationCache` "first looks in a persistent disk-based
//! database if a particular metric for a design is available; otherwise it
//! invokes the Evaluators layer". This module provides the same contract
//! with a small tab-separated text file as the persistent form.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::Path;

/// Memoization table for design metrics, keyed by caller-chosen strings
/// (e.g. `"085.gcc/IC(S=32,A=1,L=32B)/d=1.40/misses"`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvaluationCache {
    entries: HashMap<String, f64>,
    hits: u64,
    misses: u64,
}

impl EvaluationCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a metric, computing and recording it on a miss.
    pub fn get_or_insert_with(&mut self, key: &str, compute: impl FnOnce() -> f64) -> f64 {
        if let Some(&v) = self.entries.get(key) {
            self.hits += 1;
            return v;
        }
        self.misses += 1;
        let v = compute();
        self.entries.insert(key.to_string(), v);
        v
    }

    /// Looks up a metric without computing.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.entries.get(key).copied()
    }

    /// Records a metric unconditionally.
    pub fn insert(&mut self, key: impl Into<String>, value: f64) {
        self.entries.insert(key.into(), value);
    }

    /// Number of stored metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters for `get_or_insert_with`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Saves to a tab-separated text file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut keys: Vec<&String> = self.entries.keys().collect();
        keys.sort_unstable();
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        for k in keys {
            writeln!(f, "{k}\t{}", self.entries[k])?;
        }
        Ok(())
    }

    /// Loads from a file written by [`EvaluationCache::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed lines produce
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut entries = HashMap::new();
        for line in f.lines() {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            let (k, v) = line.rsplit_once('\t').ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad line: {line}"))
            })?;
            let value: f64 = v.parse().map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad value: {e}"))
            })?;
            entries.insert(k.to_string(), value);
        }
        Ok(Self { entries, hits: 0, misses: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_computes_once() {
        let mut c = EvaluationCache::new();
        let mut calls = 0;
        for _ in 0..5 {
            let v = c.get_or_insert_with("k", || {
                calls += 1;
                42.0
            });
            assert_eq!(v, 42.0);
        }
        assert_eq!(calls, 1);
        assert_eq!(c.stats(), (4, 1));
    }

    #[test]
    fn save_load_roundtrip() {
        let mut c = EvaluationCache::new();
        c.insert("a/b/c", 1.5);
        c.insert("with spaces in key", -3.25e10);
        let path = std::env::temp_dir().join("mhe_eval_cache_test.tsv");
        c.save(&path).unwrap();
        let loaded = EvaluationCache::load(&path).unwrap();
        assert_eq!(loaded.get("a/b/c"), Some(1.5));
        assert_eq!(loaded.get("with spaces in key"), Some(-3.25e10));
        assert_eq!(loaded.len(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("mhe_eval_cache_bad.tsv");
        std::fs::write(&path, "no-tab-here\n").unwrap();
        assert!(EvaluationCache::load(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_cache_reports_empty() {
        let c = EvaluationCache::new();
        assert!(c.is_empty());
        assert_eq!(c.get("nothing"), None);
    }
}
