//! `spacewalker` — non-interactive design-space exploration from a
//! specification file.
//!
//! The command-line face of the system (the paper's spacewalker executable
//! driven by a `DesignSpaceSpec`):
//!
//! ```console
//! $ spacewalker SPEC.txt [--db CACHE.mhec] [--export CACHE.tsv] [--heuristic]
//!               [--policy LIST] [--sample N[:clusters=K,warmup=W]]
//!               [--checkpoint DIR] [--resume DIR] [--obs|--obs-json]
//! $ spacewalker --serve ADDR
//! $ spacewalker SPEC.txt --connect ADDR [--heuristic] [--policy LIST] [--sample ...]
//! ```
//!
//! Reads the design-space specification, runs the reference evaluation once
//! (the only simulation), walks the processor × memory space with the
//! dilation model, and prints the cost/performance Pareto frontier. With
//! `--db` the evaluation cache persists across runs in the versioned
//! binary format (bit-exact round-trip); `--export` additionally writes a
//! human-readable text listing; with `--heuristic` the per-cache walks use
//! neighbourhood ascent instead of exhaustion; `--policy lru,fifo,plru,
//! random:7` overrides the replacement-policy dimension of every cache
//! space in the spec (the spec's own `policies =` keys are the per-cache
//! way to say the same thing). `--sample N` routes the reference
//! evaluation through interval sampling — intervals of `N` accesses,
//! optionally `:clusters=K,warmup=W` to override the representative
//! count and warm-up prefix — and the frontier output records the
//! sampled-vs-exact provenance (a `# provenance:` header naming the
//! coverage, plus a `src` column on every row). `--obs` / `--obs-json`
//! (or the `MHE_OBS` variable) emit a run report to stderr — phase
//! timings, throughput, parallel efficiency, and cache-database traffic —
//! as text or line-JSON.
//!
//! # Daemon mode
//!
//! `--serve ADDR` turns the process into a sweep daemon on `ADDR` (the
//! same service `mhe-server` runs, minus its extra flags): warm
//! [`EvalService`] sessions, bounded admission, graceful SIGTERM drain.
//! `--connect ADDR` sends the walk to such a daemon instead of evaluating
//! in-process and prints the served frontier — byte-identical to what the
//! batch mode would print, because both sides render the same
//! [`report`](mhe_spacewalk::report_from) with the same
//! [`renderer`](mhe_spacewalk::render_frontier). Batch-only flags
//! (`--db`, `--export`, `--checkpoint`, `--resume`) are rejected in
//! connect mode: persistence belongs to the daemon's side of the socket.
//!
//! # Fault tolerance
//!
//! `--checkpoint DIR` persists the evaluation cache atomically into `DIR`
//! after every processor's memory walk; `--resume DIR` additionally
//! reloads the checkpoint first, so a killed run fast-forwards through
//! already-evaluated designs and produces a frontier bit-identical to an
//! uninterrupted run. Failures exit with a one-line message and a typed
//! status: **2** bad configuration (usage, unreadable or malformed spec),
//! **3** corrupt input (cache database or checkpoint fails its CRC),
//! **4** worker failure (a panic isolated inside the parallel walk, or a
//! failed checkpoint write), **5** server unavailable (`--connect` could
//! not reach the daemon, or the daemon rejected the request at
//! admission).

use mhe_core::evaluator::EvalConfig;
use mhe_core::{
    SamplingConfig, EXIT_BAD_CONFIG, EXIT_CORRUPT_INPUT, EXIT_SERVER_UNAVAILABLE,
    EXIT_WORKER_FAILURE,
};
use mhe_spacewalk::cache_db::{EvaluationCache, MetricKey};
use mhe_spacewalk::ckpt::Checkpointer;
use mhe_spacewalk::heuristic::walk_heuristic;
use mhe_spacewalk::service::proto::FrontierRequest;
use mhe_spacewalk::spec::Spec;
use mhe_spacewalk::{render_frontier, report_from, walker, Client, EvalService, Server};
use mhe_vliw::ProcessorKind;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: spacewalker SPEC.txt [--db CACHE.mhec] [--export CACHE.tsv] \
     [--heuristic] [--policy LIST] [--sample N[:clusters=K,warmup=W]] [--checkpoint DIR] \
     [--resume DIR] [--connect ADDR] [--obs|--obs-json]\n       spacewalker --serve ADDR";

/// Parses `N[:clusters=K,warmup=W]` into a [`SamplingConfig`] (defaults
/// fill the unnamed fields).
fn parse_sample(arg: &str) -> Result<SamplingConfig, String> {
    let (n, opts) = match arg.split_once(':') {
        Some((n, opts)) => (n, Some(opts)),
        None => (arg, None),
    };
    let interval_accesses: usize = n.parse().map_err(|e| format!("interval size {n:?}: {e}"))?;
    let mut cfg = SamplingConfig { interval_accesses, ..SamplingConfig::default() };
    for pair in opts.iter().flat_map(|o| o.split(',')).filter(|p| !p.is_empty()) {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!("expected key=value, got {pair:?}"));
        };
        match key {
            "clusters" => {
                cfg.clusters = value.parse().map_err(|e| format!("clusters {value:?}: {e}"))?;
            }
            "warmup" => {
                cfg.warmup = value.parse().map_err(|e| format!("warmup {value:?}: {e}"))?;
            }
            other => return Err(format!("unknown option {other:?} (clusters, warmup)")),
        }
    }
    cfg.validate().map_err(|(field, req)| format!("{field} {req}"))?;
    Ok(cfg)
}

/// Prints a one-line diagnostic and returns the given exit status.
fn fail(code: u8, msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("spacewalker: {msg}");
    ExitCode::from(code)
}

/// Runs the sweep daemon on `addr` until a drain signal, exactly like
/// `mhe-server` with default flags.
fn serve(addr: &str) -> ExitCode {
    let service = Arc::new(EvalService::default());
    let server = match Server::bind(addr, service) {
        Ok(s) => s,
        Err(e) => return fail(EXIT_SERVER_UNAVAILABLE, format!("cannot bind {addr}: {e}")),
    };
    server.install_signal_drain();
    match server.local_addr() {
        Ok(a) => eprintln!("spacewalker: serving on {a} (SIGTERM drains)"),
        Err(e) => return fail(EXIT_SERVER_UNAVAILABLE, format!("local addr: {e}")),
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(EXIT_WORKER_FAILURE, format!("serve loop: {e}")),
    }
}

/// Sends the walk to a daemon and prints the served frontier — the same
/// bytes the batch path prints for the same spec.
fn connect(
    addr: &str,
    spec_text: String,
    heuristic: bool,
    sampling: Option<SamplingConfig>,
    policies: Option<Vec<mhe_cache::Policy>>,
) -> ExitCode {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => return fail(e.exit_code(), e),
    };
    let report = match client.frontier(FrontierRequest { spec_text, heuristic, sampling, policies })
    {
        Ok(r) => r,
        Err(e) => return fail(e.exit_code(), e),
    };
    print!("{}", render_frontier(&report));
    eprintln!(
        "{} frontier designs; evaluation cache {} hits / {} computes",
        report.rows.len(),
        report.hits,
        report.computes
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec_path = None;
    let mut db_path: Option<String> = None;
    let mut export_path: Option<String> = None;
    let mut ckpt_dir: Option<String> = None;
    let mut resume = false;
    let mut heuristic = false;
    let mut policies: Option<Vec<mhe_cache::Policy>> = None;
    let mut sampling: Option<SamplingConfig> = None;
    let mut serve_addr: Option<String> = None;
    let mut connect_addr: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--db" => {
                i += 1;
                db_path = args.get(i).cloned();
                if db_path.is_none() {
                    return fail(EXIT_BAD_CONFIG, "--db needs a path");
                }
            }
            "--export" => {
                i += 1;
                export_path = args.get(i).cloned();
                if export_path.is_none() {
                    return fail(EXIT_BAD_CONFIG, "--export needs a path");
                }
            }
            "--checkpoint" | "--resume" => {
                resume |= args[i] == "--resume";
                i += 1;
                let dir = args.get(i).cloned();
                let Some(dir) = dir else {
                    return fail(EXIT_BAD_CONFIG, format!("{} needs a directory", args[i - 1]));
                };
                if let Some(prev) = &ckpt_dir {
                    if *prev != dir {
                        return fail(
                            EXIT_BAD_CONFIG,
                            "--checkpoint and --resume name different directories",
                        );
                    }
                }
                ckpt_dir = Some(dir);
            }
            "--policy" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--policy needs a comma-separated list");
                };
                let mut parsed = Vec::new();
                for token in list.split(',').filter(|t| !t.is_empty()) {
                    match token.parse::<mhe_cache::Policy>() {
                        Ok(p) => parsed.push(p),
                        Err(e) => return fail(EXIT_BAD_CONFIG, format!("--policy {token:?}: {e}")),
                    }
                }
                if parsed.is_empty() {
                    return fail(EXIT_BAD_CONFIG, "--policy needs at least one policy");
                }
                policies = Some(parsed);
            }
            "--sample" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--sample needs N[:clusters=K,warmup=W]");
                };
                match parse_sample(v) {
                    Ok(s) => sampling = Some(s),
                    Err(e) => return fail(EXIT_BAD_CONFIG, format!("--sample {v:?}: {e}")),
                }
            }
            "--serve" => {
                i += 1;
                serve_addr = args.get(i).cloned();
                if serve_addr.is_none() {
                    return fail(EXIT_BAD_CONFIG, "--serve needs an address (e.g. 127.0.0.1:7199)");
                }
            }
            "--connect" => {
                i += 1;
                connect_addr = args.get(i).cloned();
                if connect_addr.is_none() {
                    return fail(EXIT_BAD_CONFIG, "--connect needs an address");
                }
            }
            "--heuristic" => heuristic = true,
            "--obs" => mhe_obs::set_level(mhe_obs::ObsLevel::Text),
            "--obs-json" => mhe_obs::set_level(mhe_obs::ObsLevel::Json),
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                if spec_path.replace(other.to_string()).is_some() {
                    return fail(EXIT_BAD_CONFIG, format!("unexpected extra argument {other:?}"));
                }
            }
        }
        i += 1;
    }

    if let Some(addr) = serve_addr {
        if spec_path.is_some() || connect_addr.is_some() {
            return fail(EXIT_BAD_CONFIG, "--serve takes no spec and no --connect");
        }
        return serve(&addr);
    }

    let Some(spec_path) = spec_path else {
        return fail(EXIT_BAD_CONFIG, USAGE);
    };

    let text = match std::fs::read_to_string(&spec_path) {
        Ok(t) => t,
        Err(e) => return fail(EXIT_BAD_CONFIG, format!("cannot read {spec_path}: {e}")),
    };
    let mut spec = match Spec::parse(&text) {
        Ok(s) => s,
        Err(e) => return fail(EXIT_BAD_CONFIG, format!("{spec_path}: {e}")),
    };
    if let Some(p) = &policies {
        spec.space.icache.policies.clone_from(p);
        spec.space.dcache.policies.clone_from(p);
        spec.space.ucache.policies.clone_from(p);
    }
    let spec = spec;

    eprintln!(
        "benchmark {} | {} processors x {} I$ x {} D$ x {} U$ = {} systems",
        spec.benchmark,
        spec.space.processors.len(),
        spec.space.icache.enumerate().len(),
        spec.space.dcache.enumerate().len(),
        spec.space.ucache.enumerate().len(),
        spec.space.combinations()
    );

    if let Some(addr) = connect_addr {
        if db_path.is_some() || export_path.is_some() || ckpt_dir.is_some() {
            return fail(
                EXIT_BAD_CONFIG,
                "--connect is incompatible with --db/--export/--checkpoint/--resume \
                 (persistence lives on the daemon's side)",
            );
        }
        return connect(&addr, text, heuristic, sampling, policies);
    }

    let checkpoint = match ckpt_dir {
        Some(dir) => match Checkpointer::new(&dir) {
            Ok(c) => Some(c),
            Err(e) => return fail(EXIT_BAD_CONFIG, e),
        },
        None => None,
    };

    let db = if resume {
        // `checkpoint` is always bound when `resume` is set.
        match checkpoint.as_ref().map(Checkpointer::load) {
            Some(Ok(db)) => {
                eprintln!("resumed {} cached metrics from checkpoint", db.len());
                db
            }
            Some(Err(e)) => return fail(EXIT_CORRUPT_INPUT, e),
            None => EvaluationCache::new(),
        }
    } else {
        match &db_path {
            Some(p) if std::path::Path::new(p).exists() => match EvaluationCache::load(p) {
                Ok(db) => {
                    eprintln!("loaded {} cached metrics from {p}", db.len());
                    db
                }
                Err(e) => return fail(EXIT_CORRUPT_INPUT, e),
            },
            _ => EvaluationCache::new(),
        }
    };

    eprintln!("building reference evaluation (the only simulation step)...");
    let eval = walker::prepare_evaluation(
        spec.benchmark.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: spec.events, sampling, ..EvalConfig::default() },
        &spec.space,
    );

    if heuristic {
        // Demonstrate the pruning on the instruction-cache walk at each
        // processor's dilation. The heuristic shares the system cache, so
        // every design it touches pre-warms the full walk below.
        let app: Arc<str> = Arc::from(eval.program().name.as_str());
        for proc in &spec.space.processors {
            let d = eval.dilation_of(proc);
            let r = walk_heuristic(
                &spec.space.icache,
                &db,
                eval.config().worker_threads(),
                |design| MetricKey::icache(&app, design, d),
                |design| eval.estimate_icache_misses(design.config, d),
            );
            match r {
                Ok(r) => eprintln!(
                    "heuristic I$ walk @ {}: evaluated {}/{} designs, frontier {}",
                    proc.name,
                    r.evaluated,
                    r.space_size,
                    r.pareto.len()
                ),
                Err(e) => {
                    return fail(e.exit_code(), format!("heuristic I$ walk @ {}: {e}", proc.name))
                }
            }
        }
    }

    let frontier = match walker::walk_system_with(
        &eval,
        &spec.space,
        spec.penalties,
        &db,
        checkpoint.as_ref(),
    ) {
        Ok(f) => f,
        Err(e) => return fail(e.exit_code(), format!("system walk failed: {e}")),
    };
    // Sampled-vs-exact provenance travels with the frontier itself, so a
    // saved listing is self-describing about how its misses were measured.
    // The report + renderer pair is the same one a daemon serves over the
    // wire, which is what keeps batch and `--connect` output
    // byte-identical by construction.
    let report = report_from(&eval, &frontier, &db);
    print!("{}", render_frontier(&report));
    eprintln!(
        "{} frontier designs; evaluation cache {} hits / {} computes",
        report.rows.len(),
        report.hits,
        report.computes
    );

    if let Some(p) = db_path {
        if let Err(e) = db.save(&p) {
            return fail(EXIT_WORKER_FAILURE, format!("cannot save {p}: {e}"));
        }
        eprintln!("saved evaluation cache to {p}");
    }
    if let Some(p) = export_path {
        if let Err(e) = db.export_text(&p) {
            return fail(EXIT_WORKER_FAILURE, format!("cannot export {p}: {e}"));
        }
        eprintln!("exported text listing to {p}");
    }
    if mhe_obs::enabled() {
        mhe_obs::RunReport::capture("spacewalker", eval.config().worker_threads()).emit();
    }
    ExitCode::SUCCESS
}
