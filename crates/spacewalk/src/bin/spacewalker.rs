//! `spacewalker` — non-interactive design-space exploration from a
//! specification file, now subcommand-structured:
//!
//! ```console
//! $ spacewalker walk SPEC.txt [--db CACHE.mhec] [--export CACHE.tsv]
//!               [--heuristic] [--policy LIST] [--sample N[:clusters=K,warmup=W]]
//!               [--checkpoint DIR] [--resume DIR] [--obs|--obs-json]
//! $ spacewalker serve ADDR
//! $ spacewalker connect ADDR SPEC.txt [--heuristic] [--policy LIST]
//!               [--sample ...] [--timeout SECS] [--retries N]
//! $ spacewalker worker ADDR [--threads N] [--timeout SECS]
//! $ spacewalker fleet SPEC.txt --workers N [--bind ADDR] [--port-file PATH]
//!               [--shards S] [--db ...] [--checkpoint DIR] [--resume DIR]
//! ```
//!
//! `walk` reads the design-space specification, runs the reference
//! evaluation once (the only simulation), walks the processor × memory
//! space with the dilation model, and prints the cost/performance Pareto
//! frontier. With `--db` the evaluation cache persists across runs in
//! the versioned binary format (bit-exact round-trip); `--export`
//! additionally writes a human-readable text listing; `--heuristic`
//! demonstrates neighbourhood-ascent pruning; `--policy
//! lru,fifo,plru,random:7` overrides the replacement-policy dimension of
//! every cache space; `--sample N` routes the reference evaluation
//! through interval sampling and stamps the frontier with its
//! provenance. `--obs` / `--obs-json` (or `MHE_OBS`) emit a run report
//! to stderr.
//!
//! # Daemon mode
//!
//! `serve ADDR` turns the process into a sweep daemon (the same service
//! `mhe-server` runs): warm sessions, bounded admission, graceful
//! SIGTERM drain. `connect ADDR SPEC` sends the walk to such a daemon
//! and prints the served frontier — byte-identical to the batch output,
//! because both sides render the same report with the same renderer.
//! Persistence flags are rejected in connect mode: they belong to the
//! daemon's side of the socket.
//!
//! # Distributed mode
//!
//! `fleet SPEC --workers N` partitions the metric evaluations into
//! deterministic shards, spawns `N` local worker processes (more can
//! attach from other machines with `worker ADDR`), merges their
//! streamed points with work-stealing fault tolerance, and finishes
//! with a serial walk over the merged cache — printing a frontier
//! bit-identical to `walk` at any worker count, even after killing a
//! worker mid-sweep. `--checkpoint`/`--resume` reuse the crash-safe
//! cache format, so a restarted coordinator re-offers completed points
//! instead of recomputing them.
//!
//! # Exit codes
//!
//! Failures exit with a one-line message and a typed status: **2** bad
//! configuration (usage, unreadable or malformed spec, protocol-version
//! skew rejected by a server), **3** corrupt input (cache database or
//! checkpoint fails its CRC), **4** worker failure (a panic isolated
//! inside the parallel walk, a failed checkpoint write, an aborted
//! fleet sweep), **5** server unavailable (a daemon or coordinator
//! could not be reached or went silent), **6** unauthorized (a tokened
//! daemon or coordinator rejected — or never received — the shared
//! auth token), **7** cancelled (the request was cooperatively
//! cancelled before completing).
//!
//! The pre-subcommand spelling (`spacewalker SPEC --serve/--connect/...`)
//! still parses as a deprecated alias and prints a one-line migration
//! hint to stderr.

use mhe_core::evaluator::EvalConfig;
use mhe_core::{
    SamplingConfig, EXIT_BAD_CONFIG, EXIT_CORRUPT_INPUT, EXIT_SERVER_UNAVAILABLE,
    EXIT_WORKER_FAILURE,
};
use mhe_spacewalk::cache_db::{EvaluationCache, MetricKey};
use mhe_spacewalk::ckpt::Checkpointer;
use mhe_spacewalk::fleet::{run_worker, Coordinator, FleetConfig, FleetJob, WorkerOptions};
use mhe_spacewalk::heuristic::walk_heuristic;
use mhe_spacewalk::service::proto::{FrontierReport, FrontierRequest};
use mhe_spacewalk::spec::Spec;
use mhe_spacewalk::{render_frontier, report_from, walker, Client, EvalService, Server};
use mhe_vliw::ProcessorKind;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage:
  spacewalker walk SPEC [--db CACHE.mhec] [--export CACHE.tsv] [--heuristic]
              [--policy LIST] [--sample N[:clusters=K,warmup=W]]
              [--checkpoint DIR] [--resume DIR] [--obs|--obs-json]
  spacewalker serve ADDR [--session-ttl SECS] [--max-sessions N]
              [--persist DIR] [--auth-token TOKEN] [--obs|--obs-json]
  spacewalker connect ADDR SPEC [--heuristic] [--policy LIST] [--sample ...]
              [--timeout SECS] [--retries N] [--retry-deadline SECS]
              [--auth-token TOKEN] [--obs|--obs-json]
  spacewalker worker ADDR [--threads N] [--timeout SECS] [--redials N]
              [--auth-token TOKEN] [--die-after-points N] [--obs|--obs-json]
  spacewalker fleet SPEC --workers N [--bind ADDR] [--port-file PATH]
              [--shards S] [--lease-timeout SECS] [--stall-timeout SECS]
              [--auth-token TOKEN] [--db CACHE.mhec] [--export CACHE.tsv]
              [--policy LIST] [--sample ...] [--checkpoint DIR] [--resume DIR]
              [--obs|--obs-json]

exit codes:
  0 success | 2 bad configuration | 3 corrupt input
  4 worker failure | 5 server unavailable
  6 unauthorized | 7 cancelled

The pre-subcommand flags (spacewalker SPEC [--serve ADDR] [--connect ADDR] ...)
still parse as deprecated aliases of walk/serve/connect.";

/// Parses `N[:clusters=K,warmup=W]` into a [`SamplingConfig`] (defaults
/// fill the unnamed fields).
fn parse_sample(arg: &str) -> Result<SamplingConfig, String> {
    let (n, opts) = match arg.split_once(':') {
        Some((n, opts)) => (n, Some(opts)),
        None => (arg, None),
    };
    let interval_accesses: usize = n.parse().map_err(|e| format!("interval size {n:?}: {e}"))?;
    let mut cfg = SamplingConfig { interval_accesses, ..SamplingConfig::default() };
    for pair in opts.iter().flat_map(|o| o.split(',')).filter(|p| !p.is_empty()) {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!("expected key=value, got {pair:?}"));
        };
        match key {
            "clusters" => {
                cfg.clusters = value.parse().map_err(|e| format!("clusters {value:?}: {e}"))?;
            }
            "warmup" => {
                cfg.warmup = value.parse().map_err(|e| format!("warmup {value:?}: {e}"))?;
            }
            other => return Err(format!("unknown option {other:?} (clusters, warmup)")),
        }
    }
    cfg.validate().map_err(|(field, req)| format!("{field} {req}"))?;
    Ok(cfg)
}

fn parse_policy_list(list: &str) -> Result<Vec<mhe_cache::Policy>, String> {
    let mut parsed = Vec::new();
    for token in list.split(',').filter(|t| !t.is_empty()) {
        parsed.push(token.parse::<mhe_cache::Policy>().map_err(|e| format!("{token:?}: {e}"))?);
    }
    if parsed.is_empty() {
        return Err("needs at least one policy".into());
    }
    Ok(parsed)
}

/// Prints a one-line diagnostic and returns the given exit status.
fn fail(code: u8, msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("spacewalker: {msg}");
    ExitCode::from(code)
}

/// A typed CLI failure: exit code plus rendered message.
type CliError = (u8, String);

fn bad(msg: impl std::fmt::Display) -> CliError {
    (EXIT_BAD_CONFIG, msg.to_string())
}

/// Options shared by every sweep-shaped subcommand (`walk`, `connect`,
/// `fleet`) plus the persistence knobs only batch-side commands accept.
#[derive(Debug, Default, Clone)]
struct SweepOptions {
    heuristic: bool,
    policies: Option<Vec<mhe_cache::Policy>>,
    sampling: Option<SamplingConfig>,
    db_path: Option<String>,
    export_path: Option<String>,
    ckpt_dir: Option<String>,
    resume: bool,
}

impl SweepOptions {
    /// Tries to consume one shared flag at `args[*i]`; `Ok(true)` means
    /// it was recognized (and `*i` advanced past any value).
    fn take(&mut self, args: &[String], i: &mut usize) -> Result<bool, CliError> {
        let flag = args[*i].as_str();
        let mut value = |name: &str| -> Result<String, CliError> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| bad(format!("{name} needs a value")))
        };
        match flag {
            "--heuristic" => self.heuristic = true,
            "--policy" => {
                let list = value("--policy")?;
                self.policies =
                    Some(parse_policy_list(&list).map_err(|e| bad(format!("--policy {e}")))?);
            }
            "--sample" => {
                let v = value("--sample")?;
                self.sampling =
                    Some(parse_sample(&v).map_err(|e| bad(format!("--sample {v:?}: {e}")))?);
            }
            "--db" => self.db_path = Some(value("--db")?),
            "--export" => self.export_path = Some(value("--export")?),
            "--checkpoint" | "--resume" => {
                self.resume |= flag == "--resume";
                let dir = value(flag)?;
                if let Some(prev) = &self.ckpt_dir {
                    if *prev != dir {
                        return Err(bad("--checkpoint and --resume name different directories"));
                    }
                }
                self.ckpt_dir = Some(dir);
            }
            "--obs" => mhe_obs::set_level(mhe_obs::ObsLevel::Text),
            "--obs-json" => mhe_obs::set_level(mhe_obs::ObsLevel::Json),
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn reject_persistence(&self, context: &str) -> Result<(), CliError> {
        if self.db_path.is_some() || self.export_path.is_some() || self.ckpt_dir.is_some() {
            return Err(bad(format!(
                "{context} is incompatible with --db/--export/--checkpoint/--resume \
                 (persistence lives on the serving side)"
            )));
        }
        Ok(())
    }
}

/// A parsed and policy-overridden spec, plus its verbatim text.
struct LoadedSpec {
    text: String,
    spec: Spec,
}

fn load_spec(path: &str, opts: &SweepOptions) -> Result<LoadedSpec, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| bad(format!("cannot read {path}: {e}")))?;
    let mut spec = Spec::parse(&text).map_err(|e| bad(format!("{path}: {e}")))?;
    if let Some(p) = &opts.policies {
        spec.space.icache.policies.clone_from(p);
        spec.space.dcache.policies.clone_from(p);
        spec.space.ucache.policies.clone_from(p);
    }
    eprintln!(
        "benchmark {} | {} processors x {} I$ x {} D$ x {} U$ = {} systems",
        spec.benchmark,
        spec.space.processors.len(),
        spec.space.icache.enumerate().len(),
        spec.space.dcache.enumerate().len(),
        spec.space.ucache.enumerate().len(),
        spec.space.combinations()
    );
    Ok(LoadedSpec { text, spec })
}

/// Opens the checkpointer (if any) and the starting evaluation cache,
/// honouring `--resume` and `--db` preloads.
fn open_store(opts: &SweepOptions) -> Result<(Option<Checkpointer>, EvaluationCache), CliError> {
    let checkpoint = match &opts.ckpt_dir {
        Some(dir) => Some(Checkpointer::new(dir).map_err(bad)?),
        None => None,
    };
    let db = if opts.resume {
        match checkpoint.as_ref().map(Checkpointer::load) {
            Some(Ok(db)) => {
                eprintln!("resumed {} cached metrics from checkpoint", db.len());
                db
            }
            Some(Err(e)) => return Err((EXIT_CORRUPT_INPUT, e.to_string())),
            None => EvaluationCache::new(),
        }
    } else {
        match &opts.db_path {
            Some(p) if std::path::Path::new(p).exists() => match EvaluationCache::load(p) {
                Ok(db) => {
                    eprintln!("loaded {} cached metrics from {p}", db.len());
                    db
                }
                Err(e) => return Err((EXIT_CORRUPT_INPUT, e.to_string())),
            },
            _ => EvaluationCache::new(),
        }
    };
    Ok((checkpoint, db))
}

/// Prints the frontier and its one-line stderr summary — the shared tail
/// of `walk`, `connect`, and `fleet`, and the bytes the byte-identity
/// contract is about.
fn print_report(report: &FrontierReport) {
    print!("{}", render_frontier(report));
    eprintln!(
        "{} frontier designs; evaluation cache {} hits / {} computes",
        report.rows.len(),
        report.hits,
        report.computes
    );
}

/// Saves/exports the cache per the persistence flags.
fn persist(db: &EvaluationCache, opts: &SweepOptions) -> Result<(), CliError> {
    if let Some(p) = &opts.db_path {
        db.save(p).map_err(|e| (EXIT_WORKER_FAILURE, format!("cannot save {p}: {e}")))?;
        eprintln!("saved evaluation cache to {p}");
    }
    if let Some(p) = &opts.export_path {
        db.export_text(p).map_err(|e| (EXIT_WORKER_FAILURE, format!("cannot export {p}: {e}")))?;
        eprintln!("exported text listing to {p}");
    }
    Ok(())
}

// --- subcommands ---------------------------------------------------------

fn cmd_walk(args: &[String]) -> ExitCode {
    let mut opts = SweepOptions::default();
    let mut spec_path = None;
    let mut i = 0;
    while i < args.len() {
        match opts.take(args, &mut i) {
            Ok(true) => {}
            Ok(false) => {
                let other = args[i].as_str();
                if spec_path.replace(other.to_string()).is_some() {
                    return fail(EXIT_BAD_CONFIG, format!("unexpected extra argument {other:?}"));
                }
            }
            Err((code, msg)) => return fail(code, msg),
        }
        i += 1;
    }
    let Some(spec_path) = spec_path else {
        return fail(EXIT_BAD_CONFIG, "walk needs a SPEC file");
    };
    match run_walk(&spec_path, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, msg)) => fail(code, msg),
    }
}

fn run_walk(spec_path: &str, opts: &SweepOptions) -> Result<(), CliError> {
    let loaded = load_spec(spec_path, opts)?;
    let spec = &loaded.spec;
    let (checkpoint, db) = open_store(opts)?;

    eprintln!("building reference evaluation (the only simulation step)...");
    let eval = walker::prepare_evaluation(
        spec.benchmark.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: spec.events, sampling: opts.sampling, ..EvalConfig::default() },
        &spec.space,
    );

    if opts.heuristic {
        // Demonstrate the pruning on the instruction-cache walk at each
        // processor's dilation. The heuristic shares the system cache, so
        // every design it touches pre-warms the full walk below.
        let app: Arc<str> = Arc::from(eval.program().name.as_str());
        for proc in &spec.space.processors {
            let d = eval.dilation_of(proc);
            let r = walk_heuristic(
                &spec.space.icache,
                &db,
                eval.config().worker_threads(),
                |design| MetricKey::icache(&app, design, d),
                |design| eval.estimate_icache_misses(design.config, d),
            );
            match r {
                Ok(r) => eprintln!(
                    "heuristic I$ walk @ {}: evaluated {}/{} designs, frontier {}",
                    proc.name,
                    r.evaluated,
                    r.space_size,
                    r.pareto.len()
                ),
                Err(e) => {
                    return Err((e.exit_code(), format!("heuristic I$ walk @ {}: {e}", proc.name)))
                }
            }
        }
    }

    let frontier =
        walker::walk_system_with(&eval, &spec.space, spec.penalties, &db, checkpoint.as_ref())
            .map_err(|e| (e.exit_code(), format!("system walk failed: {e}")))?;
    // Sampled-vs-exact provenance travels with the frontier itself, so a
    // saved listing is self-describing about how its misses were measured.
    // The report + renderer pair is the same one a daemon serves over the
    // wire, which is what keeps batch, served, and fleet output
    // byte-identical by construction.
    let report = report_from(&eval, &frontier, &db);
    print_report(&report);
    persist(&db, opts)?;
    if mhe_obs::enabled() {
        mhe_obs::RunReport::capture("spacewalker", eval.config().worker_threads()).emit();
    }
    Ok(())
}

/// Runs the sweep daemon on `addr` until a drain signal, exactly like
/// `mhe-server` with default flags.
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut addr = None;
    let mut opts = SweepOptions::default();
    let mut service_cfg = mhe_spacewalk::ServiceConfig::default();
    let mut auth_token: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--session-ttl" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--session-ttl needs seconds");
                };
                match v.parse::<u64>() {
                    Ok(secs) => service_cfg.session_ttl = Some(Duration::from_secs(secs)),
                    Err(e) => return fail(EXIT_BAD_CONFIG, format!("--session-ttl {v:?}: {e}")),
                }
            }
            "--max-sessions" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--max-sessions needs a count");
                };
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => service_cfg.max_sessions = Some(n),
                    Ok(_) => return fail(EXIT_BAD_CONFIG, "--max-sessions must be positive"),
                    Err(e) => return fail(EXIT_BAD_CONFIG, format!("--max-sessions {v:?}: {e}")),
                }
            }
            "--persist" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--persist needs a directory");
                };
                service_cfg.persist_dir = Some(std::path::PathBuf::from(v));
            }
            "--auth-token" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--auth-token needs a token");
                };
                if v.is_empty() {
                    return fail(EXIT_BAD_CONFIG, "--auth-token must not be empty");
                }
                auth_token = Some(v.clone());
            }
            _ => match opts.take(args, &mut i) {
                Ok(true) => {}
                Ok(false) => {
                    if addr.replace(args[i].clone()).is_some() {
                        return fail(EXIT_BAD_CONFIG, format!("unexpected argument {:?}", args[i]));
                    }
                }
                Err((code, msg)) => return fail(code, msg),
            },
        }
        i += 1;
    }
    let Some(addr) = addr else {
        return fail(EXIT_BAD_CONFIG, "serve needs an address (e.g. 127.0.0.1:7199)");
    };
    if let Err((code, msg)) =
        opts.reject_persistence("serve").and_then(|()| reject_sweep_flags(&opts, "serve"))
    {
        return fail(code, msg);
    }
    serve(&addr, service_cfg, auth_token)
}

fn reject_sweep_flags(opts: &SweepOptions, context: &str) -> Result<(), CliError> {
    if opts.heuristic || opts.policies.is_some() || opts.sampling.is_some() {
        return Err(bad(format!("{context} takes no sweep flags (--heuristic/--policy/--sample)")));
    }
    Ok(())
}

fn serve(
    addr: &str,
    service_cfg: mhe_spacewalk::ServiceConfig,
    auth_token: Option<String>,
) -> ExitCode {
    let service = Arc::new(EvalService::with_config(service_cfg));
    let mut server = match Server::bind(addr, service) {
        Ok(s) => s,
        Err(e) => return fail(EXIT_SERVER_UNAVAILABLE, format!("cannot bind {addr}: {e}")),
    };
    if auth_token.is_some() {
        server = server.with_auth_token(auth_token);
    }
    server.install_signal_drain();
    match server.local_addr() {
        Ok(a) => eprintln!("spacewalker: serving on {a} (SIGTERM drains)"),
        Err(e) => return fail(EXIT_SERVER_UNAVAILABLE, format!("local addr: {e}")),
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(EXIT_WORKER_FAILURE, format!("serve loop: {e}")),
    }
}

fn cmd_connect(args: &[String]) -> ExitCode {
    let mut opts = SweepOptions::default();
    let mut positionals: Vec<String> = Vec::new();
    let mut timeout = None;
    let mut retries = 0u32;
    let mut retry_deadline = None;
    let mut auth_token: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--timeout needs seconds");
                };
                match v.parse::<u64>() {
                    Ok(secs) => timeout = Some(Duration::from_secs(secs)),
                    Err(e) => return fail(EXIT_BAD_CONFIG, format!("--timeout {v:?}: {e}")),
                }
            }
            "--retries" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--retries needs a count");
                };
                match v.parse::<u32>() {
                    Ok(n) => retries = n,
                    Err(e) => return fail(EXIT_BAD_CONFIG, format!("--retries {v:?}: {e}")),
                }
            }
            "--retry-deadline" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--retry-deadline needs seconds");
                };
                match v.parse::<u64>() {
                    Ok(secs) => retry_deadline = Some(Duration::from_secs(secs)),
                    Err(e) => return fail(EXIT_BAD_CONFIG, format!("--retry-deadline {v:?}: {e}")),
                }
            }
            "--auth-token" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--auth-token needs a token");
                };
                auth_token = Some(v.clone());
            }
            _ => match opts.take(args, &mut i) {
                Ok(true) => {}
                Ok(false) => positionals.push(args[i].clone()),
                Err((code, msg)) => return fail(code, msg),
            },
        }
        i += 1;
    }
    let [addr, spec_path] = positionals.as_slice() else {
        return fail(EXIT_BAD_CONFIG, "connect needs ADDR and SPEC");
    };
    if let Err((code, msg)) = opts.reject_persistence("connect") {
        return fail(code, msg);
    }
    let loaded = match load_spec(spec_path, &opts) {
        Ok(l) => l,
        Err((code, msg)) => return fail(code, msg),
    };
    connect(addr, loaded.text, &opts, timeout, retries, retry_deadline, auth_token)
}

/// Sends the walk to a daemon and prints the served frontier — the same
/// bytes the batch path prints for the same spec.
fn connect(
    addr: &str,
    spec_text: String,
    opts: &SweepOptions,
    timeout: Option<Duration>,
    retries: u32,
    retry_deadline: Option<Duration>,
    auth_token: Option<String>,
) -> ExitCode {
    let mut builder = Client::builder().addr(addr).retries(retries);
    if let Some(t) = timeout {
        builder = builder.timeout(t);
    }
    if let Some(d) = retry_deadline {
        builder = builder.retry_deadline(d);
    }
    if let Some(token) = auth_token {
        builder = builder.auth_token(token);
    }
    let mut client = match builder.connect() {
        Ok(c) => c,
        Err(e) => return fail(e.exit_code(), e),
    };
    let request = FrontierRequest {
        spec_text,
        heuristic: opts.heuristic,
        sampling: opts.sampling,
        policies: opts.policies.clone(),
    };
    let report = match client.evaluate(request) {
        Ok(r) => r,
        Err(e) => return fail(e.exit_code(), e),
    };
    print_report(&report);
    ExitCode::SUCCESS
}

fn cmd_worker(args: &[String]) -> ExitCode {
    let mut addr = None;
    let mut worker = WorkerOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--threads needs a count");
                };
                match v.parse::<usize>() {
                    Ok(n) => worker.threads = Some(n),
                    Err(e) => return fail(EXIT_BAD_CONFIG, format!("--threads {v:?}: {e}")),
                }
            }
            "--timeout" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--timeout needs seconds");
                };
                match v.parse::<u64>() {
                    Ok(secs) => worker.reply_timeout = Some(Duration::from_secs(secs)),
                    Err(e) => return fail(EXIT_BAD_CONFIG, format!("--timeout {v:?}: {e}")),
                }
            }
            "--die-after-points" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--die-after-points needs a count");
                };
                match v.parse::<u64>() {
                    Ok(n) => worker.die_after_points = Some(n),
                    Err(e) => {
                        return fail(EXIT_BAD_CONFIG, format!("--die-after-points {v:?}: {e}"))
                    }
                }
            }
            "--redials" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--redials needs a count");
                };
                match v.parse::<u32>() {
                    Ok(n) => worker.redial_retries = n,
                    Err(e) => return fail(EXIT_BAD_CONFIG, format!("--redials {v:?}: {e}")),
                }
            }
            "--auth-token" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--auth-token needs a token");
                };
                worker.auth_token = Some(v.clone());
            }
            "--obs" => mhe_obs::set_level(mhe_obs::ObsLevel::Text),
            "--obs-json" => mhe_obs::set_level(mhe_obs::ObsLevel::Json),
            other => {
                if addr.replace(other.to_string()).is_some() {
                    return fail(EXIT_BAD_CONFIG, format!("unexpected argument {other:?}"));
                }
            }
        }
        i += 1;
    }
    let Some(addr) = addr else {
        return fail(EXIT_BAD_CONFIG, "worker needs a coordinator ADDR");
    };
    match run_worker(&addr, worker) {
        Ok(outcome) => {
            eprintln!(
                "worker {}: {} shards, {} points evaluated, {} prefilled skipped",
                outcome.worker_id, outcome.shards, outcome.points, outcome.skipped_prefilled
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e.exit_code(), e),
    }
}

fn cmd_fleet(args: &[String]) -> ExitCode {
    let mut opts = SweepOptions::default();
    let mut spec_path = None;
    let mut workers: Option<u32> = None;
    let mut bind_addr = "127.0.0.1:0".to_string();
    let mut port_file: Option<String> = None;
    let mut fleet_cfg = FleetConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--workers needs a count");
                };
                match v.parse::<u32>() {
                    Ok(n) => workers = Some(n),
                    Err(e) => return fail(EXIT_BAD_CONFIG, format!("--workers {v:?}: {e}")),
                }
            }
            "--bind" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--bind needs an address");
                };
                bind_addr = v.clone();
            }
            "--port-file" => {
                i += 1;
                port_file = args.get(i).cloned();
                if port_file.is_none() {
                    return fail(EXIT_BAD_CONFIG, "--port-file needs a path");
                }
            }
            "--shards" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--shards needs a count");
                };
                match v.parse::<u32>() {
                    Ok(n) if n > 0 => fleet_cfg.shard_count = n,
                    Ok(_) => return fail(EXIT_BAD_CONFIG, "--shards must be positive"),
                    Err(e) => return fail(EXIT_BAD_CONFIG, format!("--shards {v:?}: {e}")),
                }
            }
            "--lease-timeout" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--lease-timeout needs seconds");
                };
                match v.parse::<u64>() {
                    Ok(secs) => fleet_cfg.lease_timeout = Duration::from_secs(secs),
                    Err(e) => return fail(EXIT_BAD_CONFIG, format!("--lease-timeout {v:?}: {e}")),
                }
            }
            "--stall-timeout" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--stall-timeout needs seconds");
                };
                match v.parse::<u64>() {
                    Ok(secs) => fleet_cfg.stall_timeout = Duration::from_secs(secs),
                    Err(e) => return fail(EXIT_BAD_CONFIG, format!("--stall-timeout {v:?}: {e}")),
                }
            }
            "--auth-token" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return fail(EXIT_BAD_CONFIG, "--auth-token needs a token");
                };
                if v.is_empty() {
                    return fail(EXIT_BAD_CONFIG, "--auth-token must not be empty");
                }
                fleet_cfg.auth_token = Some(v.clone());
            }
            _ => match opts.take(args, &mut i) {
                Ok(true) => {}
                Ok(false) => {
                    let other = args[i].as_str();
                    if spec_path.replace(other.to_string()).is_some() {
                        return fail(
                            EXIT_BAD_CONFIG,
                            format!("unexpected extra argument {other:?}"),
                        );
                    }
                }
                Err((code, msg)) => return fail(code, msg),
            },
        }
        i += 1;
    }
    let Some(spec_path) = spec_path else {
        return fail(EXIT_BAD_CONFIG, "fleet needs a SPEC file");
    };
    let Some(workers) = workers else {
        return fail(EXIT_BAD_CONFIG, "fleet needs --workers N (0 = attach workers manually)");
    };
    if opts.heuristic {
        return fail(
            EXIT_BAD_CONFIG,
            "fleet has no --heuristic: the fleet prewarms every metric anyway",
        );
    }
    match run_fleet(&spec_path, &opts, workers, &bind_addr, port_file.as_deref(), fleet_cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, msg)) => fail(code, msg),
    }
}

fn run_fleet(
    spec_path: &str,
    opts: &SweepOptions,
    workers: u32,
    bind_addr: &str,
    port_file: Option<&str>,
    fleet_cfg: FleetConfig,
) -> Result<(), CliError> {
    let loaded = load_spec(spec_path, opts)?;
    let spec = &loaded.spec;
    let (checkpoint, db) = open_store(opts)?;
    let db = Arc::new(db);

    let job = FleetJob {
        spec_text: loaded.text.clone(),
        sampling: opts.sampling,
        policies: opts.policies.clone(),
    };
    let shard_count = fleet_cfg.shard_count;
    let worker_token = fleet_cfg.auth_token.clone();
    let coordinator = Coordinator::bind(bind_addr, job, fleet_cfg, Arc::clone(&db))
        .map_err(|e| (EXIT_SERVER_UNAVAILABLE, format!("cannot bind {bind_addr}: {e}")))?;
    let addr = coordinator
        .local_addr()
        .map_err(|e| (EXIT_SERVER_UNAVAILABLE, format!("local addr: {e}")))?;
    if let Some(path) = port_file {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| (EXIT_WORKER_FAILURE, format!("cannot write {path}: {e}")))?;
    }
    eprintln!("fleet: coordinating on {addr} ({} shards, {} local workers)", shard_count, workers);

    let exe = std::env::current_exe()
        .map_err(|e| (EXIT_WORKER_FAILURE, format!("cannot locate own binary: {e}")))?;
    let mut children = Vec::new();
    for _ in 0..workers {
        let mut command = std::process::Command::new(&exe);
        command.arg("worker").arg(addr.to_string());
        if let Some(token) = &worker_token {
            // Locally-spawned workers inherit the coordinator's token so
            // `fleet --auth-token` works without extra plumbing.
            command.arg("--auth-token").arg(token);
        }
        let child = command
            .spawn()
            .map_err(|e| (EXIT_WORKER_FAILURE, format!("cannot spawn worker: {e}")))?;
        children.push(child);
    }

    let summary = match coordinator.run(checkpoint.as_ref()) {
        Ok(s) => s,
        Err(e) => {
            for child in &mut children {
                let _ = child.kill();
                let _ = child.wait();
            }
            return Err((e.exit_code(), format!("fleet sweep failed: {e}")));
        }
    };
    // Workers exit on NoMoreWork; a worker that died mid-sweep was
    // already stolen from — its exit status is not the fleet's.
    for child in &mut children {
        let _ = child.wait();
    }
    eprintln!(
        "fleet: {} workers, {} points merged, {} steals, {} duplicate deliveries",
        summary.workers, summary.points, summary.steals, summary.duplicates
    );

    // The fleet filled the cache; the frontier itself is the ordinary
    // deterministic serial walk — every metric lookup below is a hit,
    // which is what makes this output bit-identical to `walk`.
    eprintln!("building reference evaluation (the only simulation step)...");
    let eval = walker::prepare_evaluation(
        spec.benchmark.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: spec.events, sampling: opts.sampling, ..EvalConfig::default() },
        &spec.space,
    );
    let frontier =
        walker::walk_system_with(&eval, &spec.space, spec.penalties, &db, checkpoint.as_ref())
            .map_err(|e| (e.exit_code(), format!("system walk failed: {e}")))?;
    let report = report_from(&eval, &frontier, &db);
    print_report(&report);
    persist(&db, opts)?;
    if mhe_obs::enabled() {
        mhe_obs::RunReport::capture("spacewalker-fleet", eval.config().worker_threads()).emit();
    }
    Ok(())
}

// --- deprecated pre-subcommand spelling ----------------------------------

/// The original flag-soup interface, kept as a deprecated alias. Parses
/// exactly as before, but prints a one-line migration hint naming the
/// subcommand that replaces the invocation.
fn legacy(args: &[String]) -> ExitCode {
    let mut opts = SweepOptions::default();
    let mut spec_path = None;
    let mut serve_addr: Option<String> = None;
    let mut connect_addr: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--serve" => {
                i += 1;
                serve_addr = args.get(i).cloned();
                if serve_addr.is_none() {
                    return fail(EXIT_BAD_CONFIG, "--serve needs an address (e.g. 127.0.0.1:7199)");
                }
            }
            "--connect" => {
                i += 1;
                connect_addr = args.get(i).cloned();
                if connect_addr.is_none() {
                    return fail(EXIT_BAD_CONFIG, "--connect needs an address");
                }
            }
            _ => match opts.take(args, &mut i) {
                Ok(true) => {}
                Ok(false) => {
                    let other = args[i].as_str();
                    if other.starts_with('-') {
                        return fail(EXIT_BAD_CONFIG, format!("unknown flag {other:?}\n{USAGE}"));
                    }
                    if spec_path.replace(other.to_string()).is_some() {
                        return fail(
                            EXIT_BAD_CONFIG,
                            format!("unexpected extra argument {other:?}"),
                        );
                    }
                }
                Err((code, msg)) => return fail(code, msg),
            },
        }
        i += 1;
    }

    if let Some(addr) = serve_addr {
        eprintln!(
            "spacewalker: note: `--serve ADDR` is deprecated; use `spacewalker serve {addr}`"
        );
        if spec_path.is_some() || connect_addr.is_some() {
            return fail(EXIT_BAD_CONFIG, "--serve takes no spec and no --connect");
        }
        return serve(&addr, mhe_spacewalk::ServiceConfig::default(), None);
    }

    let Some(spec_path) = spec_path else {
        return fail(EXIT_BAD_CONFIG, USAGE);
    };

    if let Some(addr) = connect_addr {
        eprintln!(
            "spacewalker: note: `--connect ADDR` is deprecated; \
             use `spacewalker connect {addr} {spec_path}`"
        );
        if let Err((code, msg)) = opts.reject_persistence("--connect") {
            return fail(code, msg);
        }
        let loaded = match load_spec(&spec_path, &opts) {
            Ok(l) => l,
            Err((code, msg)) => return fail(code, msg),
        };
        return connect(&addr, loaded.text, &opts, None, 0, None, None);
    }

    eprintln!(
        "spacewalker: note: the flags-only spelling is deprecated; \
         use `spacewalker walk {spec_path} ...`"
    );
    match run_walk(&spec_path, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, msg)) => fail(code, msg),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("walk") => cmd_walk(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("connect") => cmd_connect(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("--help" | "-h") | None => {
            eprintln!("{USAGE}");
            if args.is_empty() {
                return ExitCode::from(EXIT_BAD_CONFIG);
            }
            ExitCode::SUCCESS
        }
        _ => legacy(&args),
    }
}
