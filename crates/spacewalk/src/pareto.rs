//! Pareto-set accumulation.
//!
//! "A Pareto set consists of designs that are superior in performance to
//! all other designs with the same or lower cost." Here *performance* is a
//! time-like metric (misses, stall cycles, execution cycles): lower is
//! better, as is lower cost.

/// One evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint<T> {
    /// The design.
    pub design: T,
    /// Cost (area, arbitrary units; lower is better).
    pub cost: f64,
    /// Time-like performance metric (lower is better).
    pub time: f64,
}

/// An accumulating Pareto frontier over (cost, time).
///
/// # Examples
///
/// ```
/// use mhe_spacewalk::pareto::ParetoSet;
/// let mut p = ParetoSet::new();
/// assert!(p.insert("a", 1.0, 10.0));
/// assert!(p.insert("b", 2.0, 5.0));   // more cost, faster: kept
/// assert!(!p.insert("c", 3.0, 7.0));  // dominated by b
/// assert!(p.insert("d", 0.5, 20.0));  // cheapest so far: kept
/// assert_eq!(p.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoSet<T> {
    points: Vec<ParetoPoint<T>>,
}

impl<T> Default for ParetoSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ParetoSet<T> {
    /// Creates an empty frontier.
    pub fn new() -> Self {
        Self { points: Vec::new() }
    }

    /// Inserts a design if it is not dominated; evicts designs it
    /// dominates. Returns whether the design was kept.
    ///
    /// Domination: `a` dominates `b` when `a.cost <= b.cost` and
    /// `a.time <= b.time`, with at least one strict. Exact ties on both
    /// axes keep the incumbent.
    pub fn insert(&mut self, design: T, cost: f64, time: f64) -> bool {
        let dominated = self.points.iter().any(|p| p.cost <= cost && p.time <= time);
        if dominated {
            return false;
        }
        self.points.retain(|p| !(cost <= p.cost && time <= p.time));
        self.points.push(ParetoPoint { design, cost, time });
        true
    }

    /// The frontier, sorted by increasing cost (`total_cmp`: NaN-safe and
    /// a total order, so the sort is deterministic).
    pub fn points(&self) -> Vec<&ParetoPoint<T>> {
        let mut v: Vec<&ParetoPoint<T>> = self.points.iter().collect();
        v.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        v
    }

    /// Number of frontier designs.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The lowest-time point, if any.
    pub fn fastest(&self) -> Option<&ParetoPoint<T>> {
        self.points.iter().min_by(|a, b| a.time.total_cmp(&b.time))
    }

    /// The lowest-cost point, if any.
    pub fn cheapest(&self) -> Option<&ParetoPoint<T>> {
        self.points.iter().min_by(|a, b| a.cost.total_cmp(&b.cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_is_monotone_after_sorting() {
        let mut p = ParetoSet::new();
        // Insert a grid; the frontier must be strictly decreasing in time
        // as cost increases.
        for c in 1..=5 {
            for t in 1..=5 {
                p.insert((c, t), f64::from(c), f64::from(t) + 10.0 / f64::from(c));
            }
        }
        let pts = p.points();
        for w in pts.windows(2) {
            assert!(w[0].cost <= w[1].cost);
            assert!(w[0].time > w[1].time, "non-dominating frontier member");
        }
    }

    #[test]
    fn dominated_insertions_are_rejected() {
        let mut p = ParetoSet::new();
        assert!(p.insert("good", 1.0, 1.0));
        assert!(!p.insert("worse-both", 2.0, 2.0));
        assert!(!p.insert("tie", 1.0, 1.0), "exact tie keeps incumbent");
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn dominating_insertion_evicts_many() {
        let mut p = ParetoSet::new();
        p.insert("a", 2.0, 8.0);
        p.insert("b", 3.0, 7.0);
        p.insert("c", 4.0, 6.0);
        assert!(p.insert("super", 1.0, 1.0));
        assert_eq!(p.len(), 1);
        assert_eq!(p.points()[0].design, "super");
    }

    #[test]
    fn accessors_find_extremes() {
        let mut p = ParetoSet::new();
        p.insert("cheap", 1.0, 9.0);
        p.insert("fast", 9.0, 1.0);
        assert_eq!(p.cheapest().unwrap().design, "cheap");
        assert_eq!(p.fastest().unwrap().design, "fast");
        assert!(!p.is_empty());
    }

    #[test]
    fn incomparable_points_coexist() {
        let mut p = ParetoSet::new();
        for i in 0..10 {
            let c = f64::from(i);
            assert!(p.insert(i, c, 10.0 - c));
        }
        assert_eq!(p.len(), 10);
    }
}
