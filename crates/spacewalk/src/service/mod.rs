//! The shared evaluation service: warm sessions behind one `Send + Sync`
//! core.
//!
//! Batch runs, the `mhe-server` daemon, and `spacewalker --connect` all
//! answer frontier queries through this module, so a served result is the
//! *same computation* as an in-process run — not a reimplementation that
//! merely agrees. The service owns what per-run plumbing used to rebuild
//! from scratch on every invocation:
//!
//! * **Sessions** — a [`ReferenceEvaluation`] per (benchmark, events,
//!   sampling, space) signature, built once (the only simulation work) and
//!   then shared by every request that matches it;
//! * **Caches** — one [`EvaluationCache`] per *metric scope* (benchmark,
//!   events, sampling). The scope is deliberately coarser than the
//!   session: [`MetricKey`]s name only the application, so two specs that
//!   differ merely in space geometry share every overlapping metric — but
//!   specs that change the workload or measurement regime get distinct
//!   caches, because their metric *values* differ for identical keys;
//! * **Admission** — an [`AdmissionGate`] bounding concurrent evaluations
//!   and the queue behind them, with a structured
//!   [`Response::Rejected`] when the queue is full (backpressure the
//!   client can see, instead of an unbounded pile-up);
//! * **Isolation** — each request runs under `catch_unwind` on top of the
//!   walker's own per-task panic isolation and retry policy, so one
//!   poisoned request answers with [`Response::Error`] while the session
//!   stays warm for the next.
//!
//! Determinism is inherited, not re-proven: the walkers merge in
//! enumeration order at any thread count, so a daemon-served frontier is
//! bit-identical to a batch run of the same spec — [`render_frontier`]
//! produces the byte-exact `spacewalker` listing from a wire
//! [`FrontierReport`], and the differential tests hold both paths to that.

pub mod client;
pub mod proto;
pub mod server;

use crate::cache_db::{EvaluationCache, MetricKey};
use crate::ckpt::Checkpointer;
use crate::heuristic::walk_heuristic;
use crate::pareto::ParetoSet;
use crate::spec::Spec;
use crate::walker::{self, SystemPoint};
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_core::{CancelToken, MheError, SamplingConfig, EXIT_BAD_CONFIG, EXIT_WORKER_FAILURE};
use mhe_vliw::ProcessorKind;
use proto::{FrontierReport, FrontierRequest, FrontierRow, Request, Response, StatsReport};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Admission-control bounds for an [`EvalService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceLimits {
    /// Evaluation requests allowed to run concurrently (`>= 1`).
    pub max_inflight: usize,
    /// Requests allowed to wait for an in-flight slot; arrivals beyond
    /// this are rejected immediately (`0` = reject as soon as all
    /// in-flight slots are taken).
    pub max_queued: usize,
}

impl Default for ServiceLimits {
    /// Defaults from `MHE_SERVER_INFLIGHT` (4) and `MHE_SERVER_QUEUE`
    /// (64).
    fn default() -> Self {
        ServiceLimits {
            max_inflight: mhe_core::env::server_inflight_or(4).max(1),
            max_queued: mhe_core::env::server_queue_or(64),
        }
    }
}

/// Full configuration for an [`EvalService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission-control bounds.
    pub limits: ServiceLimits,
    /// Evict warm sessions idle for at least this long (`None` = keep
    /// forever). `Duration::ZERO` means every session is evicted as soon
    /// as another request touches the service.
    pub session_ttl: Option<Duration>,
    /// Hard cap on warm sessions; least-recently-used sessions beyond it
    /// are evicted (`None` = unbounded).
    pub max_sessions: Option<usize>,
    /// Directory persisting each scope's metric cache across restarts
    /// and evictions (`None` = memory only). An evicted or drained
    /// scope's evaluations reload from here, so a restarted daemon
    /// answers warm.
    pub persist_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    /// Defaults from `MHE_SESSION_TTL` and `MHE_MAX_SESSIONS` (both
    /// unbounded when unset); persistence stays off without `--db`.
    fn default() -> Self {
        ServiceConfig {
            limits: ServiceLimits::default(),
            session_ttl: mhe_core::env::session_ttl(),
            max_sessions: mhe_core::env::max_sessions(),
            persist_dir: None,
        }
    }
}

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    queued: usize,
}

/// A counting admission gate: up to `max_inflight` holders run at once,
/// up to `max_queued` more wait their turn, and everyone else is turned
/// away immediately with `None` (so the caller can answer with structured
/// backpressure instead of hanging).
///
/// Queued waiters are woken in mutex-acquisition order, which keeps
/// per-client service fair in practice: each daemon connection runs one
/// request at a time, so no client can occupy more than one slot.
#[derive(Debug)]
pub struct AdmissionGate {
    limits: ServiceLimits,
    state: Mutex<GateState>,
    turn: Condvar,
}

/// An in-flight slot held on an [`AdmissionGate`]; dropping it releases
/// the slot and wakes a queued waiter.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl AdmissionGate {
    /// A gate enforcing `limits`.
    pub fn new(limits: ServiceLimits) -> Self {
        AdmissionGate { limits, state: Mutex::new(GateState::default()), turn: Condvar::new() }
    }

    /// The limits this gate enforces.
    pub fn limits(&self) -> ServiceLimits {
        self.limits
    }

    /// Claims an in-flight slot, waiting in the bounded queue if all
    /// slots are taken. Returns `None` — *without blocking* — when the
    /// queue is also full.
    pub fn try_admit(&self) -> Option<AdmissionPermit<'_>> {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if s.inflight >= self.limits.max_inflight {
            if s.queued >= self.limits.max_queued {
                return None;
            }
            s.queued += 1;
            while s.inflight >= self.limits.max_inflight {
                s = self.turn.wait(s).unwrap_or_else(PoisonError::into_inner);
            }
            s.queued -= 1;
        }
        s.inflight += 1;
        Some(AdmissionPermit { gate: self })
    }

    /// Current (inflight, queued) occupancy, for diagnostics.
    pub fn occupancy(&self) -> (usize, usize) {
        let s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        (s.inflight, s.queued)
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.inflight = s.inflight.saturating_sub(1);
        drop(s);
        self.gate.turn.notify_one();
    }
}

/// A request failure with the exit code a CLI maps it to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Exit code (see [`mhe_core::error`]).
    pub code: u8,
    /// Rendered diagnostic.
    pub message: String,
}

impl From<MheError> for ServiceError {
    fn from(e: MheError) -> Self {
        ServiceError { code: e.exit_code(), message: e.to_string() }
    }
}

/// A warm evaluation session: the reference evaluation plus the
/// scope-shared metric cache it draws from.
#[derive(Debug, Clone)]
struct Session {
    eval: Arc<ReferenceEvaluation>,
    db: Arc<EvaluationCache>,
}

/// A scope's shared metric cache plus its optional on-disk home.
#[derive(Debug)]
struct ScopeCache {
    db: Arc<EvaluationCache>,
    ckpt: Option<Checkpointer>,
}

/// One warm-session slot: the build cell plus the bookkeeping the
/// TTL/LRU eviction policy needs.
#[derive(Debug)]
struct SessionSlot {
    /// The [`OnceLock`] arbitrates concurrent first requests: one thread
    /// simulates, the rest block on the cell and share the result. A
    /// panicked build leaves the cell empty, so a later request retries.
    cell: Arc<OnceLock<Session>>,
    /// The metric scope this session draws from (for cache retirement).
    scope: String,
    /// When a request last touched this session.
    last_used: Instant,
}

/// The shared `Send + Sync` evaluation core.
///
/// One instance serves any number of threads; see the module docs for
/// what it owns. Constructed once and shared via [`Arc`] by the daemon's
/// connection threads (and by tests that drive it in-process).
///
/// Lock order: `sessions` before `caches` — never acquire `sessions`
/// while holding `caches`.
#[derive(Debug)]
pub struct EvalService {
    config: ServiceConfig,
    gate: AdmissionGate,
    /// Metric caches keyed by scope `(benchmark, events, sampling)`.
    caches: Mutex<HashMap<String, ScopeCache>>,
    /// Sessions keyed by the full evaluation signature (scope + space).
    sessions: Mutex<HashMap<String, SessionSlot>>,
    /// Sessions evicted so far by the TTL/LRU bound.
    evictions: AtomicU64,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EvalService>()
};

/// FNV-1a over a scope string, naming its on-disk checkpoint directory.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl EvalService {
    /// A service enforcing `limits`, with TTL/eviction/persistence from
    /// the environment defaults (see [`ServiceConfig::default`]).
    pub fn new(limits: ServiceLimits) -> Self {
        EvalService::with_config(ServiceConfig { limits, ..ServiceConfig::default() })
    }

    /// A service with explicit bounds and persistence.
    pub fn with_config(config: ServiceConfig) -> Self {
        EvalService {
            gate: AdmissionGate::new(config.limits),
            config,
            caches: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            evictions: AtomicU64::new(0),
        }
    }

    /// The admission gate (exposed for occupancy diagnostics).
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// The configuration this service runs under.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Answers one request. Never panics: evaluation runs under
    /// `catch_unwind`, so a poisoned request becomes
    /// [`Response::Error`] while the service stays warm.
    pub fn respond(&self, request: Request) -> Response {
        self.respond_with_cancel(request, None)
    }

    /// [`EvalService::respond`] with a cancellation token scoped around
    /// the evaluation: when `cancel` fires (client disconnect, a
    /// [`Request::Cancel`] frame), the sweep stops at its next task
    /// boundary and the request answers with a code-7 error. Work already
    /// cached stays warm, so a rerun of the same request completes from
    /// where the cancelled one left off — bit-identically.
    pub fn respond_with_cancel(&self, request: Request, cancel: Option<CancelToken>) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(self.stats()),
            Request::Cancel => Response::Error {
                code: EXIT_BAD_CONFIG,
                message: "no request in flight to cancel".into(),
            },
            Request::Auth { .. } => Response::Error {
                code: EXIT_BAD_CONFIG,
                message: "unexpected auth frame (authentication is pre-request)".into(),
            },
            Request::Frontier(req) => {
                let Some(_permit) = self.gate.try_admit() else {
                    let (inflight, queued) = self.gate.occupancy();
                    return Response::Rejected {
                        reason: format!(
                            "server saturated: {inflight} in flight, {queued} queued \
                             (limits {}/{}); retry later",
                            self.gate.limits.max_inflight, self.gate.limits.max_queued
                        ),
                    };
                };
                let run = || match &cancel {
                    Some(token) if token.is_cancelled() => {
                        Err(ServiceError::from(MheError::Cancelled))
                    }
                    Some(token) => walker::with_walk_cancel(token.clone(), || self.frontier(&req)),
                    None => self.frontier(&req),
                };
                match catch_unwind(AssertUnwindSafe(run)) {
                    Ok(Ok(report)) => Response::Frontier(report),
                    Ok(Err(e)) => Response::Error { code: e.code, message: e.message },
                    Err(payload) => Response::Error {
                        code: EXIT_WORKER_FAILURE,
                        message: format!("request panicked: {}", panic_message(&payload)),
                    },
                }
            }
        }
    }

    /// Service counters across every scope cache.
    pub fn stats(&self) -> StatsReport {
        let sessions = {
            let map = self.sessions.lock().unwrap_or_else(PoisonError::into_inner);
            map.values().filter(|slot| slot.cell.get().is_some()).count() as u64
        };
        let caches = self.caches.lock().unwrap_or_else(PoisonError::into_inner);
        let (mut entries, mut hits, mut computes) = (0u64, 0u64, 0u64);
        for scope in caches.values() {
            entries += scope.db.len() as u64;
            let (h, c) = scope.db.stats();
            hits += h;
            computes += c;
        }
        StatsReport {
            sessions,
            entries,
            hits,
            computes,
            evictions: self.evictions.load(Ordering::Relaxed),
            version: proto::VERSION,
            features: proto::FEATURE_FRONTIER,
            build: env!("CARGO_PKG_VERSION").to_string(),
        }
    }

    /// Persists every scope cache into the configured persistence
    /// directory (no-op without one); returns how many were saved. The
    /// daemon calls this on graceful drain so a restart answers warm.
    pub fn persist_all(&self) -> usize {
        let caches = self.caches.lock().unwrap_or_else(PoisonError::into_inner);
        let mut saved = 0;
        for scope in caches.values() {
            if let Some(ckpt) = &scope.ckpt {
                if ckpt.save(&scope.db).is_ok() {
                    saved += 1;
                }
            }
        }
        saved
    }

    /// Evaluates one frontier request end to end — the same code path,
    /// in the same order, as a `spacewalker` batch run.
    fn frontier(&self, req: &FrontierRequest) -> Result<FrontierReport, ServiceError> {
        let mut spec = Spec::parse(&req.spec_text)
            .map_err(|e| ServiceError { code: EXIT_BAD_CONFIG, message: format!("spec: {e}") })?;
        if let Some(p) = &req.policies {
            spec.space.icache.policies.clone_from(p);
            spec.space.dcache.policies.clone_from(p);
            spec.space.ucache.policies.clone_from(p);
        }
        let spec = spec;
        let session = self.session(&spec, req.sampling);
        let eval = &session.eval;
        let db = &session.db;
        if req.heuristic {
            // Same pre-warm as `spacewalker --heuristic`: neighbourhood
            // ascent over the I$ space at every processor's dilation,
            // sharing the scope cache so the full walk below hits.
            let app: Arc<str> = Arc::from(eval.program().name.as_str());
            for proc in &spec.space.processors {
                let d = eval.dilation_of(proc);
                walk_heuristic(
                    &spec.space.icache,
                    db,
                    eval.config().worker_threads(),
                    |design| MetricKey::icache(&app, design, d),
                    |design| eval.estimate_icache_misses(design.config, d),
                )
                .map_err(|e| ServiceError {
                    code: e.exit_code(),
                    message: format!("heuristic I$ walk @ {}: {e}", proc.name),
                })?;
            }
        }
        let frontier = walker::walk_system(eval, &spec.space, spec.penalties, db).map_err(|e| {
            ServiceError { code: e.exit_code(), message: format!("system walk failed: {e}") }
        })?;
        Ok(report_from(eval, &frontier, db))
    }

    /// The warm session for `spec`, building it (the only simulation
    /// work) on first use. Touching a session refreshes its LRU stamp
    /// and runs one eviction pass over the others.
    fn session(&self, spec: &Spec, sampling: Option<SamplingConfig>) -> Session {
        // Scope key: everything a metric *value* depends on beyond its
        // MetricKey. Space geometry is deliberately absent — identical
        // keys mean identical values across spaces within a scope.
        let scope = format!("{}|{}|{:?}", spec.benchmark, spec.events, sampling);
        let db = self.scope_db(&scope);
        let signature =
            format!("{}|{}|{:?}|{:?}", spec.benchmark, spec.events, sampling, spec.space);
        let cell = {
            let mut sessions = self.sessions.lock().unwrap_or_else(PoisonError::into_inner);
            let now = Instant::now();
            let slot = sessions.entry(signature.clone()).or_insert_with(|| SessionSlot {
                cell: Arc::default(),
                scope: scope.clone(),
                last_used: now,
            });
            slot.last_used = now;
            let cell = Arc::clone(&slot.cell);
            self.evict_expired(&mut sessions, &signature, now);
            cell
        };
        let shared_db = Arc::clone(&db);
        cell.get_or_init(move || {
            let eval = walker::prepare_evaluation(
                spec.benchmark.generate(),
                &ProcessorKind::P1111.mdes(),
                EvalConfig { events: spec.events, sampling, ..EvalConfig::default() },
                &spec.space,
            );
            Session { eval: Arc::new(eval), db: shared_db }
        })
        .clone()
    }

    /// The shared metric cache for `scope`, creating it (preloaded from
    /// the persistence directory, when configured) on first use.
    fn scope_db(&self, scope: &str) -> Arc<EvaluationCache> {
        let mut caches = self.caches.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(sc) = caches.get(scope) {
            return Arc::clone(&sc.db);
        }
        let (db, ckpt) = match &self.config.persist_dir {
            None => (Arc::new(EvaluationCache::new()), None),
            Some(dir) => {
                match Checkpointer::new(dir.join(format!("scope-{:016x}", fnv64(scope)))) {
                    // A corrupt or unreadable checkpoint degrades to a cold
                    // cache: warm restart is an optimization, not a
                    // correctness dependency.
                    Ok(ckpt) => {
                        let db = ckpt.load().unwrap_or_else(|_| EvaluationCache::new());
                        (Arc::new(db), Some(ckpt))
                    }
                    Err(_) => (Arc::new(EvaluationCache::new()), None),
                }
            }
        };
        caches.insert(scope.to_string(), ScopeCache { db: Arc::clone(&db), ckpt });
        drop(caches);
        db
    }

    /// One eviction pass, called with the `sessions` lock held. `keep`
    /// (the session being touched right now) is never evicted. Applies
    /// the TTL first, then the LRU cap; retired sessions are counted and
    /// any scope cache no session references any more is persisted (when
    /// configured) and dropped, bounding daemon memory.
    fn evict_expired(&self, sessions: &mut HashMap<String, SessionSlot>, keep: &str, now: Instant) {
        let mut victims: Vec<String> = Vec::new();
        if let Some(ttl) = self.config.session_ttl {
            victims.extend(
                sessions
                    .iter()
                    .filter(|(sig, slot)| {
                        sig.as_str() != keep && now.duration_since(slot.last_used) >= ttl
                    })
                    .map(|(sig, _)| sig.clone()),
            );
        }
        if let Some(max) = self.config.max_sessions {
            let max = max.max(1);
            while sessions.len() - victims.len() > max {
                // Oldest first, excluding the touched session and anyone
                // already sentenced by the TTL above.
                let Some(oldest) = sessions
                    .iter()
                    .filter(|(sig, _)| sig.as_str() != keep && !victims.contains(sig))
                    .min_by_key(|(_, slot)| slot.last_used)
                    .map(|(sig, _)| sig.clone())
                else {
                    break;
                };
                victims.push(oldest);
            }
        }
        if victims.is_empty() {
            return;
        }
        for sig in &victims {
            sessions.remove(sig);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            mhe_obs::count(mhe_obs::Counter::SessionEvict, 1);
        }
        // Retire scope caches nothing references any more (lock order:
        // sessions held, then caches — matching the struct contract).
        let live: std::collections::HashSet<&str> =
            sessions.values().map(|slot| slot.scope.as_str()).collect();
        let mut caches = self.caches.lock().unwrap_or_else(PoisonError::into_inner);
        caches.retain(|scope, sc| {
            if live.contains(scope.as_str()) {
                return true;
            }
            if let Some(ckpt) = &sc.ckpt {
                ckpt.save(&sc.db).ok();
            }
            false
        });
    }
}

impl Default for EvalService {
    fn default() -> Self {
        EvalService::new(ServiceLimits::default())
    }
}

/// Renders a panic payload for a diagnostic.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Packages a walked frontier as a wire report carrying everything the
/// renderer needs — exact `f64` bits included.
pub fn report_from(
    eval: &ReferenceEvaluation,
    frontier: &ParetoSet<SystemPoint>,
    db: &EvaluationCache,
) -> FrontierReport {
    let rows = frontier
        .points()
        .iter()
        .map(|p| FrontierRow {
            processor: p.design.processor.name.clone(),
            icache: p.design.memory.icache,
            dcache: p.design.memory.dcache,
            ucache: p.design.memory.ucache,
            cost: p.cost,
            time: p.time,
        })
        .collect();
    let (hits, computes) = db.stats();
    FrontierReport { sampling: eval.metrics().sampling, rows, hits, computes }
}

/// Renders a report as the exact `spacewalker` stdout listing —
/// provenance header, column header, one row per frontier design. Batch
/// runs and `--connect` clients print this same string, which is what
/// makes "daemon output byte-identical to batch output" a `==` on two
/// strings.
pub fn render_frontier(report: &FrontierReport) -> String {
    let mut out = String::new();
    let src = match report.sampling {
        Some(sm) => {
            let _ = writeln!(
                out,
                "# provenance: sampled ({:.2}% coverage, {} intervals -> {} clusters, \
                 error bound {:.4})",
                sm.coverage() * 100.0,
                sm.intervals,
                sm.clusters,
                sm.error_bound
            );
            "sampled"
        }
        None => {
            let _ = writeln!(out, "# provenance: exact (full-trace simulation)");
            "exact"
        }
    };
    let _ = writeln!(
        out,
        "{:<6} {:>9} {:>9} {:>9} {:<17} {:>12} {:>14} {:<7}",
        "proc", "I$ B", "D$ B", "U$ B", "policy I/D/U", "area", "cycles", "src"
    );
    for row in &report.rows {
        let pol = format!(
            "{}/{}/{}",
            row.icache.config.policy, row.dcache.config.policy, row.ucache.config.policy
        );
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>9} {:>9} {:<17} {:>12.0} {:>14.0} {:<7}",
            row.processor,
            row.icache.config.size_bytes(),
            row.dcache.config.size_bytes(),
            row.ucache.config.size_bytes(),
            pol,
            row.cost,
            row.time,
            src
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn gate_rejects_when_inflight_and_queue_are_full() {
        let gate = AdmissionGate::new(ServiceLimits { max_inflight: 1, max_queued: 0 });
        let first = gate.try_admit();
        assert!(first.is_some());
        assert!(gate.try_admit().is_none(), "queue of 0 must reject immediately");
        drop(first);
        assert!(gate.try_admit().is_some(), "released slot must be claimable again");
    }

    #[test]
    fn gate_queues_up_to_its_bound_and_drains_in_turn() {
        let gate = Arc::new(AdmissionGate::new(ServiceLimits { max_inflight: 1, max_queued: 2 }));
        let held = gate.try_admit().unwrap();
        let admitted = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let admitted = Arc::clone(&admitted);
                std::thread::spawn(move || {
                    let permit = gate.try_admit();
                    assert!(permit.is_some(), "queued waiter must eventually run");
                    admitted.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        // Both workers are queued (or about to be); the queue bound of 2
        // means a third arrival is rejected while the slot is held.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while gate.occupancy().1 < 2 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(gate.occupancy(), (1, 2));
        assert!(gate.try_admit().is_none(), "full queue must reject");
        drop(held);
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(admitted.load(Ordering::SeqCst), 2);
        assert_eq!(gate.occupancy(), (0, 0));
    }

    #[test]
    fn service_answers_ping_and_rejects_malformed_specs() {
        let svc = EvalService::default();
        assert_eq!(svc.respond(Request::Ping), Response::Pong);
        let resp = svc.respond(Request::Frontier(FrontierRequest {
            spec_text: "this is not a spec".into(),
            heuristic: false,
            sampling: None,
            policies: None,
        }));
        match resp {
            Response::Error { code, message } => {
                assert_eq!(code, mhe_core::EXIT_BAD_CONFIG);
                assert!(message.starts_with("spec: "), "{message}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
        let stats = svc.stats();
        assert_eq!(stats.sessions, 0, "a rejected spec must not leave a session behind");
    }
}
