//! The daemon client: a blocking connection speaking the frame protocol.
//!
//! Connections are built through [`Client::builder`] — address, timeout
//! and retry policy are explicit, and [`ClientBuilder::connect`] returns
//! a session handle with typed [`Client::ping`]/[`Client::stats`]/
//! [`Client::evaluate`] calls. The error taxonomy maps every failure to
//! the exit code the CLI contract promises — [`EXIT_SERVER_UNAVAILABLE`]
//! for anything that kept the daemon from *answering* (unreachable,
//! handshake mismatch, stream corruption, admission rejection), and the
//! server-reported code verbatim when the request ran and failed
//! remotely. A protocol-version skew is its own structured variant
//! ([`ClientError::UnsupportedVersion`]), never a frame error.

use super::proto::{
    client_hello, decode_response, encode_request, read_frame, write_frame, FrontierReport,
    FrontierRequest, Request, Response, StatsReport, CLIENT_READ_TIMEOUT, FEATURE_FRONTIER,
    VERSION,
};
use mhe_core::EXIT_SERVER_UNAVAILABLE;
use std::fmt;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a daemon query failed, from the client's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The daemon could not be reached (connect failure, handshake never
    /// arrived, connection dropped).
    Unavailable(String),
    /// The daemon answered but turned the request away at admission
    /// (queue full) — the request never started; retrying later is safe.
    Rejected(String),
    /// The request ran on the daemon and failed there.
    Remote {
        /// The exit code the daemon assigned (see [`mhe_core::error`]).
        code: u8,
        /// The daemon's rendered diagnostic.
        message: String,
    },
    /// The peer speaks a different protocol version — a real mhe
    /// endpoint, just from an incompatible build.
    UnsupportedVersion {
        /// The version the server announced.
        server: u32,
        /// The version this client speaks.
        client: u32,
    },
    /// The byte stream violated the protocol (bad handshake, malformed
    /// frame, wrong response kind).
    Protocol(String),
}

impl ClientError {
    /// The process exit code a CLI maps this failure to:
    /// the daemon's own code for [`ClientError::Remote`],
    /// [`EXIT_SERVER_UNAVAILABLE`] for everything else.
    pub fn exit_code(&self) -> u8 {
        match self {
            ClientError::Remote { code, .. } => *code,
            ClientError::Unavailable(_)
            | ClientError::Rejected(_)
            | ClientError::UnsupportedVersion { .. }
            | ClientError::Protocol(_) => EXIT_SERVER_UNAVAILABLE,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Unavailable(detail) => write!(f, "server unavailable: {detail}"),
            ClientError::Rejected(reason) => write!(f, "server rejected request: {reason}"),
            ClientError::Remote { code, message } => {
                write!(f, "server error (exit code {code}): {message}")
            }
            ClientError::UnsupportedVersion { server, client } => {
                write!(f, "unsupported protocol version {server} (this client speaks {client})")
            }
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Configures and opens a [`Client`] session.
///
/// ```no_run
/// # use mhe_spacewalk::service::client::Client;
/// # use std::time::Duration;
/// let mut client = Client::builder()
///     .addr("127.0.0.1:7777")
///     .timeout(Duration::from_secs(30))
///     .retries(2)
///     .connect()?;
/// client.ping()?;
/// # Ok::<(), mhe_spacewalk::service::client::ClientError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    addr: Option<String>,
    timeout: Duration,
    retries: u32,
    retry_backoff: Duration,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        Self {
            addr: None,
            timeout: CLIENT_READ_TIMEOUT,
            retries: 0,
            retry_backoff: Duration::from_millis(200),
        }
    }
}

impl ClientBuilder {
    /// The daemon address to dial, e.g. `127.0.0.1:7777`. Required.
    #[must_use]
    pub fn addr(mut self, addr: impl fmt::Display) -> Self {
        self.addr = Some(addr.to_string());
        self
    }

    /// Read timeout for every blocking receive (default: the generous
    /// [`CLIENT_READ_TIMEOUT`], sized for long evaluation requests).
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// How many times a failed *dial* is retried before giving up
    /// (default 0). Only connection establishment retries; requests on
    /// an open session never auto-retry.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Pause between dial retries (default 200 ms).
    #[must_use]
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Dials the daemon, exchanges handshakes, and returns the session.
    ///
    /// # Errors
    ///
    /// [`ClientError::Unavailable`] when the daemon cannot be reached
    /// (after exhausting retries), [`ClientError::UnsupportedVersion`]
    /// on a protocol-version skew, [`ClientError::Protocol`] when
    /// whatever answered is not an mhe endpoint serving frontiers.
    pub fn connect(self) -> Result<Client, ClientError> {
        let addr = self
            .addr
            .as_deref()
            .ok_or_else(|| ClientError::Unavailable("no address configured".into()))?;
        let mut attempt = 0u32;
        loop {
            match Client::dial(addr, self.timeout) {
                Ok(client) => return Ok(client),
                Err(e @ ClientError::Unavailable(_)) if attempt < self.retries => {
                    attempt += 1;
                    eprintln!("spacewalker: {e}; retry {attempt}/{}", self.retries);
                    std::thread::sleep(self.retry_backoff);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A connected daemon client. One request runs at a time per connection
/// (which is exactly the daemon's fairness unit).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    features: u32,
}

impl Client {
    /// Starts configuring a session; see [`ClientBuilder`].
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Connects to a daemon at `addr` and verifies its handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Unavailable`] when the daemon cannot be reached,
    /// [`ClientError::UnsupportedVersion`]/[`ClientError::Protocol`]
    /// when whatever answered is not a compatible mhe-server.
    #[deprecated(since = "0.9.0", note = "use `Client::builder().addr(..).connect()`")]
    pub fn connect(addr: impl ToSocketAddrs + fmt::Debug) -> Result<Client, ClientError> {
        // The legacy entry point accepted any resolvable address; render
        // it through Debug to keep old call sites compiling unchanged.
        Client::builder().addr(format!("{addr:?}").trim_matches('"')).connect()
    }

    /// One dial attempt: TCP connect + two-way v2 handshake.
    fn dial(addr: &str, timeout: Duration) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| ClientError::Unavailable(format!("connect {addr:?}: {e}")))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| ClientError::Unavailable(format!("configure socket: {e}")))?;
        let _ = stream.set_nodelay(true);
        let server = client_hello(&mut stream, FEATURE_FRONTIER).map_err(|e| {
            if e.kind() == std::io::ErrorKind::InvalidData {
                ClientError::Protocol(e.to_string())
            } else {
                ClientError::Unavailable(format!("handshake: {e}"))
            }
        })?;
        if server.version != VERSION {
            return Err(ClientError::UnsupportedVersion {
                server: server.version,
                client: VERSION,
            });
        }
        if server.features & FEATURE_FRONTIER == 0 {
            return Err(ClientError::Protocol(format!(
                "peer does not serve frontier requests (features {:#x})",
                server.features
            )));
        }
        Ok(Client { stream, features: server.features })
    }

    /// The feature bits the server announced in its handshake.
    pub fn features(&self) -> u32 {
        self.features
    }

    /// One request/response round trip.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(request))
            .map_err(|e| ClientError::Unavailable(format!("send: {e}")))?;
        self.stream.flush().map_err(|e| ClientError::Unavailable(format!("send: {e}")))?;
        let payload = read_frame(&mut self.stream)
            .map_err(|e| ClientError::Unavailable(format!("receive: {e}")))?;
        decode_response(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; an unexpected response kind is
    /// [`ClientError::Protocol`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// Evaluates a frontier on the daemon.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] on admission backpressure,
    /// [`ClientError::Remote`] when the walk failed server-side, other
    /// [`ClientError`]s for transport trouble.
    pub fn evaluate(&mut self, request: FrontierRequest) -> Result<FrontierReport, ClientError> {
        match self.roundtrip(&Request::Frontier(request))? {
            Response::Frontier(report) => Ok(report),
            Response::Rejected { reason } => Err(ClientError::Rejected(reason)),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            other => Err(ClientError::Protocol(format!("expected Frontier, got {other:?}"))),
        }
    }

    /// Evaluates a frontier on the daemon.
    ///
    /// # Errors
    ///
    /// See [`Client::evaluate`].
    #[deprecated(since = "0.9.0", note = "renamed to `Client::evaluate`")]
    pub fn frontier(&mut self, request: FrontierRequest) -> Result<FrontierReport, ClientError> {
        self.evaluate(request)
    }

    /// Fetches service counters.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; an unexpected response kind is
    /// [`ClientError::Protocol`].
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Protocol(format!("expected Stats, got {other:?}"))),
        }
    }
}
