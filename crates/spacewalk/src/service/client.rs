//! The daemon client: a blocking connection speaking the frame protocol.
//!
//! Used by `spacewalker --connect` and by the differential tests; the
//! error taxonomy maps every failure to the exit code the CLI contract
//! promises — [`EXIT_SERVER_UNAVAILABLE`] for anything that kept the
//! daemon from *answering* (unreachable, handshake mismatch, stream
//! corruption, admission rejection), and the server-reported code
//! verbatim when the request ran and failed remotely.

use super::proto::{
    check_handshake, decode_response, encode_request, read_frame, write_frame, FrontierReport,
    FrontierRequest, Request, Response, StatsReport, CLIENT_READ_TIMEOUT,
};
use mhe_core::EXIT_SERVER_UNAVAILABLE;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Why a daemon query failed, from the client's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The daemon could not be reached (connect failure, handshake never
    /// arrived, connection dropped).
    Unavailable(String),
    /// The daemon answered but turned the request away at admission
    /// (queue full) — the request never started; retrying later is safe.
    Rejected(String),
    /// The request ran on the daemon and failed there.
    Remote {
        /// The exit code the daemon assigned (see [`mhe_core::error`]).
        code: u8,
        /// The daemon's rendered diagnostic.
        message: String,
    },
    /// The byte stream violated the protocol (bad handshake, malformed
    /// frame, wrong response kind).
    Protocol(String),
}

impl ClientError {
    /// The process exit code a CLI maps this failure to:
    /// the daemon's own code for [`ClientError::Remote`],
    /// [`EXIT_SERVER_UNAVAILABLE`] for everything else.
    pub fn exit_code(&self) -> u8 {
        match self {
            ClientError::Remote { code, .. } => *code,
            ClientError::Unavailable(_) | ClientError::Rejected(_) | ClientError::Protocol(_) => {
                EXIT_SERVER_UNAVAILABLE
            }
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Unavailable(detail) => write!(f, "server unavailable: {detail}"),
            ClientError::Rejected(reason) => write!(f, "server rejected request: {reason}"),
            ClientError::Remote { code, message } => {
                write!(f, "server error (exit code {code}): {message}")
            }
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connected daemon client. One request runs at a time per connection
/// (which is exactly the daemon's fairness unit).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` and verifies its handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Unavailable`] when the daemon cannot be reached,
    /// [`ClientError::Protocol`] when whatever answered is not an
    /// `mhe-server` speaking this protocol version.
    pub fn connect(addr: impl ToSocketAddrs + fmt::Debug) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(&addr)
            .map_err(|e| ClientError::Unavailable(format!("connect {addr:?}: {e}")))?;
        stream
            .set_read_timeout(Some(CLIENT_READ_TIMEOUT))
            .map_err(|e| ClientError::Unavailable(format!("configure socket: {e}")))?;
        let _ = stream.set_nodelay(true);
        let mut client = Client { stream };
        let mut hs = [0u8; 8];
        client
            .stream
            .read_exact(&mut hs)
            .map_err(|e| ClientError::Unavailable(format!("handshake: {e}")))?;
        check_handshake(&hs).map_err(|e| ClientError::Protocol(e.to_string()))?;
        Ok(client)
    }

    /// One request/response round trip.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(request))
            .map_err(|e| ClientError::Unavailable(format!("send: {e}")))?;
        self.stream.flush().map_err(|e| ClientError::Unavailable(format!("send: {e}")))?;
        let payload = read_frame(&mut self.stream)
            .map_err(|e| ClientError::Unavailable(format!("receive: {e}")))?;
        decode_response(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; an unexpected response kind is
    /// [`ClientError::Protocol`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// Evaluates a frontier on the daemon.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] on admission backpressure,
    /// [`ClientError::Remote`] when the walk failed server-side, other
    /// [`ClientError`]s for transport trouble.
    pub fn frontier(&mut self, request: FrontierRequest) -> Result<FrontierReport, ClientError> {
        match self.roundtrip(&Request::Frontier(request))? {
            Response::Frontier(report) => Ok(report),
            Response::Rejected { reason } => Err(ClientError::Rejected(reason)),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            other => Err(ClientError::Protocol(format!("expected Frontier, got {other:?}"))),
        }
    }

    /// Fetches service counters.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; an unexpected response kind is
    /// [`ClientError::Protocol`].
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Protocol(format!("expected Stats, got {other:?}"))),
        }
    }
}
