//! The daemon client: a blocking connection speaking the frame protocol.
//!
//! Connections are built through [`Client::builder`] — address, timeout
//! and retry policy are explicit, and [`ClientBuilder::connect`] returns
//! a session handle with typed [`Client::ping`]/[`Client::stats`]/
//! [`Client::evaluate`] calls. The error taxonomy maps every failure to
//! the exit code the CLI contract promises — [`EXIT_SERVER_UNAVAILABLE`]
//! for anything that kept the daemon from *answering* (unreachable,
//! handshake mismatch, stream corruption, admission rejection), and the
//! server-reported code verbatim when the request ran and failed
//! remotely. A protocol-version skew is its own structured variant
//! ([`ClientError::UnsupportedVersion`]), never a frame error.

use super::proto::{
    client_hello, decode_response, encode_request, read_frame, write_frame, FrontierReport,
    FrontierRequest, Request, Response, StatsReport, CLIENT_READ_TIMEOUT, FEATURE_AUTH,
    FEATURE_FRONTIER, VERSION,
};
use mhe_core::{EXIT_SERVER_UNAVAILABLE, EXIT_UNAUTHORIZED};
use std::fmt;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a daemon query failed, from the client's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The daemon could not be reached (connect failure, handshake never
    /// arrived, connection dropped).
    Unavailable(String),
    /// The daemon answered but turned the request away at admission
    /// (queue full) — the request never started; retrying later is safe.
    Rejected(String),
    /// The request ran on the daemon and failed there.
    Remote {
        /// The exit code the daemon assigned (see [`mhe_core::error`]).
        code: u8,
        /// The daemon's rendered diagnostic.
        message: String,
    },
    /// The peer speaks a different protocol version — a real mhe
    /// endpoint, just from an incompatible build.
    UnsupportedVersion {
        /// The version the server announced.
        server: u32,
        /// The version this client speaks.
        client: u32,
    },
    /// The byte stream violated the protocol (bad handshake, malformed
    /// frame, wrong response kind).
    Protocol(String),
}

impl ClientError {
    /// The process exit code a CLI maps this failure to:
    /// the daemon's own code for [`ClientError::Remote`],
    /// [`EXIT_SERVER_UNAVAILABLE`] for everything else.
    pub fn exit_code(&self) -> u8 {
        match self {
            ClientError::Remote { code, .. } => *code,
            ClientError::Unavailable(_)
            | ClientError::Rejected(_)
            | ClientError::UnsupportedVersion { .. }
            | ClientError::Protocol(_) => EXIT_SERVER_UNAVAILABLE,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Unavailable(detail) => write!(f, "server unavailable: {detail}"),
            ClientError::Rejected(reason) => write!(f, "server rejected request: {reason}"),
            ClientError::Remote { code, message } => {
                write!(f, "server error (exit code {code}): {message}")
            }
            ClientError::UnsupportedVersion { server, client } => {
                write!(f, "unsupported protocol version {server} (this client speaks {client})")
            }
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A jittered, deadline-bounded dial-retry schedule.
///
/// Pure state machine: [`RetrySchedule::next_delay`] takes the elapsed
/// wall time as an argument and returns the pause before the next
/// attempt, or `None` when attempts or the total deadline are exhausted
/// — so unit tests drive it with a fake clock and real callers pass
/// `started.elapsed()`. Delays double per attempt (capped at 64× the
/// base) with deterministic ±50% jitter from the seed, which de-herds
/// workers that all lost the same coordinator at the same instant.
#[derive(Debug, Clone)]
pub struct RetrySchedule {
    base: Duration,
    retries: u32,
    deadline: Option<Duration>,
    attempt: u32,
    rng: u64,
}

impl RetrySchedule {
    /// A schedule of up to `retries` attempts, pausing around
    /// `base * 2^attempt` between them, never letting the *next* attempt
    /// start past `deadline` (when given).
    pub fn new(base: Duration, retries: u32, deadline: Option<Duration>, seed: u64) -> Self {
        Self { base, retries, deadline, attempt: 0, rng: seed }
    }

    /// Attempts granted so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The pause before the next retry, or `None` to give up: either
    /// every retry is spent, or `elapsed + pause` would cross the
    /// deadline (retrying *after* the deadline helps nobody).
    pub fn next_delay(&mut self, elapsed: Duration) -> Option<Duration> {
        if self.attempt >= self.retries {
            return None;
        }
        self.attempt += 1;
        let doubled = self.base.saturating_mul(1u32 << (self.attempt - 1).min(6));
        // SplitMix64 step; jitter factor in [0.5, 1.5).
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let jitter = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64;
        let delay = doubled.mul_f64(jitter);
        if let Some(deadline) = self.deadline {
            if elapsed + delay >= deadline {
                return None;
            }
        }
        Some(delay)
    }
}

/// Configures and opens a [`Client`] session.
///
/// ```no_run
/// # use mhe_spacewalk::service::client::Client;
/// # use std::time::Duration;
/// let mut client = Client::builder()
///     .addr("127.0.0.1:7777")
///     .timeout(Duration::from_secs(30))
///     .retries(2)
///     .connect()?;
/// client.ping()?;
/// # Ok::<(), mhe_spacewalk::service::client::ClientError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    addr: Option<String>,
    timeout: Duration,
    retries: u32,
    retry_backoff: Duration,
    retry_deadline: Option<Duration>,
    auth_token: Option<String>,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        Self {
            addr: None,
            timeout: CLIENT_READ_TIMEOUT,
            retries: 0,
            retry_backoff: Duration::from_millis(200),
            retry_deadline: None,
            auth_token: mhe_core::env::auth_token().map(str::to_string),
        }
    }
}

impl ClientBuilder {
    /// The daemon address to dial, e.g. `127.0.0.1:7777`. Required.
    #[must_use]
    pub fn addr(mut self, addr: impl fmt::Display) -> Self {
        self.addr = Some(addr.to_string());
        self
    }

    /// Read timeout for every blocking receive (default: the generous
    /// [`CLIENT_READ_TIMEOUT`], sized for long evaluation requests).
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// How many times a failed *dial* is retried before giving up
    /// (default 0). Only connection establishment retries; requests on
    /// an open session never auto-retry.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Base pause between dial retries (default 200 ms); actual pauses
    /// double per attempt with ±50% jitter (see [`RetrySchedule`]).
    #[must_use]
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Total wall-clock budget across all dial attempts: no retry starts
    /// once this much time has passed since [`ClientBuilder::connect`]
    /// began (default: unbounded — the retry count is the only limit).
    #[must_use]
    pub fn retry_deadline(mut self, deadline: Duration) -> Self {
        self.retry_deadline = Some(deadline);
        self
    }

    /// The shared token proving this client may use a [`FEATURE_AUTH`]
    /// server (default: `MHE_AUTH_TOKEN` from the environment).
    #[must_use]
    pub fn auth_token(mut self, token: impl Into<String>) -> Self {
        self.auth_token = Some(token.into());
        self
    }

    /// Dials the daemon, exchanges handshakes (and the auth proof when
    /// the server demands one), and returns the session.
    ///
    /// # Errors
    ///
    /// [`ClientError::Unavailable`] when the daemon cannot be reached
    /// (after exhausting retries), [`ClientError::UnsupportedVersion`]
    /// on a protocol-version skew, [`ClientError::Remote`] with
    /// [`EXIT_UNAUTHORIZED`] when the server requires a token this
    /// builder does not carry (or rejects the one it does),
    /// [`ClientError::Protocol`] when whatever answered is not an mhe
    /// endpoint serving frontiers.
    pub fn connect(self) -> Result<Client, ClientError> {
        let addr = self
            .addr
            .as_deref()
            .ok_or_else(|| ClientError::Unavailable("no address configured".into()))?;
        // Seed the jitter from the address so two clients aimed at
        // different endpoints de-correlate even with identical configs.
        let seed =
            addr.bytes().fold(0xA5A5_0001u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
        let mut schedule =
            RetrySchedule::new(self.retry_backoff, self.retries, self.retry_deadline, seed);
        let started = std::time::Instant::now();
        loop {
            match Client::dial(addr, self.timeout, self.auth_token.as_deref()) {
                Ok(client) => return Ok(client),
                Err(e @ ClientError::Unavailable(_)) => {
                    match schedule.next_delay(started.elapsed()) {
                        Some(delay) => {
                            eprintln!(
                                "spacewalker: {e}; retry {}/{}",
                                schedule.attempts(),
                                self.retries
                            );
                            std::thread::sleep(delay);
                        }
                        None => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A connected daemon client. One request runs at a time per connection
/// (which is exactly the daemon's fairness unit).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    features: u32,
}

impl Client {
    /// Starts configuring a session; see [`ClientBuilder`].
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Connects to a daemon at `addr` and verifies its handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Unavailable`] when the daemon cannot be reached,
    /// [`ClientError::UnsupportedVersion`]/[`ClientError::Protocol`]
    /// when whatever answered is not a compatible mhe-server.
    #[deprecated(since = "0.9.0", note = "use `Client::builder().addr(..).connect()`")]
    pub fn connect(addr: impl ToSocketAddrs + fmt::Debug) -> Result<Client, ClientError> {
        // The legacy entry point accepted any resolvable address; render
        // it through Debug to keep old call sites compiling unchanged.
        Client::builder().addr(format!("{addr:?}").trim_matches('"')).connect()
    }

    /// One dial attempt: TCP connect + two-way handshake + optional auth.
    fn dial(
        addr: &str,
        timeout: Duration,
        auth_token: Option<&str>,
    ) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| ClientError::Unavailable(format!("connect {addr:?}: {e}")))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| ClientError::Unavailable(format!("configure socket: {e}")))?;
        let _ = stream.set_nodelay(true);
        let server = client_hello(&mut stream, FEATURE_FRONTIER).map_err(|e| {
            if e.kind() == std::io::ErrorKind::InvalidData {
                ClientError::Protocol(e.to_string())
            } else {
                ClientError::Unavailable(format!("handshake: {e}"))
            }
        })?;
        if server.version != VERSION {
            return Err(ClientError::UnsupportedVersion {
                server: server.version,
                client: VERSION,
            });
        }
        if server.features & FEATURE_FRONTIER == 0 {
            return Err(ClientError::Protocol(format!(
                "peer does not serve frontier requests (features {:#x})",
                server.features
            )));
        }
        let mut client = Client { stream, features: server.features };
        if server.features & FEATURE_AUTH != 0 {
            client.authenticate(auth_token)?;
        }
        Ok(client)
    }

    /// Answers the server's post-handshake challenge with an HMAC proof.
    fn authenticate(&mut self, auth_token: Option<&str>) -> Result<(), ClientError> {
        let Some(token) = auth_token else {
            return Err(ClientError::Remote {
                code: EXIT_UNAUTHORIZED,
                message: "server requires an auth token (set --auth-token or MHE_AUTH_TOKEN)"
                    .into(),
            });
        };
        let payload = read_frame(&mut self.stream)
            .map_err(|e| ClientError::Unavailable(format!("auth challenge: {e}")))?;
        let nonce = match decode_response(&payload) {
            Ok(Response::AuthChallenge { nonce }) => nonce,
            Ok(other) => {
                return Err(ClientError::Protocol(format!("expected AuthChallenge, got {other:?}")))
            }
            Err(e) => return Err(ClientError::Protocol(e.to_string())),
        };
        let proof = mhe_core::auth::proof(token, &nonce);
        write_frame(&mut self.stream, &encode_request(&Request::Auth { proof }))
            .map_err(|e| ClientError::Unavailable(format!("send auth: {e}")))?;
        let payload = read_frame(&mut self.stream)
            .map_err(|e| ClientError::Unavailable(format!("auth verdict: {e}")))?;
        match decode_response(&payload) {
            Ok(Response::Pong) => Ok(()),
            Ok(Response::Error { code, message }) => Err(ClientError::Remote { code, message }),
            Ok(other) => {
                Err(ClientError::Protocol(format!("expected auth verdict, got {other:?}")))
            }
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    /// The feature bits the server announced in its handshake.
    pub fn features(&self) -> u32 {
        self.features
    }

    /// One request/response round trip.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(request))
            .map_err(|e| ClientError::Unavailable(format!("send: {e}")))?;
        self.stream.flush().map_err(|e| ClientError::Unavailable(format!("send: {e}")))?;
        let payload = read_frame(&mut self.stream)
            .map_err(|e| ClientError::Unavailable(format!("receive: {e}")))?;
        decode_response(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; an unexpected response kind is
    /// [`ClientError::Protocol`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// Evaluates a frontier on the daemon.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] on admission backpressure,
    /// [`ClientError::Remote`] when the walk failed server-side, other
    /// [`ClientError`]s for transport trouble.
    pub fn evaluate(&mut self, request: FrontierRequest) -> Result<FrontierReport, ClientError> {
        match self.roundtrip(&Request::Frontier(request))? {
            Response::Frontier(report) => Ok(report),
            Response::Rejected { reason } => Err(ClientError::Rejected(reason)),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            other => Err(ClientError::Protocol(format!("expected Frontier, got {other:?}"))),
        }
    }

    /// Evaluates a frontier on the daemon.
    ///
    /// # Errors
    ///
    /// See [`Client::evaluate`].
    #[deprecated(since = "0.9.0", note = "renamed to `Client::evaluate`")]
    pub fn frontier(&mut self, request: FrontierRequest) -> Result<FrontierReport, ClientError> {
        self.evaluate(request)
    }

    /// Fetches service counters.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; an unexpected response kind is
    /// [`ClientError::Protocol`].
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Protocol(format!("expected Stats, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::RetrySchedule;
    use std::time::Duration;

    #[test]
    fn retry_schedule_doubles_with_bounded_jitter_and_spends_every_retry() {
        let base = Duration::from_millis(100);
        let mut schedule = RetrySchedule::new(base, 4, None, 7);
        let mut clock = Duration::ZERO; // fake clock: we advance it by hand
        let mut delays = Vec::new();
        while let Some(delay) = schedule.next_delay(clock) {
            clock += delay;
            delays.push(delay);
        }
        assert_eq!(delays.len(), 4);
        assert_eq!(schedule.attempts(), 4);
        for (i, delay) in delays.iter().enumerate() {
            let nominal = base * (1 << i);
            assert!(
                *delay >= nominal / 2 && *delay < nominal * 3 / 2,
                "attempt {i}: {delay:?} outside ±50% of {nominal:?}"
            );
        }
    }

    #[test]
    fn retry_schedule_is_deterministic_per_seed() {
        let base = Duration::from_millis(50);
        let mut a = RetrySchedule::new(base, 3, None, 42);
        let mut b = RetrySchedule::new(base, 3, None, 42);
        let mut c = RetrySchedule::new(base, 3, None, 43);
        let da: Vec<_> = std::iter::from_fn(|| a.next_delay(Duration::ZERO)).collect();
        let db: Vec<_> = std::iter::from_fn(|| b.next_delay(Duration::ZERO)).collect();
        let dc: Vec<_> = std::iter::from_fn(|| c.next_delay(Duration::ZERO)).collect();
        assert_eq!(da, db, "same seed must produce the same jitter");
        assert_ne!(da, dc, "different seeds must de-herd");
    }

    #[test]
    fn retry_schedule_refuses_to_cross_the_deadline() {
        let base = Duration::from_millis(100);
        let deadline = Duration::from_millis(350);
        let mut schedule = RetrySchedule::new(base, 100, Some(deadline), 11);
        let mut clock = Duration::ZERO;
        let mut granted = 0u32;
        while let Some(delay) = schedule.next_delay(clock) {
            assert!(clock + delay < deadline, "granted a retry past the deadline");
            clock += delay;
            granted += 1;
        }
        // With doubling from 100 ms and a 350 ms budget, only a couple of
        // attempts can ever fit — the deadline, not the retry count (100),
        // is what stopped the schedule.
        assert!(granted < 100, "deadline never engaged");
        assert!(granted >= 1, "jitter floor (50 ms) always fits a 350 ms budget");
    }

    #[test]
    fn retry_schedule_caps_the_exponent() {
        let base = Duration::from_millis(10);
        let mut schedule = RetrySchedule::new(base, 20, None, 3);
        let mut last = Duration::ZERO;
        for _ in 0..20 {
            last = schedule.next_delay(Duration::ZERO).unwrap_or(last);
        }
        // 64x cap with +50% jitter headroom: 10ms * 64 * 1.5 = 960ms.
        assert!(last < Duration::from_millis(960), "delay {last:?} escaped the 64x cap");
    }
}
